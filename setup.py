"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` under
PEP 660; offline boxes without the wheel package can instead run::

    pip install -e . --no-build-isolation --no-use-pep517

which takes the legacy ``setup.py develop`` path through this shim.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
