# Convenience targets for the DMRA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-scale bench-kernel bench-stream bench-bound metrics-baseline gap-baseline bench-paper figures extensions examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Seeded smoke bench: times a 2000-UE DMRA allocation (optimized vs
# reference engine), scalar-vs-vectorized radio-map construction at
# 2000 UEs, a workers=1-vs-4 sweep, incremental-vs-full mobility
# epochs on both sides of the displaced-fraction crossover, and
# telemetry overhead (null/recorded spans, recorded-vs-disabled engine
# runs, interleaved); writes BENCH_pr4.json and fails on parity drift
# or measurements outside the floors/ceilings (see bench_smoke.py).
bench-smoke:
	bash -c 'time $(PYTHON) benchmarks/bench_smoke.py'

# Scale bench: a 100k-UE, 2500-BS sharded run must finish inside a
# wall-clock + peak-RSS envelope, and a shard-count sweep must keep
# total profit within 1% of the single-shard (= monolithic) result;
# writes BENCH_pr5.json (caps/knobs via BENCH_SCALE_*, see
# benchmarks/bench_scale.py).
bench-scale:
	bash -c 'time $(PYTHON) benchmarks/bench_scale.py'

# Kernel bench: SoA vs object matching kernel on one mid-size
# monolithic scenario (bit-parity + BENCH_KERNEL_MIN_SPEEDUP floor),
# plus the 100k-UE sharded headline on the SoA kernel (match-phase
# wall cap, unchanged RSS cap, profit-vs-monolithic deviation bound);
# writes BENCH_pr6.json (knobs via BENCH_KERNEL_*, see
# benchmarks/bench_kernel.py).
bench-kernel:
	bash -c 'time $(PYTHON) benchmarks/bench_kernel.py'

# Streaming bench: sustained events/sec over steady churn through the
# event-driven engine, with two in-bench equivalence gates pinning the
# incremental engine to a from-scratch re-solve of the same event tape
# (bit-identical digest on a saturated small scenario; tolerance-
# diffed metrics documents at scale) plus an events/sec floor, a peak-
# RSS cap, and a rolling-population >= 10x active-set check; writes
# BENCH_pr7.json (caps/knobs via BENCH_STREAM_*, see
# benchmarks/bench_stream.py and docs/streaming.md).
bench-stream:
	bash -c 'time $(PYTHON) benchmarks/bench_stream.py'

# Bound bench: certify the optimality gap of the 100k-UE / 2500-BS
# sharded run with the Lagrangian upper bound (a scale where the exact
# ILP refuses), gate the certified gap, the bound-phase wall/RSS, and
# Lagrangian-vs-LP tightness at 600 UEs; writes BENCH_pr10.json
# (caps/knobs via BENCH_BOUND_*, see benchmarks/bench_bound.py and
# docs/bounds.md).
bench-bound:
	bash -c 'time $(PYTHON) benchmarks/bench_bound.py'

# Regenerate the committed metrics baseline the CI regression gate
# diffs against.  Do this only when a PR deliberately changes domain
# behaviour; commit the result together with the change.
metrics-baseline:
	$(PYTHON) -m repro run --ues 300 --seed 3 \
		--metrics benchmarks/results/baseline_metrics.json

# Regenerate the committed gap baseline the gap-gate CI job diffs
# against (certified gap + bound values + strategic-baseline profits
# on the contention scenario).  Regenerate only when a PR deliberately
# changes allocation or bound behaviour; commit with the change.
gap-baseline:
	$(PYTHON) -m repro bound --ues 600 --seed 3 --method both \
		--baselines auction best-response potential-game \
		--metrics benchmarks/results/baseline_gap_metrics.json

bench-paper:
	BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figure all --scale paper --out results/

extensions:
	$(PYTHON) -m repro figure extensions --scale paper --out results/

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results/reduced
	find . -name __pycache__ -type d -exec rm -rf {} +
