# Convenience targets for the DMRA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-smoke bench-paper figures extensions examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Seeded engine smoke bench: times a 2000-UE DMRA allocation (optimized
# vs reference engine) and a workers=1-vs-4 sweep, writes BENCH_pr1.json,
# and fails on parity-fixture drift or a speedup below the floor.
bench-smoke:
	bash -c 'time $(PYTHON) benchmarks/bench_smoke.py'

bench-paper:
	BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figure all --scale paper --out results/

extensions:
	$(PYTHON) -m repro figure extensions --scale paper --out results/

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results/reduced
	find . -name __pycache__ -type d -exec rm -rf {} +
