# Convenience targets for the DMRA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-paper figures extensions examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro figure all --scale paper --out results/

extensions:
	$(PYTHON) -m repro figure extensions --scale paper --out results/

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/results/reduced
	find . -name __pycache__ -type d -exec rm -rf {} +
