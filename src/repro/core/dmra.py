"""DMRA: the paper's contribution, as an :class:`Allocator`.

:class:`DMRAAllocator` plugs the DMRA preference rules
(:mod:`repro.core.preferences`) into the shared Alg. 1 matching engine.
The ``same_sp_priority=False`` switch supports the ablation experiments:
it removes the BS-side own-subscriber preference, isolating how much of
DMRA's profit edge comes from SP affinity.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.matching import MatchingContext, MatchingPolicy
from repro.core.soa import make_matching_engine
from repro.core.preferences import (
    dmra_bs_rank_key,
    dmra_price_term,
    dmra_slack_term,
    dmra_ue_score,
)
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["DMRAPolicy", "DMRAAllocator"]


class DMRAPolicy(MatchingPolicy):
    """The DMRA preference rules as a matching policy."""

    name = "dmra"

    def __init__(
        self,
        pricing: PricingPolicy,
        rho: float = 10.0,
        same_sp_priority: bool = True,
    ) -> None:
        if rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {rho}")
        self.pricing = pricing
        self.rho = rho
        self.same_sp_priority = same_sp_priority
        # {bs_id: sp_id} for the most recent network seen, rebuilt on
        # identity change (networks are immutable).  Saves a guarded
        # dict lookup per (UE, BS) pair during cache builds.
        self._sp_of_bs: dict[int, int] = {}
        self._sp_map_network: MECNetwork | None = None

    def _bs_owner_map(self, network: MECNetwork) -> dict[int, int]:
        if self._sp_map_network is not network:
            self._sp_of_bs = {
                bs.bs_id: bs.sp_id for bs in network.base_stations
            }
            self._sp_map_network = network
        return self._sp_of_bs

    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        return dmra_ue_score(ue, bs_id, ctx, self.pricing, self.rho)

    # ------------------------------------------------------------------
    # Engine hot-path hooks: Eq. 17 splits into a static price term
    # (cached per (UE, BS) pair by the engine) and a slack term shared
    # by every UE of one service at one BS within a round (tabulated
    # once per round, one entry per (service, BS)).
    # ------------------------------------------------------------------

    def static_ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float | None:
        return dmra_price_term(ue, bs_id, ctx, self.pricing)

    def static_ue_scores(
        self, ue: UserEquipment, bs_ids: list[int], ctx: MatchingContext
    ) -> list[float | None]:
        """Batched Eq. 9--10 prices with the UE-side lookups hoisted.

        Value-identical to :func:`dmra_price_term` per element — same
        distance, same ownership test, same arithmetic.
        """
        network = ctx.network
        price = self.pricing.price_per_cru
        distance = network.distance_m
        sp_of = self._bs_owner_map(network)
        ue_id = ue.ue_id
        ue_sp = ue.sp_id
        return [
            price(distance(ue_id, bs_id), ue_sp == sp_of[bs_id])
            for bs_id in bs_ids
        ]

    def round_additive_terms(
        self, ctx: MatchingContext, service_ids: frozenset[int]
    ) -> dict[int, dict[int, float]] | None:
        rho = self.rho
        return {
            service_id: {
                ledger.bs_id: dmra_slack_term(service_id, ledger.bs_id, ctx, rho)
                for ledger in ctx.ledgers
            }
            for service_id in service_ids
        }

    def bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple:
        key = dmra_bs_rank_key(ue_id, bs_id, ctx)
        if self.same_sp_priority:
            return key
        return key[1:]  # drop the cross-SP flag

    def static_bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple | None:
        """Static components of :func:`dmra_bs_rank_key`: the cross-SP
        flag and the combined resource footprint.  Only ``f_u`` varies
        round to round."""
        ue = ctx.network.user_equipment(ue_id)
        same_sp = ue.sp_id == self._bs_owner_map(ctx.network)[bs_id]
        footprint = ctx.rrbs_required(ue_id, bs_id) + ue.cru_demand
        return (0 if same_sp else 1, footprint)

    def bs_rank_key_from_static(
        self, ue_id: int, bs_id: int, static: tuple, ctx: MatchingContext
    ) -> tuple:
        f_u = ctx.feasible_bs_count(ue_id)
        if self.same_sp_priority:
            return (static[0], f_u, static[1])
        return (f_u, static[1])


class DMRAAllocator(Allocator):
    """Decentralized Multi-SP Resource Allocation (Alg. 1).

    Parameters
    ----------
    pricing:
        The BS pricing policy (Eqs. 9--10); defaults to the paper's
        parameters with ``iota = 2``.
    rho:
        The Eq. 17 weight trading price against BS slack.
    same_sp_priority:
        Ablation switch; see the module docstring.
    max_rounds:
        Safety bound on matching rounds.
    kernel:
        Matching kernel choice — ``"object"`` (the bit-parity reference
        engine, the default), ``"soa"`` (the structure-of-arrays
        kernel), or ``"auto"`` (SoA for plain DMRA, object otherwise);
        see :func:`repro.core.soa.make_matching_engine`.
    """

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        rho: float = 10.0,
        same_sp_priority: bool = True,
        max_rounds: int = 100_000,
        kernel: str = "object",
    ) -> None:
        if rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {rho}")
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.rho = rho
        self.same_sp_priority = same_sp_priority
        self.max_rounds = max_rounds
        self.kernel = kernel
        self.name = "dmra"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        policy = DMRAPolicy(
            pricing=self.pricing,
            rho=self.rho,
            same_sp_priority=self.same_sp_priority,
        )
        engine = make_matching_engine(
            policy, kernel=self.kernel, max_rounds=self.max_rounds
        )
        return engine.run(network, radio_map)
