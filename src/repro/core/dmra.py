"""DMRA: the paper's contribution, as an :class:`Allocator`.

:class:`DMRAAllocator` plugs the DMRA preference rules
(:mod:`repro.core.preferences`) into the shared Alg. 1 matching engine.
The ``same_sp_priority=False`` switch supports the ablation experiments:
it removes the BS-side own-subscriber preference, isolating how much of
DMRA's profit edge comes from SP affinity.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.matching import (
    IterativeMatchingEngine,
    MatchingContext,
    MatchingPolicy,
)
from repro.core.preferences import dmra_bs_rank_key, dmra_ue_score
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["DMRAPolicy", "DMRAAllocator"]


class DMRAPolicy(MatchingPolicy):
    """The DMRA preference rules as a matching policy."""

    name = "dmra"

    def __init__(
        self,
        pricing: PricingPolicy,
        rho: float = 10.0,
        same_sp_priority: bool = True,
    ) -> None:
        if rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {rho}")
        self.pricing = pricing
        self.rho = rho
        self.same_sp_priority = same_sp_priority

    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        return dmra_ue_score(ue, bs_id, ctx, self.pricing, self.rho)

    def bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple:
        key = dmra_bs_rank_key(ue_id, bs_id, ctx)
        if self.same_sp_priority:
            return key
        return key[1:]  # drop the cross-SP flag


class DMRAAllocator(Allocator):
    """Decentralized Multi-SP Resource Allocation (Alg. 1).

    Parameters
    ----------
    pricing:
        The BS pricing policy (Eqs. 9--10); defaults to the paper's
        parameters with ``iota = 2``.
    rho:
        The Eq. 17 weight trading price against BS slack.
    same_sp_priority:
        Ablation switch; see the module docstring.
    max_rounds:
        Safety bound on matching rounds.
    """

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        rho: float = 10.0,
        same_sp_priority: bool = True,
        max_rounds: int = 100_000,
    ) -> None:
        if rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {rho}")
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.rho = rho
        self.same_sp_priority = same_sp_priority
        self.max_rounds = max_rounds
        self.name = "dmra"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        policy = DMRAPolicy(
            pricing=self.pricing,
            rho=self.rho,
            same_sp_priority=self.same_sp_priority,
        )
        engine = IterativeMatchingEngine(policy, max_rounds=self.max_rounds)
        return engine.run(network, radio_map)
