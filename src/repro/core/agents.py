"""Agent-based decentralized DMRA: UE, BS, and SP agents passing messages.

This is the deployment-shaped implementation of Alg. 1.  Where
:class:`~repro.core.dmra.DMRAAllocator` runs the matching as one loop
over shared state, here every entity is an agent with private state:

* a :class:`UEAgent` sees only the resource broadcasts of the BSs that
  cover it and decides proposals locally (Eq. 17);
* a :class:`BSAgent` sees only the service requests in its mailbox and
  decides acceptances locally (BS-side preference + RRB budget);
* a :class:`SPAgent` relays messages between its subscribers and the
  BSs, and forwards unserveable tasks to the remote cloud — the "middle
  layer" role the paper assigns to SPs.

The agent classes are transport-agnostic: they consume and produce
:mod:`repro.core.messages` values and never touch a socket, queue, or
clock.  :class:`DecentralizedDMRAAllocator` drives synchronous rounds of
the exchange inside one process (the fast reference used by the
staleness ablation); :mod:`repro.dist` drives the *same* agent code
across real OS processes behind a pluggable transport.  Both are
bit-identical to the direct engine (asserted by the equivalence
integration tests), demonstrating that DMRA genuinely needs no central
coordinator.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.compute.cru import BSLedger
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ReleaseNotice,
    ResourceBroadcast,
    ServiceRequest,
)
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError, ConfigurationError
from repro.model.entities import BaseStation, UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = [
    "UEAgent",
    "BSAgent",
    "SPAgent",
    "BroadcastPipeline",
    "DecentralizedDMRAAllocator",
    "build_ue_agents",
]


@dataclass(frozen=True, slots=True)
class _CandidateInfo:
    """What a UE knows statically about one reachable BS."""

    bs_id: int
    price_per_cru: float
    rrbs_required: int


class UEAgent:
    """One user equipment: proposes per Eq. 17, from broadcasts only."""

    def __init__(
        self,
        ue: UserEquipment,
        candidates: list[_CandidateInfo],
        rho: float,
    ) -> None:
        self.ue = ue
        self.rho = rho
        self._candidates: dict[int, _CandidateInfo] = {
            info.bs_id: info for info in candidates
        }
        self._broadcasts: dict[int, ResourceBroadcast] = {}
        # Freshest (epoch, seq) accepted per BS; strictly older
        # broadcasts are stale (reordered or delayed in transit) and
        # must not overwrite newer state.
        self._freshness: dict[int, tuple[int, int]] = {}
        self.associated_bs: int | None = None
        self._assoc_epoch = 0
        self.gave_up = False
        # Explicit-release protocol state: the BS of the proposal still
        # awaiting an answer, releases queued for the transport layer to
        # drain, and the epoch at which each BS was last released (a
        # grant at or below that epoch is void — the UE already walked
        # away from it).
        self._proposed_bs: int | None = None
        self._pending_releases: list[ReleaseNotice] = []
        self._released: dict[int, int] = {}

    @property
    def ue_id(self) -> int:
        return self.ue.ue_id

    @property
    def candidate_bs_ids(self) -> tuple[int, ...]:
        """The UE's current ``B_u``."""
        return tuple(sorted(self._candidates))

    def observe(self, broadcast: ResourceBroadcast) -> bool:
        """Receive a BS's resource broadcast (only covering BSs send one).

        Returns ``False`` when the broadcast is stale — strictly older
        by ``(epoch, seq)`` than one already seen from the same BS — and
        was discarded.  An epoch bump means the BS restarted with a
        fresh ledger: any association this UE held there is void, so it
        re-enters the matching.
        """
        stamp = (broadcast.epoch, broadcast.seq)
        known = self._freshness.get(broadcast.bs_id)
        if known is not None and stamp < known:
            return False
        if (
            self.associated_bs == broadcast.bs_id
            and broadcast.epoch > self._assoc_epoch
        ):
            # The serving BS restarted after our grant was booked: the
            # reservation is gone, so re-enter the matching.
            self.associated_bs = None
        self._freshness[broadcast.bs_id] = stamp
        self._broadcasts[broadcast.bs_id] = broadcast
        return True

    def receive_grant(self, grant: AssociationGrant) -> bool:
        """Accept an association grant addressed to this UE.

        Returns ``False`` (grant declined) in three cases:

        * the grant's epoch is older than the freshest epoch seen from
          that BS — the reservation was wiped by a crash, so honoring
          the late grant would leave the UE associated to a BS that no
          longer serves it;
        * the UE already released that BS at this epoch (it walked away
          from the proposal the grant answers) — the release is
          re-queued in case the earlier notice was lost in transit;
        * the UE is already associated elsewhere (a duplicate
          acceptance, possible when a lost grant made it re-propose) —
          it keeps the association it has and queues a release so the
          declined BS frees the booking instead of stranding it.
        """
        if grant.ue_id != self.ue_id:
            raise AllocationError(
                f"UE {self.ue_id} received a grant addressed to {grant.ue_id}"
            )
        known = self._freshness.get(grant.bs_id)
        if known is not None and grant.epoch < known[0]:
            return False
        released = self._released.get(grant.bs_id)
        if released is not None and grant.epoch <= released:
            self._queue_release(grant.bs_id, grant.epoch)
            return False
        if self.associated_bs is not None and self.associated_bs != grant.bs_id:
            self._queue_release(grant.bs_id, grant.epoch)
            return False
        self.associated_bs = grant.bs_id
        self._assoc_epoch = grant.epoch
        self._proposed_bs = None
        return True

    def _queue_release(self, bs_id: int, epoch: int) -> None:
        previous = self._released.get(bs_id)
        self._released[bs_id] = (
            epoch if previous is None else max(previous, epoch)
        )
        self._pending_releases.append(
            ReleaseNotice(
                ue_id=self.ue_id,
                sp_id=self.ue.sp_id,
                bs_id=bs_id,
                epoch=epoch,
            )
        )

    def drain_releases(self) -> list[ReleaseNotice]:
        """Queued release notices, cleared on read (transport hook)."""
        notices = self._pending_releases
        self._pending_releases = []
        return notices

    def still_released(self, bs_id: int) -> bool:
        """Whether the UE still disowns ``bs_id`` (no re-proposal since
        the release).  Transports that re-send unacked releases must
        stop once this turns ``False``, or the re-sent notice would free
        the booking of the *new* proposal."""
        return bs_id in self._released

    # ------------------------------------------------------------------
    # Decision logic (Alg. 1 lines 3--10, run locally)
    # ------------------------------------------------------------------

    def _slack(self, bs_id: int) -> int:
        """The Eq. 17 denominator as known from the latest broadcast:
        remaining CRUs of this UE's service plus remaining RRBs —
        exactly the direct engine's ``dmra_slack_term`` inputs.
        ``-1`` flags "no broadcast seen yet" (see :meth:`_score`)."""
        broadcast = self._broadcasts.get(bs_id)
        if broadcast is None:
            # No broadcast yet means the first round: assume the static
            # capacities the candidate list was built against are intact.
            return -1
        return (
            broadcast.remaining_crus.get(self.ue.service_id, 0)
            + broadcast.remaining_rrbs
        )

    def _fits(self, info: _CandidateInfo) -> bool:
        broadcast = self._broadcasts.get(info.bs_id)
        if broadcast is None:
            return True
        return (
            broadcast.remaining_crus.get(self.ue.service_id, 0)
            >= self.ue.cru_demand
            and broadcast.remaining_rrbs >= info.rrbs_required
        )

    def _score(self, info: _CandidateInfo) -> float:
        slack = self._slack(info.bs_id)
        if slack < 0:
            # No broadcast seen yet: price-only ordering is exact because
            # all slacks are at full capacity... which the UE does not
            # know numerically; DecentralizedDMRAAllocator always sends
            # an initial broadcast before round 1, so this path is only
            # a safety net.
            return info.price_per_cru
        if slack == 0:
            return math.inf if self.rho > 0 else info.price_per_cru
        return info.price_per_cru + self.rho / slack

    def coverage_count(self) -> int:
        """``f_u``: candidates that still fit per the latest broadcasts."""
        return sum(1 for info in self._candidates.values() if self._fits(info))

    def _release_abandoned_proposal(self, next_bs_id: int | None) -> None:
        """Queue a release for the BS of a proposal the UE walks away
        from (it switched targets or fell back to the cloud).  The UE
        cannot know whether that BS granted — if it did and the grant
        was lost, the booking would otherwise stay stranded; if it did
        not, the release is a no-op there."""
        if self._proposed_bs is None or self._proposed_bs == next_bs_id:
            return
        epoch = self._freshness.get(self._proposed_bs, (0, 0))[0]
        self._queue_release(self._proposed_bs, epoch)

    def propose(self) -> ServiceRequest | CloudFallbackNotice | None:
        """Run one proposal step; ``None`` when already associated."""
        if self.associated_bs is not None or self.gave_up:
            return None
        while self._candidates:
            best = min(
                self._candidates.values(),
                key=lambda info: (self._score(info), info.bs_id),
            )
            if self._fits(best):
                self._release_abandoned_proposal(best.bs_id)
                # A fresh proposal supersedes any earlier walk-away:
                # the grant it solicits must be acceptable again.
                self._released.pop(best.bs_id, None)
                self._proposed_bs = best.bs_id
                return ServiceRequest(
                    ue_id=self.ue_id,
                    sp_id=self.ue.sp_id,
                    target_bs_id=best.bs_id,
                    service_id=self.ue.service_id,
                    cru_demand=self.ue.cru_demand,
                    rrbs_required=best.rrbs_required,
                    coverage_count=self.coverage_count(),
                )
            del self._candidates[best.bs_id]
        self.gave_up = True
        self._release_abandoned_proposal(None)
        self._proposed_bs = None
        return CloudFallbackNotice(ue_id=self.ue_id, sp_id=self.ue.sp_id)


class BSAgent:
    """One base station: accepts per the BS-side preference, from its
    mailbox only."""

    def __init__(self, base_station: BaseStation, epoch: int = 0) -> None:
        self.bs = base_station
        self.ledger = BSLedger(base_station)
        self.epoch = epoch
        self._seq = 0
        self._mailbox: list[ServiceRequest] = []

    @property
    def bs_id(self) -> int:
        return self.bs.bs_id

    def reset(self) -> None:
        """Crash recovery: restart with a fresh ledger in a new epoch.

        Every grant this BS held is void; UEs discover that from the
        epoch bump carried by the next broadcast.  ``seq`` keeps
        counting so ``(epoch, seq)`` stays totally ordered.
        """
        self.ledger = BSLedger(self.bs)
        self.epoch += 1
        self._mailbox.clear()

    def deliver(self, request: ServiceRequest) -> None:
        """Queue a service request addressed to this BS."""
        if request.target_bs_id != self.bs_id:
            raise AllocationError(
                f"BS {self.bs_id} received a request targeting "
                f"{request.target_bs_id}"
            )
        self._mailbox.append(request)

    def _rank_key(self, request: ServiceRequest) -> tuple[int, int, int, int]:
        """Smaller = preferred: own subscribers, then smallest f_u, then
        lightest footprint, then UE id for determinism."""
        return (
            0 if request.sp_id == self.bs.sp_id else 1,
            request.coverage_count,
            request.rrbs_required + request.cru_demand,
            request.ue_id,
        )

    def process_round(self) -> list[AssociationGrant]:
        """Alg. 1 lines 12--25 over the current mailbox.

        Requests that no longer fit the BS's *actual* remaining
        resources are discarded up front.  With fresh broadcasts this
        filter never fires (the UE checked the same state before
        proposing); it exists for the stale-broadcast regime, where UEs
        may propose on outdated information and the BS — which always
        knows its own ledger — must be the backstop.  Requests from UEs
        this BS already serves are dropped too: under an unreliable
        transport a UE whose grant was lost in transit re-proposes, and
        regranting would double-book the ledger.
        """
        if not self._mailbox:
            return []
        by_service: dict[int, list[ServiceRequest]] = {}
        for request in self._mailbox:
            if (
                request.ue_id in self.ledger.grants
                or self.ledger.remaining_crus(request.service_id)
                < request.cru_demand
                or self.ledger.remaining_rrbs < request.rrbs_required
            ):
                continue
            by_service.setdefault(request.service_id, []).append(request)
        self._mailbox.clear()
        if not by_service:
            return []

        picks = [
            min(candidates, key=self._rank_key)
            for _, candidates in sorted(by_service.items())
        ]
        total_rrbs = sum(p.rrbs_required for p in picks)
        if total_rrbs > self.ledger.remaining_rrbs:
            ranked = sorted(picks, key=self._rank_key)
            while ranked and total_rrbs > self.ledger.remaining_rrbs:
                evicted = ranked.pop()
                total_rrbs -= evicted.rrbs_required
            picks = ranked

        grants: list[AssociationGrant] = []
        for request in picks:
            self.ledger.grant(
                ue_id=request.ue_id,
                service_id=request.service_id,
                crus=request.cru_demand,
                rrbs=request.rrbs_required,
            )
            grants.append(
                AssociationGrant(
                    bs_id=self.bs_id,
                    ue_id=request.ue_id,
                    service_id=request.service_id,
                    crus=request.cru_demand,
                    rrbs=request.rrbs_required,
                    epoch=self.epoch,
                )
            )
        return grants

    def release(self, ue_id: int, epoch: int) -> bool:
        """Honor a :class:`ReleaseNotice`: free the UE's reservation.

        Ignored (``False``) when the epoch does not match the current
        ledger epoch — the booking the notice names was already wiped
        by a crash, and a same-id booking from a later epoch belongs to
        a *new* proposal — or when no reservation exists (the UE
        released a BS that had rejected it, or a duplicate notice).
        """
        if epoch != self.epoch or ue_id not in self.ledger.grants:
            return False
        self.ledger.release(ue_id)
        return True

    def grant_for(self, ue_id: int) -> AssociationGrant | None:
        """The grant this BS holds for a UE (grant-retransmission path)."""
        grant = self.ledger.grants.get(ue_id)
        if grant is None:
            return None
        return AssociationGrant(
            bs_id=grant.bs_id,
            ue_id=grant.ue_id,
            service_id=grant.service_id,
            crus=grant.crus,
            rrbs=grant.rrbs,
            epoch=self.epoch,
        )

    def broadcast(self) -> ResourceBroadcast:
        """Advertise remaining resources (Alg. 1 line 26)."""
        self._seq += 1
        return ResourceBroadcast(
            bs_id=self.bs_id,
            remaining_crus={
                service_id: self.ledger.remaining_crus(service_id)
                for service_id in self.bs.cru_capacity
            },
            remaining_rrbs=self.ledger.remaining_rrbs,
            seq=self._seq,
            epoch=self.epoch,
        )


@dataclass
class SPAgent:
    """One service provider: the relay layer between UEs and BSs.

    The SP never makes allocation decisions in DMRA; it routes requests
    and grants for its subscribers and forwards hopeless tasks to the
    remote cloud.  Message counters expose the relay load for the
    decentralization overhead bench.
    """

    sp_id: int
    requests_relayed: int = 0
    grants_relayed: int = 0
    cloud_forwards: int = 0
    _cloud_ue_ids: set[int] = field(default_factory=set)

    def relay_request(self, request: ServiceRequest) -> ServiceRequest:
        """Forward a subscriber's service request toward its target BS."""
        if request.sp_id != self.sp_id:
            raise AllocationError(
                f"SP {self.sp_id} asked to relay a request from a "
                f"subscriber of SP {request.sp_id}"
            )
        self.requests_relayed += 1
        return request

    def relay_grant(self, grant: AssociationGrant) -> AssociationGrant:
        """Forward a BS's grant back to the subscriber."""
        self.grants_relayed += 1
        return grant

    def forward_to_cloud(self, notice: CloudFallbackNotice) -> None:
        """Send a subscriber's unserveable task to the remote cloud."""
        if notice.sp_id != self.sp_id:
            raise AllocationError(
                f"SP {self.sp_id} asked to forward a task of SP "
                f"{notice.sp_id}"
            )
        self.cloud_forwards += 1
        self._cloud_ue_ids.add(notice.ue_id)

    @property
    def cloud_ue_ids(self) -> frozenset[int]:
        return frozenset(self._cloud_ue_ids)


class BroadcastPipeline:
    """The stale-broadcast delay line of one BS.

    Models gossip latency: the broadcast a UE observes in round ``r`` is
    the one the BS sent ``delay`` rounds earlier.  Backed by a
    ``deque(maxlen=delay + 1)`` so each round's push is O(1) — the
    previous list-based implementation shifted the whole pipeline with
    ``pop(0)`` every round.

    The pipeline starts filled with the BS's initial full-capacity
    broadcast (what a UE would have cached from the attach procedure);
    :meth:`push` enqueues this round's broadcast and returns the one due
    for delivery now.
    """

    def __init__(self, initial: ResourceBroadcast, delay: int) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.delay = delay
        self._line: deque[ResourceBroadcast] = deque(
            [initial] * (delay + 1), maxlen=delay + 1
        )

    def push(self, broadcast: ResourceBroadcast) -> ResourceBroadcast:
        """Enqueue this round's broadcast; return the delivered head —
        the broadcast sent ``delay`` rounds ago."""
        # maxlen evicts the expired head from the left automatically.
        self._line.append(broadcast)
        return self._line[0]

    @property
    def head(self) -> ResourceBroadcast:
        """The broadcast most recently delivered (pipeline head)."""
        return self._line[0]


def build_ue_agents(
    network: MECNetwork,
    radio_map: RadioMap,
    pricing: PricingPolicy,
    rho: float,
    ue_ids: list[int] | None = None,
) -> dict[int, UEAgent]:
    """Construct UE agents with their static candidate knowledge.

    Shared by the in-process allocator below and the multi-process
    deployment (:mod:`repro.dist`), where each UE-host process builds
    only its own partition (``ue_ids``).
    """
    wanted = None if ue_ids is None else set(ue_ids)
    return {
        ue.ue_id: UEAgent(
            ue,
            candidates=[
                _CandidateInfo(
                    bs_id=bs_id,
                    price_per_cru=pricing.price_per_cru(
                        network.distance_m(ue.ue_id, bs_id),
                        network.same_sp(ue.ue_id, bs_id),
                    ),
                    rrbs_required=radio_map.link(
                        ue.ue_id, bs_id
                    ).rrbs_required,
                )
                for bs_id in network.candidate_base_stations(ue.ue_id)
            ],
            rho=rho,
        )
        for ue in network.user_equipments
        if wanted is None or ue.ue_id in wanted
    }


class DecentralizedDMRAAllocator(Allocator):
    """DMRA as synchronous rounds of agent message exchange.

    Produces the same association as :class:`DMRAAllocator` (verified by
    integration tests); additionally exposes per-SP relay statistics via
    :attr:`last_sp_agents` for overhead analysis.
    """

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        rho: float = 10.0,
        max_rounds: int = 100_000,
        broadcast_delay_rounds: int = 0,
    ) -> None:
        if rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {rho}")
        if max_rounds <= 0:
            raise ConfigurationError(
                f"max_rounds must be > 0, got {max_rounds}"
            )
        if broadcast_delay_rounds < 0:
            raise ConfigurationError(
                f"broadcast delay must be >= 0, got {broadcast_delay_rounds}"
            )
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.rho = rho
        self.max_rounds = max_rounds
        self.broadcast_delay_rounds = broadcast_delay_rounds
        self.name = "dmra-agents"
        self.last_sp_agents: dict[int, SPAgent] = {}

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        ue_agents = build_ue_agents(
            network, radio_map, self.pricing, self.rho
        )
        bs_agents = {
            bs.bs_id: BSAgent(bs) for bs in network.base_stations
        }
        sp_agents = {sp.sp_id: SPAgent(sp.sp_id) for sp in network.providers}

        # Invert coverage once: bs_id -> the UE agents it broadcasts to.
        # The per-round fan-out below walks only this index instead of
        # re-scanning every UE's coverage set for every BS (which made
        # the broadcast phase O(BS x UE) per round).
        covered_by_bs: dict[int, list[UEAgent]] = {
            bs_id: [] for bs_id in bs_agents
        }
        for agent in ue_agents.values():
            for bs_id in agent.candidate_bs_ids:
                covered_by_bs[bs_id].append(agent)

        # Stale-broadcast delay lines: UEs observe the broadcast a BS
        # sent ``broadcast_delay_rounds`` rounds ago (0 = fresh, the
        # paper's implicit assumption).
        pipelines = {
            bs_id: BroadcastPipeline(
                agent.broadcast(), self.broadcast_delay_rounds
            )
            for bs_id, agent in bs_agents.items()
        }
        # Last broadcast actually delivered per BS: deliveries that
        # advertise unchanged resources are skipped — observing an
        # identical broadcast is a no-op, so only BSs whose (delayed)
        # advertisement changed since the previous round fan out.
        delivered_before: dict[int, ResourceBroadcast | None] = {
            bs_id: None for bs_id in bs_agents
        }

        rounds = 0
        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise AllocationError(
                    f"agent matching did not terminate within "
                    f"{self.max_rounds} rounds"
                )

            # BSs broadcast remaining resources to the UEs they cover,
            # delivered through the (possibly delayed) pipeline.
            for bs_id, bs_agent in bs_agents.items():
                delivered = pipelines[bs_id].push(bs_agent.broadcast())
                if delivered.same_resources(delivered_before[bs_id]):
                    continue
                delivered_before[bs_id] = delivered
                for ue_agent in covered_by_bs[bs_id]:
                    ue_agent.observe(delivered)

            # UEs propose; SPs relay requests to the target BSs.
            any_request = False
            for ue_id in sorted(ue_agents):
                message = ue_agents[ue_id].propose()
                if message is None:
                    continue
                sp_agent = sp_agents[message.sp_id]
                if isinstance(message, CloudFallbackNotice):
                    sp_agent.forward_to_cloud(message)
                    continue
                any_request = True
                relayed = sp_agent.relay_request(message)
                bs_agents[relayed.target_bs_id].deliver(relayed)
            if not any_request:
                break

            # BSs decide; SPs relay grants back to their subscribers.
            for bs_id in sorted(bs_agents):
                for grant in bs_agents[bs_id].process_round():
                    ue_agent = ue_agents[grant.ue_id]
                    sp_agent = sp_agents[ue_agent.ue.sp_id]
                    ue_agent.receive_grant(sp_agent.relay_grant(grant))

        self.last_sp_agents = sp_agents
        grants = [
            grant
            for bs_agent in bs_agents.values()
            for grant in bs_agent.ledger.grants.values()
        ]
        cloud = {
            ue_id
            for ue_id, agent in ue_agents.items()
            if agent.associated_bs is None
        }
        # ``rounds`` counted the terminating probe round (no service
        # request sent); report productive rounds only, matching the
        # engine's Assignment.rounds semantics.
        return Assignment(
            grants=tuple(grants),
            cloud_ue_ids=frozenset(cloud),
            rounds=rounds - 1,
        )
