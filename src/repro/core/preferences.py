"""DMRA preference functions (Eq. 17 and the BS-side selection rule).

UE side — Eq. 17::

    v_{u,i} = p_{i,u} + rho / [ (c_{i,j} - used CRUs) + (N_i - used RRBs) ]

Lower is better: the UE balances the price the BS would charge against
how much slack the BS still has; ``rho`` tunes the trade-off (swept in
Figs. 6--7).  The price term is round-invariant and the slack term
depends only on the BS's current ledger, so the score splits cleanly for
the engine's preference cache: :func:`dmra_price_term` is computed once
per (UE, BS) pair, :func:`dmra_slack_term` once per (BS, service) per
round.

When a BS's combined slack reaches zero the ``rho / slack`` term of
Eq. 17 would divide by zero; we define the limit behaviour explicitly:
for ``rho > 0`` the score is ``+inf`` — the BS ranks strictly last and
the UE never proposes there (the engine's feasibility check would
discard it anyway) — and for ``rho = 0`` the slack term vanishes, so
the score degenerates to the bare price.

BS side — §V: a service prefers (1) UEs of its own SP, then (2) the UE
reachable by the fewest still-feasible BSs (smallest ``f_u``), then
(3) the UE with the smallest combined footprint ``n_{u,i} + c_j^u``.
"""

from __future__ import annotations

import math

from repro.core.matching import MatchingContext
from repro.econ.pricing import PricingPolicy
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment

__all__ = [
    "dmra_ue_score",
    "dmra_price_term",
    "dmra_slack_term",
    "dmra_bs_rank_key",
]


def dmra_price_term(
    ue: UserEquipment,
    bs_id: int,
    ctx: MatchingContext,
    pricing: PricingPolicy,
) -> float:
    """The static ``p_{i,u}`` component of Eq. 17 (Eqs. 9--10)."""
    return pricing.price_per_cru(
        ctx.network.distance_m(ue.ue_id, bs_id),
        ctx.network.same_sp(ue.ue_id, bs_id),
    )


def dmra_slack_term(
    service_id: int,
    bs_id: int,
    ctx: MatchingContext,
    rho: float,
) -> float:
    """The dynamic ``rho / slack`` component of Eq. 17.

    Shared by every UE of one service at one BS within a round (ledgers
    are frozen during the proposal phase), which is what makes it
    memoizable.  Zero slack yields the defined limit: ``+inf`` for
    ``rho > 0`` (BS ranked last), ``0.0`` for ``rho = 0``.
    """
    ledger = ctx.ledgers.ledger(bs_id)
    slack = ledger.remaining_crus(service_id) + ledger.remaining_rrbs
    if slack <= 0:
        return math.inf if rho > 0 else 0.0
    return rho / slack


def dmra_ue_score(
    ue: UserEquipment,
    bs_id: int,
    ctx: MatchingContext,
    pricing: PricingPolicy,
    rho: float,
) -> float:
    """Eq. 17: the UE's preference value ``v_{u,i}`` (smaller = better)."""
    if rho < 0:
        raise ConfigurationError(f"rho must be >= 0, got {rho}")
    price = dmra_price_term(ue, bs_id, ctx, pricing)
    return price + dmra_slack_term(ue.service_id, bs_id, ctx, rho)


def dmra_bs_rank_key(
    ue_id: int, bs_id: int, ctx: MatchingContext
) -> tuple[int, int, int]:
    """BS-side ranking tuple (smaller = preferred).

    ``(cross-SP flag, f_u, n_{u,i} + c_j^u)`` — same-SP UEs first, then
    the most constrained UE, then the lightest footprint.
    """
    ue = ctx.network.user_equipment(ue_id)
    same_sp = ctx.network.same_sp(ue_id, bs_id)
    footprint = ctx.rrbs_required(ue_id, bs_id) + ue.cru_demand
    return (0 if same_sp else 1, ctx.feasible_bs_count(ue_id), footprint)
