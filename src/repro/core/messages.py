"""Wire messages of the decentralized DMRA deployment.

The paper's architecture is message-driven: UEs talk to their SP, the SP
relays to BSs, BSs answer with association grants and periodically
broadcast their remaining resources.  These frozen dataclasses are the
complete vocabulary; agents (:mod:`repro.core.agents`) exchange nothing
else, which is what makes the decentralization claim checkable — a BS
decides using only the fields a :class:`ServiceRequest` carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "ServiceRequest",
    "AssociationGrant",
    "ResourceBroadcast",
    "CloudFallbackNotice",
]


@dataclass(frozen=True, slots=True)
class ServiceRequest:
    """A UE's proposal to one BS (Alg. 1 line 7).

    Carries exactly what the paper says the request includes: the UE's
    identity and subscription, its service demands, and the number of
    BSs that can still serve it (``f_u``, as computed by the UE from the
    latest broadcasts).  ``rrbs_required`` is ``n_{u,i}`` for the target
    BS — in a real deployment the BS derives it from the measured uplink
    SINR; here the UE ships the precomputed value for both sides.
    """

    ue_id: int
    sp_id: int
    target_bs_id: int
    service_id: int
    cru_demand: int
    rrbs_required: int
    coverage_count: int  # f_u at send time


@dataclass(frozen=True, slots=True)
class AssociationGrant:
    """A BS's acceptance of a service request (``a_{u,i} = 1``)."""

    bs_id: int
    ue_id: int
    service_id: int
    crus: int
    rrbs: int


@dataclass(frozen=True, slots=True)
class ResourceBroadcast:
    """A BS's end-of-round advertisement of its remaining resources
    (Alg. 1 line 26)."""

    bs_id: int
    remaining_crus: Mapping[int, int]
    remaining_rrbs: int


@dataclass(frozen=True, slots=True)
class CloudFallbackNotice:
    """A UE telling its SP that no BS can serve it; the SP forwards the
    task to the remote cloud."""

    ue_id: int
    sp_id: int
