"""Wire messages of the decentralized DMRA deployment.

The paper's architecture is message-driven: UEs talk to their SP, the SP
relays to BSs, BSs answer with association grants and periodically
broadcast their remaining resources.  These frozen dataclasses are the
complete vocabulary; agents (:mod:`repro.core.agents`) exchange nothing
else, which is what makes the decentralization claim checkable — a BS
decides using only the fields a :class:`ServiceRequest` carries.

Two deployment-shaped concerns live here as well:

* **Sequence numbers and epochs.**  A :class:`ResourceBroadcast` carries
  ``seq`` (monotone per BS) and ``epoch`` (bumped when a BS restarts
  after a crash with a fresh ledger).  Receivers drop broadcasts older
  than the freshest one already seen — the staleness detection a real
  transport with reordering and delay needs — and treat an epoch bump
  from their serving BS as an implicit disassociation.
* **Wire serialization.**  :func:`to_wire` / :func:`from_wire` map every
  message to/from a flat JSON-able dict tagged with a ``"k"`` kind.
  Every transport of :mod:`repro.dist` (in-proc queues included) moves
  messages in this encoded form, so byte-level overhead accounting is
  uniform and the serialization path is exercised even in tests that
  never leave the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = [
    "ServiceRequest",
    "AssociationGrant",
    "ResourceBroadcast",
    "CloudFallbackNotice",
    "ReleaseNotice",
    "to_wire",
    "from_wire",
]


@dataclass(frozen=True, slots=True)
class ServiceRequest:
    """A UE's proposal to one BS (Alg. 1 line 7).

    Carries exactly what the paper says the request includes: the UE's
    identity and subscription, its service demands, and the number of
    BSs that can still serve it (``f_u``, as computed by the UE from the
    latest broadcasts).  ``rrbs_required`` is ``n_{u,i}`` for the target
    BS — in a real deployment the BS derives it from the measured uplink
    SINR; here the UE ships the precomputed value for both sides.
    """

    ue_id: int
    sp_id: int
    target_bs_id: int
    service_id: int
    cru_demand: int
    rrbs_required: int
    coverage_count: int  # f_u at send time


@dataclass(frozen=True, slots=True)
class AssociationGrant:
    """A BS's acceptance of a service request (``a_{u,i} = 1``).

    ``epoch`` is the BS ledger epoch the grant was booked in; a grant
    delivered late, after its BS crashed and restarted, carries a stale
    epoch and must not re-associate the UE (the reservation is gone).
    """

    bs_id: int
    ue_id: int
    service_id: int
    crus: int
    rrbs: int
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class ResourceBroadcast:
    """A BS's end-of-round advertisement of its remaining resources
    (Alg. 1 line 26).

    ``seq`` increases by one per broadcast a BS sends; ``epoch``
    increases when the BS restarts with a fresh ledger after a crash.
    Together they totally order one BS's broadcasts: a receiver holding
    ``(epoch, seq)`` discards anything strictly older.
    """

    bs_id: int
    remaining_crus: Mapping[int, int]
    remaining_rrbs: int
    seq: int = 0
    epoch: int = 0

    def same_resources(self, other: "ResourceBroadcast | None") -> bool:
        """Whether delivering ``self`` after ``other`` changes anything a
        UE acts on (resource numbers and epoch; ``seq`` is excluded)."""
        return (
            other is not None
            and self.epoch == other.epoch
            and self.remaining_rrbs == other.remaining_rrbs
            and dict(self.remaining_crus) == dict(other.remaining_crus)
        )


@dataclass(frozen=True, slots=True)
class ReleaseNotice:
    """A UE declining a grant it will not use (explicit disassociation).

    Under lossy transports a UE can receive acceptances from two BSs for
    the same association round (a re-sent proposal after a dropped
    grant).  It keeps one and sends a :class:`ReleaseNotice` for the
    other, so the declined BS frees the reservation instead of carrying
    a stranded booking to assembly.  ``epoch`` is the declined grant's
    ledger epoch: a release that arrives after the BS restarted must
    not free someone else's re-booked resources.
    """

    ue_id: int
    sp_id: int
    bs_id: int
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class CloudFallbackNotice:
    """A UE telling its SP that no BS can serve it; the SP forwards the
    task to the remote cloud."""

    ue_id: int
    sp_id: int


# ----------------------------------------------------------------------
# Wire form: flat dicts tagged with a "k" kind, JSON-able as-is
# ----------------------------------------------------------------------

#: Wire kind tags, also the label values of the ``dist.messages.<kind>``
#: accounting counters.
WIRE_KINDS = ("req", "grant", "bcast", "cloud", "release")


def to_wire(message) -> dict:
    """Encode a message as a flat JSON-able dict tagged with ``"k"``."""
    if isinstance(message, ServiceRequest):
        return {
            "k": "req",
            "ue": message.ue_id,
            "sp": message.sp_id,
            "bs": message.target_bs_id,
            "svc": message.service_id,
            "cru": message.cru_demand,
            "rrb": message.rrbs_required,
            "fu": message.coverage_count,
        }
    if isinstance(message, AssociationGrant):
        return {
            "k": "grant",
            "bs": message.bs_id,
            "ue": message.ue_id,
            "svc": message.service_id,
            "cru": message.crus,
            "rrb": message.rrbs,
            "epoch": message.epoch,
        }
    if isinstance(message, ResourceBroadcast):
        return {
            "k": "bcast",
            "bs": message.bs_id,
            # JSON object keys are strings; from_wire restores ints.
            "crus": {str(s): c for s, c in message.remaining_crus.items()},
            "rrbs": message.remaining_rrbs,
            "seq": message.seq,
            "epoch": message.epoch,
        }
    if isinstance(message, CloudFallbackNotice):
        return {"k": "cloud", "ue": message.ue_id, "sp": message.sp_id}
    if isinstance(message, ReleaseNotice):
        return {
            "k": "release",
            "ue": message.ue_id,
            "sp": message.sp_id,
            "bs": message.bs_id,
            "epoch": message.epoch,
        }
    raise ConfigurationError(
        f"cannot encode {type(message).__name__} as a wire message"
    )


def from_wire(payload: Mapping) -> object:
    """Decode :func:`to_wire` output back into its message dataclass."""
    kind = payload.get("k")
    if kind == "req":
        return ServiceRequest(
            ue_id=payload["ue"],
            sp_id=payload["sp"],
            target_bs_id=payload["bs"],
            service_id=payload["svc"],
            cru_demand=payload["cru"],
            rrbs_required=payload["rrb"],
            coverage_count=payload["fu"],
        )
    if kind == "grant":
        return AssociationGrant(
            bs_id=payload["bs"],
            ue_id=payload["ue"],
            service_id=payload["svc"],
            crus=payload["cru"],
            rrbs=payload["rrb"],
            epoch=payload.get("epoch", 0),
        )
    if kind == "bcast":
        return ResourceBroadcast(
            bs_id=payload["bs"],
            remaining_crus={
                int(s): c for s, c in payload["crus"].items()
            },
            remaining_rrbs=payload["rrbs"],
            seq=payload.get("seq", 0),
            epoch=payload.get("epoch", 0),
        )
    if kind == "cloud":
        return CloudFallbackNotice(ue_id=payload["ue"], sp_id=payload["sp"])
    if kind == "release":
        return ReleaseNotice(
            ue_id=payload["ue"],
            sp_id=payload["sp"],
            bs_id=payload["bs"],
            epoch=payload.get("epoch", 0),
        )
    raise ConfigurationError(f"unknown wire message kind {kind!r}")
