"""Structure-of-arrays twin of the Alg. 1 matching engine.

:class:`SoAMatchingEngine` runs the same deferred-acceptance round loop
as :class:`~repro.core.matching.IterativeMatchingEngine`, but flattens
the whole run into index arrays once and then executes every round as a
handful of whole-array operations.  The object engine stays the
bit-parity *reference*; this kernel is the throughput path for the DMRA
policy at scale (the per-shard inner loop is ~90% of the 100k-UE
headline run).

Ledger layout
-------------
The run is compiled into a CSR problem over candidate links:

* **UE rows** (one per target UE, ascending ``ue_id``): service pool
  index, CRU demand, SP id, and the external ``ue_id``.
* **BS columns** (one per base station, ledger-pool order): ``bs_id``,
  SP id, and the *columnar remainders* — ``rem_rrb[n_bs]`` plus a flat
  ``rem_cru[n_bs * n_svc]`` (BS-major) mirroring every
  :class:`~repro.compute.cru.BSLedger`'s per-service CRU ledger.
* **Candidate pairs** in CSR order (UE-row major, ascending ``bs_id``
  within a row — the object engine's scan order): the BS pool index,
  the cached ``n_{u,i}`` RRB demand lifted straight from the
  :class:`~repro.radio.channel.RadioMap` columns, the cached Eq. 17
  price term ``p_{i,u}``, and an ``alive`` feasibility mask.

Each round is then:

1. **Vectorized Eq. 17 scoring + argmin** — ``score = static +
   rho / slack`` over the alive pairs of still-unassociated UEs, with a
   segmented first-occurrence argmin per UE row (exactly the reference
   engine's ``(score, bs_id)`` tie-break, because rows are ascending in
   ``bs_id``).  UEs whose row goes empty are forwarded to the cloud.
2. **Grouped per-(BS, service) selection** — one lexsort over the
   proposals by the DMRA BS-side rank key ``(cross-SP, f_u, footprint,
   ue_id)`` picks each (BS, service)'s most preferred candidate.
3. **Batched RRB-budget eviction** — per-BS demand totals via
   ``reduceat``; only over-budget BSs fall back to a per-BS rank sort,
   where the engine's evict-from-the-tail loop collapses to "keep the
   longest rank-ordered prefix whose demand cumsum fits".
4. **Watermark-style feasibility retirement** — grants shrink the
   columnar remainders, and the alive mask is re-derived by one
   whole-array comparison (resources only shrink, so a pair flips
   feasible→infeasible at most once — same monotonicity argument as the
   object engine's watermark heaps, without the heaps).

Parity contract
---------------
For any scenario the object engine accepts under a plain
:class:`~repro.core.dmra.DMRAPolicy`, this kernel produces a
**bit-identical** :class:`~repro.core.assignment.Assignment` — same
grants tuple (order included), same cloud set, same round count — and
emits the same telemetry spans and counters (``match`` / ``match.round``
attributes, ``match.*`` counters), so ``dmra trace diff`` between the
two kernels is clean on the derived match families.  The property suite
(``tests/property/test_soa_parity.py``) and the golden fixtures pin
this.  Policies other than exactly ``DMRAPolicy`` (subclasses included:
their overridden hooks cannot be compiled here) must use the object
engine — :func:`make_matching_engine` with ``kernel="auto"`` arbitrates.

Backend hook
------------
The innermost step — the segmented first-occurrence argmin — is
pluggable via :func:`register_matching_backend`, mirroring
``register_array_rate_model`` from the radio layer.  ``"numpy"`` (the
default) uses ``minimum.reduceat``; ``"numba"`` JIT-compiles a fused
loop when the optional numba package is installed and raises a clear
:class:`~repro.errors.ConfigurationError` when it is not.  Backends
must agree with the numpy implementation exactly (first index of the
segment minimum, ``+inf`` included) — the parity suite assumes it.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

import numpy as np

from repro.compute.cru import LedgerPool
from repro.core.assignment import Assignment
from repro.core.matching import MatchingPolicy, RoundStats
from repro.errors import AllocationError, ConfigurationError
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import RadioMap

__all__ = [
    "SoAMatchingEngine",
    "make_matching_engine",
    "register_matching_backend",
    "available_matching_backends",
    "KERNELS",
]

#: Valid ``--kernel`` / ``make_matching_engine`` choices.
KERNELS = ("object", "soa", "auto")

#: A segmented argmin: ``(scores, seg_starts) -> first-min index per
#: segment`` (indices into ``scores``; segments are contiguous,
#: ``seg_starts`` ascending, the last segment ends at ``len(scores)``).
SegmentedArgmin = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _segmented_argmin_numpy(
    scores: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Reference backend: first occurrence of each segment's minimum."""
    mins = np.minimum.reduceat(scores, starts)
    counts = np.diff(np.append(starts, scores.size))
    is_min = scores == np.repeat(mins, counts)
    position = np.where(is_min, np.arange(scores.size), scores.size)
    return np.minimum.reduceat(position, starts)


def _numba_backend_factory() -> SegmentedArgmin:
    """JIT-compiled twin of the numpy backend (optional dependency)."""
    try:
        from numba import njit
    except ImportError as exc:
        raise ConfigurationError(
            "matching backend 'numba' requires the optional numba "
            "package, which is not installed; use backend='numpy'"
        ) from exc

    @njit(cache=True)
    def _kernel(scores, starts, out):  # pragma: no cover - needs numba
        n = scores.shape[0]
        for s in range(starts.shape[0]):
            lo = starts[s]
            hi = starts[s + 1] if s + 1 < starts.shape[0] else n
            best = lo
            best_value = scores[lo]
            for j in range(lo + 1, hi):
                if scores[j] < best_value:
                    best_value = scores[j]
                    best = j
            out[s] = best
        return out

    def segmented_argmin(scores, starts):  # pragma: no cover - needs numba
        out = np.empty(starts.shape[0], dtype=np.int64)
        return _kernel(scores, np.asarray(starts, dtype=np.int64), out)

    return segmented_argmin


#: Known kernel backends; factories run at engine construction so an
#: unavailable optional dependency fails fast with a clear error.
_MATCHING_BACKENDS: dict[str, Callable[[], SegmentedArgmin]] = {
    "numpy": lambda: _segmented_argmin_numpy,
    "numba": _numba_backend_factory,
}


def register_matching_backend(
    name: str, factory: Callable[[], SegmentedArgmin]
) -> None:
    """Register a compiled segmented-argmin backend under ``name``.

    ``factory`` is called once per engine construction and must return
    a :data:`SegmentedArgmin` that agrees with the numpy implementation
    exactly — first index of each segment's minimum, ``+inf`` scores
    included.  Mirrors ``register_array_rate_model``: unregistered
    names raise at engine construction, never mid-run.
    """
    _MATCHING_BACKENDS[name] = factory


def available_matching_backends() -> tuple[str, ...]:
    """Registered backend names (availability is checked on use)."""
    return tuple(_MATCHING_BACKENDS)


def make_matching_engine(
    policy: MatchingPolicy,
    kernel: str = "auto",
    max_rounds: int = 100_000,
    backend: str = "numpy",
):
    """Pick the matching engine implementation for a policy.

    ``kernel="object"`` always returns the bit-parity reference
    :class:`~repro.core.matching.IterativeMatchingEngine`;
    ``kernel="soa"`` demands the SoA kernel (and raises for policies it
    cannot compile); ``kernel="auto"`` selects SoA exactly when the
    policy is a plain :class:`~repro.core.dmra.DMRAPolicy` — subclasses
    may override scoring hooks the kernel hard-codes, so they fall back
    to the object engine.
    """
    from repro.core.matching import IterativeMatchingEngine

    if kernel == "object":
        return IterativeMatchingEngine(policy, max_rounds=max_rounds)
    if kernel == "soa":
        return SoAMatchingEngine(
            policy, max_rounds=max_rounds, backend=backend
        )
    if kernel == "auto":
        from repro.core.dmra import DMRAPolicy

        if type(policy) is DMRAPolicy:
            return SoAMatchingEngine(
                policy, max_rounds=max_rounds, backend=backend
            )
        return IterativeMatchingEngine(policy, max_rounds=max_rounds)
    raise ConfigurationError(
        f"unknown matching kernel {kernel!r}; choose one of {KERNELS}"
    )


class SoAMatchingEngine:
    """Alg. 1 as whole-array operations (see the module docstring)."""

    def __init__(
        self,
        policy: MatchingPolicy,
        max_rounds: int = 100_000,
        backend: str = "numpy",
    ) -> None:
        from repro.core.dmra import DMRAPolicy

        if max_rounds <= 0:
            raise AllocationError(f"max_rounds must be > 0, got {max_rounds}")
        if type(policy) is not DMRAPolicy:
            raise ConfigurationError(
                f"the SoA kernel compiles exactly DMRAPolicy; got "
                f"{type(policy).__name__} — use kernel='object' for "
                f"custom or subclassed policies"
            )
        try:
            factory = _MATCHING_BACKENDS[backend]
        except KeyError:
            raise ConfigurationError(
                f"unknown matching backend {backend!r}; registered: "
                f"{', '.join(sorted(_MATCHING_BACKENDS))}"
            ) from None
        self.policy = policy
        self.max_rounds = max_rounds
        self.backend = backend
        self._segmented_argmin = factory()

    # ------------------------------------------------------------------

    def run(
        self,
        network: MECNetwork,
        radio_map: RadioMap,
        ledgers: LedgerPool | None = None,
        ue_ids: Iterable[int] | None = None,
        observer: Callable[[RoundStats], None] | None = None,
    ) -> Assignment:
        """Execute the matching; same contract as the object engine.

        Supports the incremental mode (pre-loaded ``ledgers`` plus a
        ``ue_ids`` subset) and the ``observer`` hook; the passed-in
        ledger pool ends in the identical state — grants are applied to
        it in the object engine's insertion order.
        """
        policy = self.policy
        ledgers = ledgers if ledgers is not None else LedgerPool(
            network.base_stations
        )
        if ue_ids is None:
            target_ids = sorted(ue.ue_id for ue in network.user_equipments)
        else:
            target_ids = sorted(set(ue_ids))
        preexisting = {
            (grant.bs_id, grant.ue_id) for grant in ledgers.all_grants()
        }

        # ---- Compile the run into the CSR problem ----
        base_stations = tuple(network.base_stations)
        n_bs = len(base_stations)
        n_ue = len(target_ids)
        bs_id_arr = np.array(
            [bs.bs_id for bs in base_stations], dtype=np.int64
        )
        bs_sp = np.array([bs.sp_id for bs in base_stations], dtype=np.int64)

        ues = [network.user_equipment(ue_id) for ue_id in target_ids]
        service_ids = sorted(
            {s for bs in base_stations for s in bs.cru_capacity}
            | {ue.service_id for ue in ues}
        )
        svc_index = {sid: k for k, sid in enumerate(service_ids)}
        n_svc = len(service_ids)

        rem_rrb = np.array(
            [ledgers.ledger(bs.bs_id).remaining_rrbs for bs in base_stations],
            dtype=np.int64,
        )
        rem_cru = np.zeros(n_bs * n_svc, dtype=np.int64)
        for b, bs in enumerate(base_stations):
            ledger = ledgers.ledger(bs.bs_id)
            for sid, crus in ledger.remaining_crus_by_service().items():
                rem_cru[b * n_svc + svc_index[sid]] = crus

        ue_id_arr = np.array(target_ids, dtype=np.int64)
        ue_svc = np.array(
            [svc_index[ue.service_id] for ue in ues], dtype=np.int64
        )
        ue_svc_id = np.array([ue.service_id for ue in ues], dtype=np.int64)
        ue_cru = np.array([ue.cru_demand for ue in ues], dtype=np.int64)
        ue_sp = np.array([ue.sp_id for ue in ues], dtype=np.int64)

        # Candidate pairs: lift each target UE's radio-map columns, then
        # order each row ascending in bs_id (the object engine's
        # candidate-walk order, which the argmin tie-break relies on).
        slices = [radio_map.ue_slice(ue_id) for ue_id in target_ids]
        counts = np.array([stop - start for start, stop in slices], dtype=np.int64)
        row_starts = np.array([start for start, _ in slices], dtype=np.int64)
        n_pairs = int(counts.sum())
        row_of_pair = np.repeat(np.arange(n_ue, dtype=np.int64), counts)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        sel = (
            np.repeat(row_starts, counts)
            + np.arange(n_pairs, dtype=np.int64)
            - np.repeat(indptr[:-1], counts)
        )
        link_bs_ids = radio_map.bs_ids[sel]
        order = np.lexsort((link_bs_ids, row_of_pair))
        sel = sel[order]
        link_bs_ids = link_bs_ids[order]
        pair_rrbs = radio_map.rrb_demands[sel]
        pair_dist = radio_map.distances_m[sel]

        # bs_id -> BS pool index, vectorized (ids need not be sorted).
        id_order = np.argsort(bs_id_arr)
        pair_bs = id_order[
            np.searchsorted(bs_id_arr[id_order], link_bs_ids)
        ]

        pair_same_sp = ue_sp[row_of_pair] == bs_sp[pair_bs]
        pair_static = _price_term_array(
            policy.pricing, pair_dist, pair_same_sp
        )
        pair_cross = (~pair_same_sp).astype(np.int64)
        pair_cru = ue_cru[row_of_pair]
        pair_svc = ue_svc[row_of_pair]
        pair_foot = pair_rrbs + pair_cru
        pair_flat = pair_bs * n_svc + pair_svc

        # Born-retired pairs (pre-loaded ledgers / undersized BSs) start
        # dead and are never counted as in-run f_u retirement.
        alive = (rem_cru[pair_flat] >= pair_cru) & (
            rem_rrb[pair_bs] >= pair_rrbs
        )
        active = np.ones(n_ue, dtype=bool)
        cloud_rows: list[np.ndarray] = []
        grant_bs_parts: list[np.ndarray] = []
        grant_row_parts: list[np.ndarray] = []
        grant_rrb_parts: list[np.ndarray] = []

        rho = policy.rho
        same_sp_priority = policy.same_sp_priority
        segmented_argmin = self._segmented_argmin
        alive_count = int(alive.sum())
        rounds = 0
        tel = get_telemetry()

        with tel.span(
            "match", policy=policy.name, ues=n_ue
        ) as match_span:
            while True:
                rounds += 1
                if rounds > self.max_rounds:
                    raise AllocationError(
                        f"matching did not terminate within "
                        f"{self.max_rounds} rounds"
                    )
                with tel.span("match.round", round=rounds) as round_span:
                    phase_start = time.perf_counter()
                    idx = np.flatnonzero(alive & active[row_of_pair])
                    rows = row_of_pair[idx]
                    if rows.size:
                        seg_start = np.empty(rows.size, dtype=bool)
                        seg_start[0] = True
                        seg_start[1:] = rows[1:] != rows[:-1]
                        starts = np.flatnonzero(seg_start)
                        seg_rows = rows[starts]
                        seg_counts = np.diff(np.append(starts, rows.size))
                    else:
                        starts = np.empty(0, dtype=np.int64)
                        seg_rows = np.empty(0, dtype=np.int64)
                        seg_counts = np.empty(0, dtype=np.int64)
                    # A UE whose row went empty has an exhausted B_u.
                    act_rows = np.flatnonzero(active)
                    has_candidate = np.zeros(n_ue, dtype=bool)
                    has_candidate[seg_rows] = True
                    newly_cloud_rows = act_rows[~has_candidate[act_rows]]
                    newly_cloud = int(newly_cloud_rows.size)
                    if newly_cloud:
                        active[newly_cloud_rows] = False
                        cloud_rows.append(newly_cloud_rows)
                    proposals = int(seg_rows.size)
                    propose_time = time.perf_counter() - phase_start
                    if not proposals:
                        round_span.set(
                            proposals=0,
                            accepted=0,
                            newly_cloud=newly_cloud,
                        )
                        if newly_cloud:
                            tel.count("match.exhaustions", newly_cloud)
                        if observer is not None:
                            observer(RoundStats(
                                round_number=rounds,
                                proposals=0,
                                accepted=0,
                                newly_cloud=newly_cloud,
                                unassociated_left=int(active.sum()),
                                propose_time_s=propose_time,
                            ))
                        break

                    phase_start = time.perf_counter()
                    # Eq. 17: static price + rho / (CRU + RRB slack).
                    slack = rem_cru[pair_flat[idx]] + rem_rrb[pair_bs[idx]]
                    term = np.empty(idx.size, dtype=float)
                    positive = slack > 0
                    np.divide(rho, slack, out=term, where=positive)
                    term[~positive] = np.inf if rho > 0 else 0.0
                    scores = pair_static[idx] + term
                    nan_at = np.flatnonzero(np.isnan(scores))
                    if nan_at.size:
                        first_bad = idx[nan_at[0]]
                        raise AllocationError(
                            f"policy {policy.name!r} returned NaN "
                            f"preference score for UE "
                            f"{int(ue_id_arr[row_of_pair[first_bad]])}, "
                            f"BS {int(bs_id_arr[pair_bs[first_bad]])}"
                        )
                    chosen = idx[segmented_argmin(scores, starts)]
                    propose_time += time.perf_counter() - phase_start

                    phase_start = time.perf_counter()
                    # Per-(BS, service) selection by the DMRA rank key;
                    # seg_counts is the advertised f_u (alive pairs at
                    # proposal time — the watermark tracker's counter).
                    p_bs = pair_bs[chosen]
                    p_svc = pair_svc[chosen]
                    p_fu = seg_counts
                    p_foot = pair_foot[chosen]
                    p_ue = ue_id_arr[seg_rows]
                    p_rrb = pair_rrbs[chosen]
                    p_cross = pair_cross[chosen]
                    if same_sp_priority:
                        rank_cols = (p_ue, p_foot, p_fu, p_cross)
                    else:
                        rank_cols = (p_ue, p_foot, p_fu)
                    sort_order = np.lexsort(rank_cols + (p_svc, p_bs))
                    sorted_bs = p_bs[sort_order]
                    sorted_svc = p_svc[sort_order]
                    group_start = np.empty(sort_order.size, dtype=bool)
                    group_start[0] = True
                    group_start[1:] = (
                        (sorted_bs[1:] != sorted_bs[:-1])
                        | (sorted_svc[1:] != sorted_svc[:-1])
                    )
                    picks = sort_order[np.flatnonzero(group_start)]

                    # RRB budget per BS: the engine's evict-from-the-
                    # tail loop == keep the longest rank-ordered prefix
                    # whose demand cumsum fits the remaining budget.
                    k_bs = p_bs[picks]
                    bs_change = np.empty(picks.size, dtype=bool)
                    bs_change[0] = True
                    bs_change[1:] = k_bs[1:] != k_bs[:-1]
                    bs_starts = np.flatnonzero(bs_change)
                    bs_bounds = np.append(bs_starts, picks.size)
                    totals = np.add.reduceat(p_rrb[picks], bs_starts)
                    over = totals > rem_rrb[k_bs[bs_starts]]
                    evictions = 0
                    if not over.any():
                        survivors = picks
                    else:
                        parts = []
                        for si in range(bs_starts.size):
                            segment = picks[bs_bounds[si]:bs_bounds[si + 1]]
                            if not over[si]:
                                parts.append(segment)
                                continue
                            if same_sp_priority:
                                rank = np.lexsort((
                                    p_ue[segment], p_foot[segment],
                                    p_fu[segment], p_cross[segment],
                                ))
                            else:
                                rank = np.lexsort((
                                    p_ue[segment], p_foot[segment],
                                    p_fu[segment],
                                ))
                            ranked = segment[rank]
                            budget = int(rem_rrb[k_bs[bs_bounds[si]]])
                            demand_cumsum = np.cumsum(p_rrb[ranked])
                            keep = int(np.searchsorted(
                                demand_cumsum, budget, side="right"
                            ))
                            evictions += ranked.size - keep
                            parts.append(ranked[:keep])
                        survivors = (
                            np.concatenate(parts)
                            if parts else np.empty(0, dtype=np.int64)
                        )

                    g_bs = p_bs[survivors]
                    g_row = seg_rows[survivors]
                    g_rrb = p_rrb[survivors]
                    g_flat = g_bs * n_svc + p_svc[survivors]
                    np.subtract.at(rem_rrb, g_bs, g_rrb)
                    rem_cru[g_flat] -= ue_cru[g_row]
                    active[g_row] = False
                    accepted = int(g_row.size)
                    if accepted:
                        grant_bs_parts.append(g_bs)
                        grant_row_parts.append(g_row)
                        grant_rrb_parts.append(g_rrb)
                        # Watermark retirement, re-derived wholesale:
                        # remainders only shrink, so one comparison pass
                        # flips exactly the pairs the object engine's
                        # heaps would pop this round.
                        alive &= (rem_cru[pair_flat] >= pair_cru) & (
                            rem_rrb[pair_bs] >= pair_rrbs
                        )
                        new_alive_count = int(alive.sum())
                        fu_retired = alive_count - new_alive_count
                        alive_count = new_alive_count
                    else:
                        fu_retired = 0
                    accept_time = time.perf_counter() - phase_start

                    round_span.set(
                        proposals=proposals,
                        accepted=accepted,
                        evictions=evictions,
                        newly_cloud=newly_cloud,
                        fu_retired=fu_retired,
                    )
                    tel.count("match.proposals", proposals)
                    tel.count("match.accepted", accepted)
                    if evictions:
                        tel.count("match.evictions", evictions)
                    if newly_cloud:
                        tel.count("match.exhaustions", newly_cloud)
                    if fu_retired:
                        tel.count("match.fu_retired", fu_retired)
                    if observer is not None:
                        observer(RoundStats(
                            round_number=rounds,
                            proposals=proposals,
                            accepted=accepted,
                            newly_cloud=newly_cloud,
                            unassociated_left=int(active.sum()),
                            propose_time_s=propose_time,
                            accept_time_s=accept_time,
                            evictions=evictions,
                        ))

            # Any UE still unassociated at termination has an empty B_u.
            leftover = np.flatnonzero(active)
            if leftover.size:
                cloud_rows.append(leftover)
            cloud = frozenset(
                int(ue_id_arr[r])
                for chunk in cloud_rows
                for r in chunk.tolist()
            )
            match_span.set(rounds=rounds - 1, cloud=len(cloud))
            tel.gauge("match.rounds", rounds - 1)

        # Apply grants to the real pool in the object engine's insertion
        # order: BS pool order major, chronological within a BS (the
        # per-round parts were appended chronologically, so a stable
        # sort on the BS index reproduces it exactly).
        if grant_bs_parts:
            all_bs = np.concatenate(grant_bs_parts)
            all_row = np.concatenate(grant_row_parts)
            all_rrb = np.concatenate(grant_rrb_parts)
            for i in np.argsort(all_bs, kind="stable").tolist():
                row = int(all_row[i])
                ledgers.ledger(int(bs_id_arr[all_bs[i]])).grant(
                    ue_id=int(ue_id_arr[row]),
                    service_id=int(ue_svc_id[row]),
                    crus=int(ue_cru[row]),
                    rrbs=int(all_rrb[i]),
                )
        new_grants = tuple(
            grant
            for grant in ledgers.all_grants()
            if (grant.bs_id, grant.ue_id) not in preexisting
        )
        return Assignment(
            grants=new_grants,
            cloud_ue_ids=cloud,
            rounds=rounds - 1,
        )


def _price_term_array(
    pricing, distances: np.ndarray, same_sp: np.ndarray
) -> np.ndarray:
    """Batched Eq. 9--10 price terms, elementwise-identical to
    ``pricing.price_per_cru`` (same operations in the same order, so
    the floats match the object engine's cached statics bit for bit).
    Unknown pricing policies fall back to a scalar loop — correct, just
    off the fast path."""
    from repro.econ.pricing import FlatPricing, PaperPricing

    if isinstance(pricing, PaperPricing):
        ownership = np.where(same_sp, 1.0, pricing.cross_sp_markup)
        return pricing.base_price * (
            ownership + pricing.distance_weight * distances
        )
    if isinstance(pricing, FlatPricing):
        return np.where(
            same_sp, pricing.same_sp_price, pricing.cross_sp_price
        ).astype(float)
    price = pricing.price_per_cru
    return np.array(
        [
            price(float(d), bool(s))
            for d, s in zip(distances.tolist(), same_sp.tolist())
        ],
        dtype=float,
    )
