"""Allocation results: the ``a_{u,i}`` association plus cloud fallbacks.

An :class:`Assignment` is what every allocator returns: the set of
resource grants realized at the edge and the set of UEs forwarded to the
remote cloud.  :meth:`Assignment.validate` re-checks every constraint of
the TPM problem (Eqs. 12--15) against the network and radio map, so a
buggy allocator cannot silently report an infeasible solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.compute.cru import Grant
from repro.errors import AllocationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["Assignment"]


@dataclass(frozen=True)
class Assignment:
    """A complete UE-to-{BS, cloud} association.

    ``grants`` holds one :class:`~repro.compute.cru.Grant` per edge-served
    UE; ``cloud_ue_ids`` lists the UEs whose tasks went to the remote
    cloud.  Together they must partition the UE population (checked by
    :meth:`validate`).
    """

    grants: tuple[Grant, ...]
    cloud_ue_ids: frozenset[int]
    rounds: int = 0
    _by_ue: Mapping[int, Grant] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grants", tuple(self.grants))
        object.__setattr__(self, "cloud_ue_ids", frozenset(self.cloud_ue_ids))
        by_ue: dict[int, Grant] = {}
        for grant in self.grants:
            if grant.ue_id in by_ue:
                raise AllocationError(
                    f"UE {grant.ue_id} appears in multiple grants "
                    f"(violates Eq. 15)"
                )
            by_ue[grant.ue_id] = grant
        overlap = set(by_ue) & self.cloud_ue_ids
        if overlap:
            raise AllocationError(
                f"UEs both edge-served and cloud-forwarded: {sorted(overlap)}"
            )
        object.__setattr__(self, "_by_ue", by_ue)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def edge_served_ue_ids(self) -> frozenset[int]:
        return frozenset(self._by_ue)

    def serving_bs(self, ue_id: int) -> int | None:
        """The BS serving a UE, or ``None`` when cloud-forwarded/unknown."""
        grant = self._by_ue.get(ue_id)
        return grant.bs_id if grant is not None else None

    def grant_of(self, ue_id: int) -> Grant | None:
        """The UE's grant, or ``None`` when it is not edge-served."""
        return self._by_ue.get(ue_id)

    def grants_of_bs(self, bs_id: int) -> tuple[Grant, ...]:
        """All grants realized on one BS (the paper's ``U'_i``)."""
        return tuple(g for g in self.grants if g.bs_id == bs_id)

    @property
    def edge_served_count(self) -> int:
        return len(self._by_ue)

    @property
    def cloud_count(self) -> int:
        return len(self.cloud_ue_ids)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, network: MECNetwork, radio_map: RadioMap) -> None:
        """Check the TPM constraints (Eqs. 12--15) and coverage of all UEs.

        Raises :class:`AllocationError` with a specific message on the
        first violation found.
        """
        all_ue_ids = {ue.ue_id for ue in network.user_equipments}
        assigned = self.edge_served_ue_ids | self.cloud_ue_ids
        missing = all_ue_ids - assigned
        if missing:
            raise AllocationError(
                f"UEs neither served nor forwarded: {sorted(missing)[:10]}"
            )
        unknown = assigned - all_ue_ids
        if unknown:
            raise AllocationError(
                f"assignment references unknown UEs: {sorted(unknown)[:10]}"
            )

        crus_used: dict[tuple[int, int], int] = {}
        rrbs_used: dict[int, int] = {}
        for grant in self.grants:
            ue = network.user_equipment(grant.ue_id)
            bs = network.base_station(grant.bs_id)
            # Eq. 13: the BS must host the requested service, and the UE
            # must actually request the granted service.
            if grant.service_id != ue.service_id:
                raise AllocationError(
                    f"UE {ue.ue_id} requests service {ue.service_id} but was "
                    f"granted service {grant.service_id}"
                )
            if not bs.hosts_service(grant.service_id):
                raise AllocationError(
                    f"BS {bs.bs_id} does not host service {grant.service_id} "
                    f"(violates Eq. 13)"
                )
            if not network.covers(bs.bs_id, ue.ue_id):
                raise AllocationError(
                    f"BS {bs.bs_id} does not cover UE {ue.ue_id}"
                )
            if grant.crus != ue.cru_demand:
                raise AllocationError(
                    f"UE {ue.ue_id}: granted {grant.crus} CRUs, "
                    f"demand is {ue.cru_demand}"
                )
            expected_rrbs = radio_map.link(ue.ue_id, bs.bs_id).rrbs_required
            if grant.rrbs != expected_rrbs:
                raise AllocationError(
                    f"UE {ue.ue_id} on BS {bs.bs_id}: granted {grant.rrbs} "
                    f"RRBs, link requires {expected_rrbs}"
                )
            key = (grant.bs_id, grant.service_id)
            crus_used[key] = crus_used.get(key, 0) + grant.crus
            rrbs_used[grant.bs_id] = rrbs_used.get(grant.bs_id, 0) + grant.rrbs

        for (bs_id, service_id), used in crus_used.items():
            capacity = network.base_station(bs_id).cru_capacity.get(service_id, 0)
            if used > capacity:
                raise AllocationError(
                    f"BS {bs_id} service {service_id}: {used} CRUs used, "
                    f"capacity {capacity} (violates Eq. 12)"
                )
        for bs_id, used in rrbs_used.items():
            capacity = network.base_station(bs_id).rrb_capacity
            if used > capacity:
                raise AllocationError(
                    f"BS {bs_id}: {used} RRBs used, capacity {capacity} "
                    f"(violates Eq. 14)"
                )

    def association_pairs(self) -> tuple[tuple[int, int], ...]:
        """All ``(ue_id, bs_id)`` pairs with ``a_{u,i} = 1``."""
        return tuple((g.ue_id, g.bs_id) for g in self.grants)

    @staticmethod
    def from_grants(
        grants: Iterable[Grant],
        all_ue_ids: Iterable[int],
        rounds: int = 0,
    ) -> "Assignment":
        """Build an assignment, cloud-forwarding every unserved UE."""
        grants = tuple(grants)
        served = {g.ue_id for g in grants}
        cloud = frozenset(set(all_ue_ids) - served)
        return Assignment(grants=grants, cloud_ue_ids=cloud, rounds=rounds)
