"""Core: assignments, the matching engine, and the DMRA scheme."""

from repro.core.agents import (
    BSAgent,
    DecentralizedDMRAAllocator,
    SPAgent,
    UEAgent,
)
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ResourceBroadcast,
    ServiceRequest,
)
from repro.core.matching import (
    IterativeMatchingEngine,
    MatchingContext,
    MatchingPolicy,
)
from repro.core.preferences import dmra_bs_rank_key, dmra_ue_score
from repro.core.soa import (
    KERNELS,
    SoAMatchingEngine,
    available_matching_backends,
    make_matching_engine,
    register_matching_backend,
)
from repro.core.steering import (
    CongestionSteeredAllocator,
    CongestionSteeredPolicy,
)

__all__ = [
    "Allocator",
    "Assignment",
    "AssociationGrant",
    "BSAgent",
    "CloudFallbackNotice",
    "CongestionSteeredAllocator",
    "CongestionSteeredPolicy",
    "DMRAAllocator",
    "DMRAPolicy",
    "DecentralizedDMRAAllocator",
    "IterativeMatchingEngine",
    "KERNELS",
    "MatchingContext",
    "MatchingPolicy",
    "ResourceBroadcast",
    "SPAgent",
    "ServiceRequest",
    "SoAMatchingEngine",
    "UEAgent",
    "available_matching_backends",
    "dmra_bs_rank_key",
    "dmra_ue_score",
    "make_matching_engine",
    "register_matching_backend",
]
