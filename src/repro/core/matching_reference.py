"""The straightforward (seed) implementation of the Alg. 1 round loop.

:class:`ReferenceMatchingEngine` is the direct transcription of Alg. 1
that the optimized :class:`~repro.core.matching.IterativeMatchingEngine`
grew out of: every UE's candidate walk re-scores the whole ``B_u`` with
``min()`` and prunes via ``list.remove``, and ``f_u`` is recomputed from
the ledgers on every proposal.  It is O(rounds · UEs · |B_u|) with heavy
constants — fine for hand-sized networks, the throughput bottleneck at
production scale.

It is kept (and excluded from production call sites) for two reasons:

* the **golden parity suite** asserts the optimized engine produces
  bit-identical assignments — same grants, same cloud set, same
  productive round count — on seeded scenarios under every policy;
* the **bench harness** (``make bench-smoke``) measures the optimized
  engine's speedup against it.

Round semantics match the optimized engine: ``Assignment.rounds``
counts *productive* rounds (rounds that sent at least one service
request), excluding the terminating zero-proposal probe.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.compute.cru import LedgerPool
from repro.core.assignment import Assignment
from repro.core.matching import MatchingContext, MatchingPolicy, RoundStats
from repro.errors import AllocationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["ReferenceMatchingEngine"]


class ReferenceMatchingEngine:
    """Runs the round loop of Alg. 1 the simple, quadratic way."""

    def __init__(self, policy: MatchingPolicy, max_rounds: int = 100_000) -> None:
        if max_rounds <= 0:
            raise AllocationError(f"max_rounds must be > 0, got {max_rounds}")
        self.policy = policy
        self.max_rounds = max_rounds

    def run(
        self,
        network: MECNetwork,
        radio_map: RadioMap,
        ledgers: LedgerPool | None = None,
        ue_ids: Iterable[int] | None = None,
        observer: Callable[[RoundStats], None] | None = None,
    ) -> Assignment:
        """Execute the matching and return the final association."""
        ledgers = ledgers if ledgers is not None else LedgerPool(
            network.base_stations
        )
        if ue_ids is None:
            target_ids = sorted(ue.ue_id for ue in network.user_equipments)
        else:
            target_ids = sorted(set(ue_ids))
        preexisting = {
            (grant.bs_id, grant.ue_id) for grant in ledgers.all_grants()
        }
        ctx = MatchingContext(
            network=network,
            radio_map=radio_map,
            ledgers=ledgers,
            candidate_sets={
                ue_id: list(network.candidate_base_stations(ue_id))
                for ue_id in target_ids
            },
        )
        unassociated = list(target_ids)
        cloud: set[int] = set()
        rounds = 0

        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise AllocationError(
                    f"matching did not terminate within {self.max_rounds} rounds"
                )
            cloud_before = len(cloud)
            requests = self._collect_proposals(ctx, unassociated, cloud)
            proposals = sum(
                len(ue_list)
                for by_service in requests.values()
                for ue_list in by_service.values()
            )
            if not requests:
                if observer is not None:
                    observer(RoundStats(
                        round_number=rounds,
                        proposals=0,
                        accepted=0,
                        newly_cloud=len(cloud) - cloud_before,
                        unassociated_left=len(unassociated),
                    ))
                break
            accepted = self._process_base_stations(ctx, requests)
            if accepted:
                remaining = set(unassociated) - accepted
                unassociated = sorted(remaining)
            if observer is not None:
                observer(RoundStats(
                    round_number=rounds,
                    proposals=proposals,
                    accepted=len(accepted),
                    newly_cloud=len(cloud) - cloud_before,
                    unassociated_left=len(unassociated),
                ))

        # Any UE still unassociated at termination has an empty B_u.
        cloud.update(unassociated)
        new_grants = tuple(
            grant
            for grant in ledgers.all_grants()
            if (grant.bs_id, grant.ue_id) not in preexisting
        )
        return Assignment(
            grants=new_grants,
            cloud_ue_ids=frozenset(cloud),
            rounds=rounds - 1,
        )

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------

    def _collect_proposals(
        self,
        ctx: MatchingContext,
        unassociated: list[int],
        cloud: set[int],
    ) -> dict[int, dict[int, list[int]]]:
        """Phase 1: each unassociated UE proposes to its best feasible BS.

        Returns ``bs_id -> service_id -> [ue_id, ...]`` (the candidate
        sets ``U^c_{i,j}``).  UEs whose ``B_u`` empties are moved to
        ``cloud`` and removed from ``unassociated`` in place.
        """
        requests: dict[int, dict[int, list[int]]] = {}
        newly_cloud: list[int] = []
        ctx.f_u_snapshot.clear()
        for ue_id in unassociated:
            if ue_id in cloud:
                continue
            ue = ctx.network.user_equipment(ue_id)
            candidates = ctx.candidate_sets[ue_id]
            proposed = False
            while candidates:
                scored = []
                for bs_id in candidates:
                    score = self.policy.ue_score(ue, bs_id, ctx)
                    if score != score:  # NaN: refuse to rank on garbage
                        raise AllocationError(
                            f"policy {self.policy.name!r} returned NaN "
                            f"preference score for UE {ue_id}, BS {bs_id}"
                        )
                    scored.append((score, bs_id))
                best = min(scored)[1]
                if ctx.link_fits(ue, best):
                    requests.setdefault(best, {}).setdefault(
                        ue.service_id, []
                    ).append(ue_id)
                    # The f_u the UE advertises in its service request
                    # (Alg. 1): computed from the resources broadcast at
                    # the end of the previous round.
                    ctx.f_u_snapshot[ue_id] = ctx.live_feasible_bs_count(
                        ue_id
                    )
                    proposed = True
                    break
                candidates.remove(best)
            if not proposed:
                newly_cloud.append(ue_id)
        for ue_id in newly_cloud:
            cloud.add(ue_id)
            unassociated.remove(ue_id)
        return requests

    def _process_base_stations(
        self,
        ctx: MatchingContext,
        requests: dict[int, dict[int, list[int]]],
    ) -> set[int]:
        """Phases 2--3: per-service selection plus the RRB budget check."""
        accepted: set[int] = set()
        for bs_id in sorted(requests):
            ledger = ctx.ledgers.ledger(bs_id)
            picks = self._pick_per_service(ctx, bs_id, requests[bs_id])
            survivors = self._fit_radio_budget(ctx, bs_id, ledger, picks)
            for ue_id in survivors:
                ue = ctx.network.user_equipment(ue_id)
                ledger.grant(
                    ue_id=ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand,
                    rrbs=ctx.rrbs_required(ue_id, bs_id),
                )
                accepted.add(ue_id)
        return accepted

    def _pick_per_service(
        self,
        ctx: MatchingContext,
        bs_id: int,
        by_service: dict[int, list[int]],
    ) -> list[int]:
        """Alg. 1 lines 13--21: one most-preferred candidate per service."""
        picks: list[int] = []
        for service_id in sorted(by_service):
            candidates = by_service[service_id]
            best = min(
                candidates,
                key=lambda ue_id: (
                    self.policy.bs_rank_key(ue_id, bs_id, ctx),
                    ue_id,
                ),
            )
            picks.append(best)
        return picks

    def _fit_radio_budget(
        self,
        ctx: MatchingContext,
        bs_id: int,
        ledger,
        picks: list[int],
    ) -> list[int]:
        """Alg. 1 lines 22--25: evict least preferred picks until the
        round's combined RRB demand fits the remaining budget."""
        demand = {
            ue_id: ctx.rrbs_required(ue_id, bs_id) for ue_id in picks
        }
        total = sum(demand.values())
        if total <= ledger.remaining_rrbs:
            return picks
        ranked = sorted(
            picks,
            key=lambda ue_id: (self.policy.bs_rank_key(ue_id, bs_id, ctx), ue_id),
        )
        while ranked and total > ledger.remaining_rrbs:
            evicted = ranked.pop()  # least preferred = largest rank key
            total -= demand[evicted]
        return ranked
