"""Congestion-steered DMRA: load-dependent *signaling* prices.

The pricing literature the paper cites (Xie et al.'s distributed
price-adjustment; Zhang et al.'s Stackelberg games) steers load by
moving prices with utilization.  This variant grafts that idea onto
DMRA's UE preference: the price term of Eq. 17 is scaled by
``1 + beta * utilization_i``, so busy BSs *look* more expensive during
matching.  Settlement still uses the paper's static Eqs. 9--10 — the
adjusted price is a steering signal, not a billed tariff — so profit
numbers remain comparable with plain DMRA.

``beta = 0`` reduces exactly to :class:`~repro.core.dmra.DMRAPolicy`.
The interesting comparison is against the ``rho`` slack term, DMRA's
own load-steering knob: both act on the same information (the resource
broadcast), but multiplicative price scaling responds earlier — it
shifts preferences as soon as utilization moves, while ``rho/slack``
only bites when slack gets small.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine, MatchingContext
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["CongestionSteeredPolicy", "CongestionSteeredAllocator"]


class CongestionSteeredPolicy(DMRAPolicy):
    """DMRA with the price term scaled by BS utilization."""

    name = "dmra-steered"

    def __init__(
        self,
        pricing: PricingPolicy,
        rho: float = 0.0,
        beta: float = 1.0,
        same_sp_priority: bool = True,
    ) -> None:
        super().__init__(
            pricing=pricing, rho=rho, same_sp_priority=same_sp_priority
        )
        if beta < 0:
            raise ConfigurationError(f"beta must be >= 0, got {beta}")
        self.beta = beta

    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        """Eq. 17 with the price term inflated by current utilization."""
        base = super().ue_score(ue, bs_id, ctx)
        if self.beta == 0.0:
            return base
        cru_util, rrb_util = ctx.ledgers.ledger(bs_id).utilization()
        utilization = max(cru_util, rrb_util)
        price = self.pricing.price_per_cru(
            ctx.network.distance_m(ue.ue_id, bs_id),
            ctx.network.same_sp(ue.ue_id, bs_id),
        )
        # base already contains `price + rho/slack`; add the surcharge.
        return base + self.beta * utilization * price

    def static_ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float | None:
        """Opt out of the engine's preference cache when steering is on.

        The surcharge couples the price term to *current* utilization,
        so no part of the score is round-invariant; inheriting DMRA's
        cached split would silently drop the steering term.
        """
        if self.beta == 0.0:
            return super().static_ue_score(ue, bs_id, ctx)
        return None

    def static_ue_scores(
        self, ue: UserEquipment, bs_ids: list[int], ctx: MatchingContext
    ) -> list[float | None]:
        if self.beta == 0.0:
            return super().static_ue_scores(ue, bs_ids, ctx)
        return [None] * len(bs_ids)

    def round_additive_terms(
        self, ctx: MatchingContext, service_ids: frozenset[int]
    ) -> dict[int, dict[int, float]] | None:
        """No additive decomposition either: the surcharge multiplies
        the per-pair price, so it is not a pure (BS, service) term."""
        if self.beta == 0.0:
            return super().round_additive_terms(ctx, service_ids)
        return None


class CongestionSteeredAllocator(Allocator):
    """The congestion-steered variant as an :class:`Allocator`."""

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        rho: float = 0.0,
        beta: float = 1.0,
        max_rounds: int = 100_000,
    ) -> None:
        if beta < 0:
            raise ConfigurationError(f"beta must be >= 0, got {beta}")
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.rho = rho
        self.beta = beta
        self.max_rounds = max_rounds
        self.name = "dmra-steered"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        policy = CongestionSteeredPolicy(
            pricing=self.pricing, rho=self.rho, beta=self.beta
        )
        engine = IterativeMatchingEngine(policy, max_rounds=self.max_rounds)
        return engine.run(network, radio_map)
