"""Residual-capacity matching: Alg. 1 against a partially filled ledger.

The sharded execution path (:mod:`repro.scale`) admits every surviving
shard grant into one global :class:`~repro.compute.cru.LedgerPool` and
then lets the UEs evicted during reconciliation *re-propose* against
whatever capacity is left.  That re-proposal pass is exactly the
engine's incremental mode — match only the listed UEs, treat existing
grants as immovable — so this module is a thin, named entry point
around :meth:`IterativeMatchingEngine.run` rather than a second
matching implementation.  Keeping it in :mod:`repro.core` pins the
contract: residual matching is ordinary deferred acceptance, inherits
the engine's termination guarantees, and can never disturb grants that
are already in the ledger.
"""

from __future__ import annotations

from typing import Iterable

from repro.compute.cru import LedgerPool
from repro.core.assignment import Assignment
from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["residual_match"]


def residual_match(
    network: MECNetwork,
    radio_map: RadioMap,
    ledgers: LedgerPool,
    ue_ids: Iterable[int],
    policy: MatchingPolicy,
    max_rounds: int = 100_000,
) -> Assignment:
    """Match ``ue_ids`` against the residual capacity in ``ledgers``.

    ``network`` / ``radio_map`` must cover the listed UEs and every BS
    in the pool; ``ledgers`` may already hold grants for *other* UEs —
    those are left untouched and the returned
    :class:`~repro.core.assignment.Assignment` contains only the new
    grants (plus the cloud fallbacks among ``ue_ids``).  Because BS
    ledgers are transactional, the pass can only consume remaining
    capacity, never over-commit a BS — the property the reconciliation
    invariant tests pin.

    Raises :class:`ConfigurationError` if any listed UE already holds a
    grant in the pool (re-proposing for a granted UE would double-book
    its demand).
    """
    targets = sorted(set(ue_ids))
    granted = {grant.ue_id for grant in ledgers.all_grants()}
    already = [ue_id for ue_id in targets if ue_id in granted]
    if already:
        raise ConfigurationError(
            f"UEs {already} already hold grants; residual matching would "
            f"double-book them"
        )
    engine = IterativeMatchingEngine(policy, max_rounds=max_rounds)
    return engine.run(network, radio_map, ledgers=ledgers, ue_ids=targets)
