"""The iterative UE--BS matching engine (the skeleton of Alg. 1).

DMRA, DCSP, and NonCo all follow the same deferred-acceptance loop; they
differ only in *how UEs rank BSs* and *how BSs rank UEs*.  The engine
factors out the loop; a :class:`MatchingPolicy` supplies the two ranking
rules.  Per round:

1. every still-unassociated UE walks its candidate set ``B_u`` in
   preference order, discarding BSs that can no longer fit its demand
   (Alg. 1 lines 3--10), and sends one service request;
2. every BS picks, per requested service, its single most preferred
   candidate (lines 12--21);
3. the BS then checks the picks against its remaining RRB budget and, if
   they exceed it, drops its least preferred picks until the rest fit
   (lines 22--25); survivors are granted resources atomically;
4. rejected UEs try again next round; a UE whose ``B_u`` empties is
   forwarded to the remote cloud.

Termination: every round with outstanding requests either grants at
least one association or strictly shrinks some ``B_u`` (a UE whose
proposal-time feasibility check fails removes that BS permanently —
"resources in BS cannot increase", §V), both of which are finite.

Hot-path design
---------------
The engine produces *bit-identical* assignments to the straightforward
reference implementation (:mod:`repro.core.matching_reference`, kept for
the golden parity tests) while scaling to large populations:

* **Cached preference statics** — a policy may split its UE score into a
  round-invariant part (:meth:`MatchingPolicy.static_ue_score`, e.g. the
  Eq. 17 price term) and a per-round additive term table
  (:meth:`MatchingPolicy.round_additive_terms`, e.g. the slack term,
  which depends only on the (BS, service) ledger state frozen during a
  proposal phase).  Statics are computed once per (UE, BS) pair and
  memoized across :meth:`IterativeMatchingEngine.run` calls on the same
  network — the online simulation reuses one engine across arrival
  batches, so later batches pay no price recomputation.  The scoring
  inner loop then degenerates to one dict lookup and one addition per
  candidate, with zero per-pair policy calls.  BS-side rank keys get the
  same treatment via :meth:`MatchingPolicy.static_bs_rank_key`.
* **Incremental ``f_u`` via capacity watermarks** — instead of rescanning
  a UE's whole ledger neighbourhood per proposal, the engine tracks one
  feasibility flag per (UE, BS) pair.  Resources only shrink during a
  run, so a pair flips feasible→infeasible at most once; per-BS heaps
  keyed by demand thresholds pop exactly the pairs whose threshold the
  BS's remaining capacity just crossed.  ``f_u`` becomes an O(1) counter
  read.
* **Cursor-based candidate walks** — dead candidates are compacted out of
  the per-UE lists during the argmin scan (amortized O(1) per removal)
  instead of the reference's O(n) ``list.remove`` calls, and per-round
  bookkeeping of the unassociated set is a single linear filter.
"""

from __future__ import annotations

import heapq
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compute.cru import BSLedger, LedgerPool
from repro.core.assignment import Assignment
from repro.errors import AllocationError
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import RadioMap

__all__ = [
    "MatchingContext",
    "MatchingPolicy",
    "IterativeMatchingEngine",
    "RoundStats",
]

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Per-round progress numbers handed to an engine observer.

    ``propose_time_s`` / ``accept_time_s`` are the wall times of the
    round's proposal phase (Alg. 1 lines 3--10) and BS-decision phases
    (lines 12--25); the ``--profile`` CLI flag renders them.
    """

    round_number: int
    proposals: int
    accepted: int
    newly_cloud: int
    unassociated_left: int
    propose_time_s: float = 0.0
    accept_time_s: float = 0.0
    evictions: int = 0


@dataclass
class MatchingContext:
    """Live matching state exposed to policies.

    Policies read remaining resources and coverage facts from here when
    computing preference scores; they never mutate it.
    """

    network: MECNetwork
    radio_map: RadioMap
    ledgers: LedgerPool
    candidate_sets: dict[int, list[int]] = field(default_factory=dict)
    f_u_snapshot: dict[int, int] = field(default_factory=dict)

    def rrbs_required(self, ue_id: int, bs_id: int) -> int:
        """``n_{u,i}`` for a candidate link."""
        return self.radio_map.link(ue_id, bs_id).rrbs_required

    def link_fits(self, ue: UserEquipment, bs_id: int) -> bool:
        """Alg. 1 line 6: the BS currently has room for this UE's demand."""
        ledger = self.ledgers.ledger(bs_id)
        return (
            ledger.remaining_crus(ue.service_id) >= ue.cru_demand
            and ledger.remaining_rrbs >= self.rrbs_required(ue.ue_id, bs_id)
        )

    def feasible_bs_count(self, ue_id: int) -> int:
        """The paper's ``f_u``: BSs still in ``B_u`` that can fit the UE.

        Dynamic by design — it shrinks as resources are consumed, which
        is what makes DMRA prioritize UEs with few remaining options.
        When a per-round snapshot exists (filled at proposal time, i.e.
        the value the UE itself put in its service request) it takes
        precedence: BSs must rank by the advertised ``f_u``, not by state
        that changed while other BSs processed their queues — that
        information would not exist in the decentralized deployment.
        """
        snapshot = self.f_u_snapshot.get(ue_id)
        if snapshot is not None:
            return snapshot
        return self.live_feasible_bs_count(ue_id)

    def live_feasible_bs_count(self, ue_id: int) -> int:
        """``f_u`` recomputed from current ledgers (snapshot source).

        Inside an engine run the same value is maintained incrementally
        (see the module docstring); this full rescan serves contexts
        built outside a run, where no watermark tracker exists.
        """
        ue = self.network.user_equipment(ue_id)
        return sum(
            1
            for bs_id in self.candidate_sets.get(ue_id, ())
            if self.link_fits(ue, bs_id)
        )


class MatchingPolicy(ABC):
    """The two ranking rules that differentiate matching-based schemes."""

    name: str = "policy"

    @abstractmethod
    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        """UE-side preference; the UE proposes to the BS with the
        *smallest* score among its remaining candidates."""

    @abstractmethod
    def bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple:
        """BS-side preference; *smaller tuples are preferred*.

        Used both to pick one candidate per service and to decide which
        tentative picks to evict when the round's grants exceed the BS's
        remaining RRBs.
        """

    # ------------------------------------------------------------------
    # Optional hot-path hooks
    # ------------------------------------------------------------------

    def static_ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float | None:
        """Round-invariant component of :meth:`ue_score`, or ``None``.

        Returning a float opts the (UE, BS) pair into the engine's
        preference cache: the value is computed once per pair and,
        every round, combined with the policy's additive dynamic term
        (:meth:`round_additive_terms`) as ``static + term``.  Returning
        ``None`` (the default) keeps the uncached per-call path — the
        right choice whenever the score does not decompose that way.
        """
        return None

    def static_ue_scores(
        self, ue: UserEquipment, bs_ids: list[int], ctx: MatchingContext
    ) -> list[float | None]:
        """Batched :meth:`static_ue_score` over one UE's candidate BSs.

        The engine fills its preference cache through this entry point,
        so policies can hoist per-UE lookups out of the per-BS loop.
        The default delegates to the scalar hook element-wise.
        """
        return [self.static_ue_score(ue, bs_id, ctx) for bs_id in bs_ids]

    def round_additive_terms(
        self, ctx: MatchingContext, service_ids: frozenset[int]
    ) -> dict[int, dict[int, float]] | None:
        """Per-round dynamic score terms, or ``None`` to disable caching.

        Called once before each proposal phase (ledgers are frozen until
        the next BS-decision phase).  Must return
        ``{service_id: {bs_id: term}}`` such that for every UE ``u`` of
        ``service_id`` and candidate BS ``i``::

            ue_score(u, i) == static_ue_score(u, i) + term[service][i]

        *exactly* — the golden parity tests hold implementations to
        bit-identical assignments.  ``service_ids`` lists the services
        of the UEs being matched; every ledgered BS must appear in each
        inner mapping.
        """
        return None

    def static_bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple | None:
        """Round-invariant components of :meth:`bs_rank_key`, or ``None``.

        Opt-in mirror of :meth:`static_ue_score` for the BS side: the
        engine caches the returned tuple per (UE, BS) pair and rebuilds
        full keys via :meth:`bs_rank_key_from_static`.
        """
        return None

    def bs_rank_key_from_static(
        self, ue_id: int, bs_id: int, static: tuple, ctx: MatchingContext
    ) -> tuple:
        """Recombine cached static rank components with the dynamic ones
        (typically the advertised ``f_u``).  Must equal
        :meth:`bs_rank_key` exactly."""
        return self.bs_rank_key(ue_id, bs_id, ctx)


class _PairState:
    """Mutable per-(UE, BS) candidate link state.

    ``rrbs`` caches the link's ``n_{u,i}`` (radio-map lookups are pure),
    so the feasibility tracker, the RRB budget check, and the grant path
    never re-derive it.  Service requests carry these pair objects (not
    bare UE ids), which is what lets the BS-decision phases reuse the
    cached demand instead of going back to the radio map.
    """

    __slots__ = ("ue_id", "bs_id", "static", "rrbs", "alive")

    def __init__(
        self, ue_id: int, bs_id: int, static: float | None, rrbs: int
    ) -> None:
        self.ue_id = ue_id
        self.bs_id = bs_id
        self.static = static
        self.rrbs = rrbs
        self.alive = True


class _FeasibilityTracker:
    """Exact incremental ``f_u`` maintenance via capacity watermarks.

    Feasibility of a (UE, BS) pair depends only on that BS's remaining
    resources, which never grow during a run, so each pair flips
    feasible→infeasible at most once.  Alive pairs sit in per-(BS,
    service) CRU heaps and per-BS RRB heaps keyed by their demand
    thresholds; after each grant, exactly the pairs whose threshold now
    exceeds the new remainder are popped and retired.  Total work is
    O(P log P) over a whole run for P candidate pairs — versus the
    reference implementation's O(|B_u|) ledger rescan per proposal.
    """

    def __init__(self, ctx: MatchingContext, target_ids: list[int],
                 cands: dict[int, list[_PairState]],
                 ue_by_id: dict[int, UserEquipment]) -> None:
        self._count: dict[int, int] = {}
        #: Pairs retired by capacity watermarks since construction —
        #: the per-run f_u churn the round diagnostics report.
        self.retired = 0
        cru_heaps: dict[tuple[int, int], list] = {}
        rrb_heaps: dict[int, list] = {}
        # Snapshot remaining capacities once (ledgers are quiescent
        # here) so the per-pair feasibility test is two dict reads.
        remaining_rrbs = {
            ledger.bs_id: ledger.remaining_rrbs for ledger in ctx.ledgers
        }
        remaining_crus: dict[tuple[int, int], int] = {}
        for ledger in ctx.ledgers:
            bs_id = ledger.bs_id
            for service_id, crus in ledger.remaining_crus_by_service().items():
                remaining_crus[(bs_id, service_id)] = crus
        seq = 0
        for ue_id in target_ids:
            ue = ue_by_id[ue_id]
            service_id = ue.service_id
            cru_demand = ue.cru_demand
            alive = 0
            for pair in cands[ue_id]:
                if (
                    remaining_crus[(pair.bs_id, service_id)] < cru_demand
                    or remaining_rrbs[pair.bs_id] < pair.rrbs
                ):
                    # Already infeasible (pre-loaded ledgers): the pair
                    # can never come back, so it is born retired.
                    pair.alive = False
                    continue
                alive += 1
                seq += 1
                key = (pair.bs_id, service_id)
                heap = cru_heaps.get(key)
                if heap is None:
                    heap = cru_heaps[key] = []
                heap.append((-cru_demand, seq, pair, ue_id))
                heap = rrb_heaps.get(pair.bs_id)
                if heap is None:
                    heap = rrb_heaps[pair.bs_id] = []
                heap.append((-pair.rrbs, seq, pair, ue_id))
            self._count[ue_id] = alive
        # Bulk heapify beats P pushes: O(P) vs O(P log P) for the build.
        heapify = heapq.heapify
        for heap in cru_heaps.values():
            heapify(heap)
        for heap in rrb_heaps.values():
            heapify(heap)
        self._cru_heaps = cru_heaps
        self._rrb_heaps = rrb_heaps

    def count(self, ue_id: int) -> int:
        """Current ``f_u`` for a tracked UE — an O(1) counter read."""
        return self._count[ue_id]

    def on_grant(self, ledger: BSLedger, service_id: int) -> None:
        """Retire every pair whose threshold the grant's BS just crossed."""
        cru_heap = self._cru_heaps.get((ledger.bs_id, service_id))
        if cru_heap:
            remaining = ledger.remaining_crus(service_id)
            while cru_heap and -cru_heap[0][0] > remaining:
                _, _, pair, ue_id = heapq.heappop(cru_heap)
                if pair.alive:
                    pair.alive = False
                    self._count[ue_id] -= 1
                    self.retired += 1
        rrb_heap = self._rrb_heaps.get(ledger.bs_id)
        if rrb_heap:
            remaining = ledger.remaining_rrbs
            while rrb_heap and -rrb_heap[0][0] > remaining:
                _, _, pair, ue_id = heapq.heappop(rrb_heap)
                if pair.alive:
                    pair.alive = False
                    self._count[ue_id] -= 1
                    self.retired += 1


class IterativeMatchingEngine:
    """Runs the round loop of Alg. 1 under a given policy."""

    def __init__(self, policy: MatchingPolicy, max_rounds: int = 100_000) -> None:
        if max_rounds <= 0:
            raise AllocationError(f"max_rounds must be > 0, got {max_rounds}")
        self.policy = policy
        self.max_rounds = max_rounds
        # Static-score caches shared across run() calls on one network —
        # the online simulation's incremental batches hit them warm.  The
        # strong references also pin the key objects so ``is`` checks
        # cannot be fooled by id reuse.
        self._static_cache: dict[tuple[int, int], float | None] = {}
        self._bs_rank_cache: dict[tuple[int, int], tuple | None] = {}
        self._cache_network: MECNetwork | None = None
        self._cache_radio_map: RadioMap | None = None

    def run(
        self,
        network: MECNetwork,
        radio_map: RadioMap,
        ledgers: LedgerPool | None = None,
        ue_ids: Iterable[int] | None = None,
        observer: Callable[[RoundStats], None] | None = None,
    ) -> Assignment:
        """Execute the matching and return the final association.

        ``ledgers`` and ``ue_ids`` support *incremental* matching (the
        online simulation): pass a pool that already holds grants from
        earlier arrivals plus the ids of the newly arrived UEs, and only
        those UEs are matched against the remaining capacity.  The
        returned assignment covers exactly ``ue_ids``; pre-existing
        grants are left untouched and not reported.

        ``observer`` receives one :class:`RoundStats` per round — the
        hook the convergence diagnostics and phase profiling build on.

        ``Assignment.rounds`` reports *productive* rounds: rounds in
        which at least one service request was sent.  The terminating
        probe round (everyone associated or cloud-bound, zero proposals)
        is still reported to the observer but not counted.
        """
        ledgers = ledgers if ledgers is not None else LedgerPool(
            network.base_stations
        )
        if ue_ids is None:
            target_ids = sorted(ue.ue_id for ue in network.user_equipments)
        else:
            target_ids = sorted(set(ue_ids))
        preexisting = {
            (grant.bs_id, grant.ue_id) for grant in ledgers.all_grants()
        }
        ctx = MatchingContext(
            network=network,
            radio_map=radio_map,
            ledgers=ledgers,
            # Sorted so the proposal scan's first-wins tie-break equals
            # the reference's (score, bs_id) argmin ordering.
            candidate_sets={
                ue_id: sorted(network.candidate_base_stations(ue_id))
                for ue_id in target_ids
            },
        )
        network_ue = network.user_equipment
        ue_by_id = {ue_id: network_ue(ue_id) for ue_id in target_ids}
        service_ids = frozenset(ue.service_id for ue in ue_by_id.values())
        cands = self._build_pair_states(ctx, target_ids, ue_by_id)
        tracker = _FeasibilityTracker(ctx, target_ids, cands, ue_by_id)
        unassociated = list(target_ids)
        cloud: set[int] = set()
        rounds = 0
        tel = get_telemetry()

        with tel.span(
            "match", policy=self.policy.name, ues=len(target_ids)
        ) as match_span:
            while True:
                rounds += 1
                if rounds > self.max_rounds:
                    raise AllocationError(
                        f"matching did not terminate within "
                        f"{self.max_rounds} rounds"
                    )
                cloud_before = len(cloud)
                with tel.span("match.round", round=rounds) as round_span:
                    phase_start = time.perf_counter()
                    requests, proposals = self._collect_proposals(
                        ctx, unassociated, cloud, cands, tracker, ue_by_id,
                        service_ids,
                    )
                    propose_time = time.perf_counter() - phase_start
                    newly_cloud = len(cloud) - cloud_before
                    if not requests:
                        round_span.set(
                            proposals=0,
                            accepted=0,
                            newly_cloud=newly_cloud,
                        )
                        if newly_cloud:
                            tel.count("match.exhaustions", newly_cloud)
                        if observer is not None:
                            observer(RoundStats(
                                round_number=rounds,
                                proposals=0,
                                accepted=0,
                                newly_cloud=newly_cloud,
                                unassociated_left=len(unassociated),
                                propose_time_s=propose_time,
                            ))
                        break
                    phase_start = time.perf_counter()
                    retired_before = tracker.retired
                    accepted, evictions = self._process_base_stations(
                        ctx, requests, tracker, ue_by_id
                    )
                    accept_time = time.perf_counter() - phase_start
                    fu_retired = tracker.retired - retired_before
                    if accepted:
                        unassociated = [
                            ue_id for ue_id in unassociated
                            if ue_id not in accepted
                        ]
                    round_span.set(
                        proposals=proposals,
                        accepted=len(accepted),
                        evictions=evictions,
                        newly_cloud=newly_cloud,
                        fu_retired=fu_retired,
                    )
                    tel.count("match.proposals", proposals)
                    tel.count("match.accepted", len(accepted))
                    if evictions:
                        tel.count("match.evictions", evictions)
                    if newly_cloud:
                        tel.count("match.exhaustions", newly_cloud)
                    if fu_retired:
                        tel.count("match.fu_retired", fu_retired)
                    if observer is not None:
                        observer(RoundStats(
                            round_number=rounds,
                            proposals=proposals,
                            accepted=len(accepted),
                            newly_cloud=newly_cloud,
                            unassociated_left=len(unassociated),
                            propose_time_s=propose_time,
                            accept_time_s=accept_time,
                            evictions=evictions,
                        ))

            # Any UE still unassociated at termination has an empty B_u.
            cloud.update(unassociated)
            match_span.set(rounds=rounds - 1, cloud=len(cloud))
            tel.gauge("match.rounds", rounds - 1)
        new_grants = tuple(
            grant
            for grant in ledgers.all_grants()
            if (grant.bs_id, grant.ue_id) not in preexisting
        )
        return Assignment(
            grants=new_grants,
            cloud_ue_ids=frozenset(cloud),
            rounds=rounds - 1,
        )

    # ------------------------------------------------------------------
    # Preference statics
    # ------------------------------------------------------------------

    def _build_pair_states(
        self,
        ctx: MatchingContext,
        target_ids: list[int],
        ue_by_id: dict[int, UserEquipment],
    ) -> dict[int, list[_PairState]]:
        """One :class:`_PairState` per candidate link, statics cached."""
        if (
            self._cache_network is not ctx.network
            or self._cache_radio_map is not ctx.radio_map
        ):
            self._static_cache.clear()
            self._bs_rank_cache.clear()
            self._cache_network = ctx.network
            self._cache_radio_map = ctx.radio_map
        cache = self._static_cache
        policy = self.policy
        link = ctx.radio_map.link
        cands: dict[int, list[_PairState]] = {}
        for ue_id in target_ids:
            ue = ue_by_id[ue_id]
            bs_ids = ctx.candidate_sets[ue_id]
            missing = [
                bs_id for bs_id in bs_ids if (ue_id, bs_id) not in cache
            ]
            if len(missing) == len(bs_ids):
                # Cold cache (the common single-shot case): one batch
                # call, pairs built straight from its result.
                statics = policy.static_ue_scores(ue, bs_ids, ctx)
                pairs = []
                for bs_id, static in zip(bs_ids, statics):
                    cache[(ue_id, bs_id)] = static
                    pairs.append(
                        _PairState(
                            ue_id, bs_id, static, link(ue_id, bs_id).rrbs_required
                        )
                    )
                cands[ue_id] = pairs
                continue
            if missing:
                for bs_id, static in zip(
                    missing, policy.static_ue_scores(ue, missing, ctx)
                ):
                    cache[(ue_id, bs_id)] = static
            cands[ue_id] = [
                _PairState(
                    ue_id, bs_id, cache[(ue_id, bs_id)],
                    link(ue_id, bs_id).rrbs_required,
                )
                for bs_id in bs_ids
            ]
        return cands

    def _rank_key(self, ue_id: int, bs_id: int, ctx: MatchingContext) -> tuple:
        """BS-side sort key, with the policy's static components cached.

        Appends ``ue_id`` as the deterministic tie-break, matching the
        reference engine's ``(bs_rank_key, ue_id)`` ordering exactly.
        """
        cache = self._bs_rank_cache
        key = (ue_id, bs_id)
        try:
            static = cache[key]
        except KeyError:
            static = self.policy.static_bs_rank_key(ue_id, bs_id, ctx)
            cache[key] = static
        if static is None:
            return (self.policy.bs_rank_key(ue_id, bs_id, ctx), ue_id)
        return (
            self.policy.bs_rank_key_from_static(ue_id, bs_id, static, ctx),
            ue_id,
        )

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------

    def _collect_proposals(
        self,
        ctx: MatchingContext,
        unassociated: list[int],
        cloud: set[int],
        cands: dict[int, list[_PairState]],
        tracker: _FeasibilityTracker,
        ue_by_id: dict[int, UserEquipment],
        service_ids: frozenset[int],
    ) -> tuple[dict[int, dict[int, list[_PairState]]], int]:
        """Phase 1: each unassociated UE proposes to its best feasible BS.

        Returns ``(bs_id -> service_id -> [pair, ...], proposal count)``
        (the candidate sets ``U^c_{i,j}``, as :class:`_PairState`
        objects so the BS phases can reuse the cached ``n_{u,i}``).
        UEs whose ``B_u`` empties are moved to ``cloud`` and filtered
        out of ``unassociated`` in place.

        A retired pair can never fit again, so the argmin over *alive*
        pairs equals the reference walk that prunes infeasible argmins
        one by one; dead pairs are compacted out during the scan.  With
        a cooperating policy the per-candidate work is ``static +
        terms[service][bs]`` — no policy call at all.

        A NaN preference score is a policy bug, not a ranking: every
        comparison against it is False, which would silently skip the
        BS (and, if all scores are NaN, forward a UE with live
        candidates to the cloud).  The engine refuses to guess and
        raises :class:`AllocationError` instead.
        """
        requests: dict[int, dict[int, list[_PairState]]] = {}
        newly_cloud: list[int] = []
        proposals = 0
        ctx.f_u_snapshot.clear()
        snapshot = ctx.f_u_snapshot
        policy = self.policy
        ue_score = policy.ue_score
        terms = policy.round_additive_terms(ctx, service_ids)
        tracker_count = tracker._count
        for ue_id in unassociated:
            ue = ue_by_id[ue_id]
            pairs = cands[ue_id]
            term_by_bs = terms[ue.service_id] if terms is not None else None
            best_pair = None
            best_score = _INF
            write = 0
            for pair in pairs:
                if not pair.alive:
                    continue
                pairs[write] = pair
                write += 1
                static = pair.static
                if static is not None and term_by_bs is not None:
                    score = static + term_by_bs[pair.bs_id]
                else:
                    score = ue_score(ue, pair.bs_id, ctx)
                if score != score:  # NaN: refuse to rank on garbage
                    raise AllocationError(
                        f"policy {policy.name!r} returned NaN preference "
                        f"score for UE {ue_id}, BS {pair.bs_id}"
                    )
                # Ties break toward the lower bs_id; candidate lists are
                # ascending in bs_id, so strict < implements that.  The
                # second clause keeps an all-infinite preference list
                # proposing to its first candidate, like the reference.
                if score < best_score or (best_pair is None and score == _INF):
                    best_score = score
                    best_pair = pair
            del pairs[write:]
            if best_pair is None:
                newly_cloud.append(ue_id)
                continue
            requests.setdefault(best_pair.bs_id, {}).setdefault(
                ue.service_id, []
            ).append(best_pair)
            proposals += 1
            # The f_u the UE advertises in its service request (Alg. 1):
            # computed from the resources broadcast at the end of the
            # previous round.
            snapshot[ue_id] = tracker_count[ue_id]
        if newly_cloud:
            cloud.update(newly_cloud)
            dropped = set(newly_cloud)
            unassociated[:] = [
                ue_id for ue_id in unassociated if ue_id not in dropped
            ]
        return requests, proposals

    def _process_base_stations(
        self,
        ctx: MatchingContext,
        requests: dict[int, dict[int, list[_PairState]]],
        tracker: _FeasibilityTracker,
        ue_by_id: dict[int, UserEquipment],
    ) -> tuple[set[int], int]:
        """Phases 2--3: per-service selection plus the RRB budget check.

        Returns the set of UE ids granted an association this round and
        the number of tentative picks evicted by the RRB budget check.
        Requests arrive as :class:`_PairState` objects, so the grant
        below spends the pair's cached ``n_{u,i}`` instead of a
        radio-map lookup.
        """
        accepted: set[int] = set()
        evictions = 0
        for bs_id in sorted(requests):
            ledger = ctx.ledgers.ledger(bs_id)
            picks = self._pick_per_service(ctx, bs_id, requests[bs_id])
            survivors = self._fit_radio_budget(ctx, bs_id, ledger, picks)
            evictions += len(picks) - len(survivors)
            for pair in survivors:
                ue = ue_by_id[pair.ue_id]
                ledger.grant(
                    ue_id=pair.ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand,
                    rrbs=pair.rrbs,
                )
                tracker.on_grant(ledger, ue.service_id)
                accepted.add(pair.ue_id)
        return accepted, evictions

    def _pick_per_service(
        self,
        ctx: MatchingContext,
        bs_id: int,
        by_service: dict[int, list[_PairState]],
    ) -> list[_PairState]:
        """Alg. 1 lines 13--21: one most-preferred candidate per service."""
        picks: list[_PairState] = []
        rank = self._rank_key
        for service_id in sorted(by_service):
            candidates = by_service[service_id]
            best = min(
                candidates, key=lambda pair: rank(pair.ue_id, bs_id, ctx)
            )
            picks.append(best)
        return picks

    def _fit_radio_budget(
        self,
        ctx: MatchingContext,
        bs_id: int,
        ledger: BSLedger,
        picks: list[_PairState],
    ) -> list[_PairState]:
        """Alg. 1 lines 22--25: evict least preferred picks until the
        round's combined RRB demand fits the remaining budget.

        Demands come from the picks' cached ``_PairState.rrbs`` (filled
        once at pair-state build time) — no radio-map lookups here.
        """
        total = sum(pair.rrbs for pair in picks)
        if total <= ledger.remaining_rrbs:
            return picks
        rank = self._rank_key
        ranked = sorted(
            picks, key=lambda pair: rank(pair.ue_id, bs_id, ctx)
        )
        while ranked and total > ledger.remaining_rrbs:
            evicted = ranked.pop()  # least preferred = largest rank key
            total -= evicted.rrbs
        return ranked
