"""The iterative UE--BS matching engine (the skeleton of Alg. 1).

DMRA, DCSP, and NonCo all follow the same deferred-acceptance loop; they
differ only in *how UEs rank BSs* and *how BSs rank UEs*.  The engine
factors out the loop; a :class:`MatchingPolicy` supplies the two ranking
rules.  Per round:

1. every still-unassociated UE walks its candidate set ``B_u`` in
   preference order, discarding BSs that can no longer fit its demand
   (Alg. 1 lines 3--10), and sends one service request;
2. every BS picks, per requested service, its single most preferred
   candidate (lines 12--21);
3. the BS then checks the picks against its remaining RRB budget and, if
   they exceed it, drops its least preferred picks until the rest fit
   (lines 22--25); survivors are granted resources atomically;
4. rejected UEs try again next round; a UE whose ``B_u`` empties is
   forwarded to the remote cloud.

Termination: every round with outstanding requests either grants at
least one association or strictly shrinks some ``B_u`` (a UE whose
proposal-time feasibility check fails removes that BS permanently —
"resources in BS cannot increase", §V), both of which are finite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compute.cru import BSLedger, LedgerPool
from repro.core.assignment import Assignment
from repro.errors import AllocationError
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = [
    "MatchingContext",
    "MatchingPolicy",
    "IterativeMatchingEngine",
    "RoundStats",
]


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Per-round progress numbers handed to an engine observer."""

    round_number: int
    proposals: int
    accepted: int
    newly_cloud: int
    unassociated_left: int


@dataclass
class MatchingContext:
    """Live matching state exposed to policies.

    Policies read remaining resources and coverage facts from here when
    computing preference scores; they never mutate it.
    """

    network: MECNetwork
    radio_map: RadioMap
    ledgers: LedgerPool
    candidate_sets: dict[int, list[int]] = field(default_factory=dict)
    f_u_snapshot: dict[int, int] = field(default_factory=dict)

    def rrbs_required(self, ue_id: int, bs_id: int) -> int:
        """``n_{u,i}`` for a candidate link."""
        return self.radio_map.link(ue_id, bs_id).rrbs_required

    def link_fits(self, ue: UserEquipment, bs_id: int) -> bool:
        """Alg. 1 line 6: the BS currently has room for this UE's demand."""
        ledger = self.ledgers.ledger(bs_id)
        return (
            ledger.remaining_crus(ue.service_id) >= ue.cru_demand
            and ledger.remaining_rrbs >= self.rrbs_required(ue.ue_id, bs_id)
        )

    def feasible_bs_count(self, ue_id: int) -> int:
        """The paper's ``f_u``: BSs still in ``B_u`` that can fit the UE.

        Dynamic by design — it shrinks as resources are consumed, which
        is what makes DMRA prioritize UEs with few remaining options.
        When a per-round snapshot exists (filled at proposal time, i.e.
        the value the UE itself put in its service request) it takes
        precedence: BSs must rank by the advertised ``f_u``, not by state
        that changed while other BSs processed their queues — that
        information would not exist in the decentralized deployment.
        """
        snapshot = self.f_u_snapshot.get(ue_id)
        if snapshot is not None:
            return snapshot
        return self.live_feasible_bs_count(ue_id)

    def live_feasible_bs_count(self, ue_id: int) -> int:
        """``f_u`` recomputed from current ledgers (snapshot source)."""
        ue = self.network.user_equipment(ue_id)
        return sum(
            1
            for bs_id in self.candidate_sets.get(ue_id, ())
            if self.link_fits(ue, bs_id)
        )


class MatchingPolicy(ABC):
    """The two ranking rules that differentiate matching-based schemes."""

    name: str = "policy"

    @abstractmethod
    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        """UE-side preference; the UE proposes to the BS with the
        *smallest* score among its remaining candidates."""

    @abstractmethod
    def bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple:
        """BS-side preference; *smaller tuples are preferred*.

        Used both to pick one candidate per service and to decide which
        tentative picks to evict when the round's grants exceed the BS's
        remaining RRBs.
        """


class IterativeMatchingEngine:
    """Runs the round loop of Alg. 1 under a given policy."""

    def __init__(self, policy: MatchingPolicy, max_rounds: int = 100_000) -> None:
        if max_rounds <= 0:
            raise AllocationError(f"max_rounds must be > 0, got {max_rounds}")
        self.policy = policy
        self.max_rounds = max_rounds

    def run(
        self,
        network: MECNetwork,
        radio_map: RadioMap,
        ledgers: LedgerPool | None = None,
        ue_ids: Iterable[int] | None = None,
        observer: Callable[[RoundStats], None] | None = None,
    ) -> Assignment:
        """Execute the matching and return the final association.

        ``ledgers`` and ``ue_ids`` support *incremental* matching (the
        online simulation): pass a pool that already holds grants from
        earlier arrivals plus the ids of the newly arrived UEs, and only
        those UEs are matched against the remaining capacity.  The
        returned assignment covers exactly ``ue_ids``; pre-existing
        grants are left untouched and not reported.

        ``observer`` receives one :class:`RoundStats` per round — the
        hook the convergence diagnostics build on.
        """
        ledgers = ledgers if ledgers is not None else LedgerPool(
            network.base_stations
        )
        if ue_ids is None:
            target_ids = sorted(ue.ue_id for ue in network.user_equipments)
        else:
            target_ids = sorted(set(ue_ids))
        preexisting = {
            (grant.bs_id, grant.ue_id) for grant in ledgers.all_grants()
        }
        ctx = MatchingContext(
            network=network,
            radio_map=radio_map,
            ledgers=ledgers,
            candidate_sets={
                ue_id: list(network.candidate_base_stations(ue_id))
                for ue_id in target_ids
            },
        )
        unassociated = list(target_ids)
        cloud: set[int] = set()
        rounds = 0

        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise AllocationError(
                    f"matching did not terminate within {self.max_rounds} rounds"
                )
            cloud_before = len(cloud)
            requests = self._collect_proposals(ctx, unassociated, cloud)
            proposals = sum(
                len(ue_list)
                for by_service in requests.values()
                for ue_list in by_service.values()
            )
            if not requests:
                if observer is not None:
                    observer(RoundStats(
                        round_number=rounds,
                        proposals=0,
                        accepted=0,
                        newly_cloud=len(cloud) - cloud_before,
                        unassociated_left=len(unassociated),
                    ))
                break
            accepted = self._process_base_stations(ctx, requests)
            if accepted:
                remaining = set(unassociated) - accepted
                unassociated = sorted(remaining)
            if observer is not None:
                observer(RoundStats(
                    round_number=rounds,
                    proposals=proposals,
                    accepted=len(accepted),
                    newly_cloud=len(cloud) - cloud_before,
                    unassociated_left=len(unassociated),
                ))

        # Any UE still unassociated at termination has an empty B_u.
        cloud.update(unassociated)
        new_grants = tuple(
            grant
            for grant in ledgers.all_grants()
            if (grant.bs_id, grant.ue_id) not in preexisting
        )
        return Assignment(
            grants=new_grants,
            cloud_ue_ids=frozenset(cloud),
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------

    def _collect_proposals(
        self,
        ctx: MatchingContext,
        unassociated: list[int],
        cloud: set[int],
    ) -> dict[int, dict[int, list[int]]]:
        """Phase 1: each unassociated UE proposes to its best feasible BS.

        Returns ``bs_id -> service_id -> [ue_id, ...]`` (the candidate
        sets ``U^c_{i,j}``).  UEs whose ``B_u`` empties are moved to
        ``cloud`` and removed from ``unassociated`` in place.
        """
        requests: dict[int, dict[int, list[int]]] = {}
        newly_cloud: list[int] = []
        ctx.f_u_snapshot.clear()
        for ue_id in unassociated:
            if ue_id in cloud:
                continue
            ue = ctx.network.user_equipment(ue_id)
            candidates = ctx.candidate_sets[ue_id]
            proposed = False
            while candidates:
                best = min(
                    candidates,
                    key=lambda bs_id: (
                        self.policy.ue_score(ue, bs_id, ctx),
                        bs_id,
                    ),
                )
                if ctx.link_fits(ue, best):
                    requests.setdefault(best, {}).setdefault(
                        ue.service_id, []
                    ).append(ue_id)
                    # The f_u the UE advertises in its service request
                    # (Alg. 1): computed from the resources broadcast at
                    # the end of the previous round.
                    ctx.f_u_snapshot[ue_id] = ctx.live_feasible_bs_count(
                        ue_id
                    )
                    proposed = True
                    break
                candidates.remove(best)
            if not proposed:
                newly_cloud.append(ue_id)
        for ue_id in newly_cloud:
            cloud.add(ue_id)
            unassociated.remove(ue_id)
        return requests

    def _process_base_stations(
        self,
        ctx: MatchingContext,
        requests: dict[int, dict[int, list[int]]],
    ) -> set[int]:
        """Phases 2--3: per-service selection plus the RRB budget check.

        Returns the set of UE ids granted an association this round.
        """
        accepted: set[int] = set()
        for bs_id in sorted(requests):
            ledger = ctx.ledgers.ledger(bs_id)
            picks = self._pick_per_service(ctx, bs_id, requests[bs_id])
            survivors = self._fit_radio_budget(ctx, bs_id, ledger, picks)
            for ue_id in survivors:
                ue = ctx.network.user_equipment(ue_id)
                ledger.grant(
                    ue_id=ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand,
                    rrbs=ctx.rrbs_required(ue_id, bs_id),
                )
                accepted.add(ue_id)
        return accepted

    def _pick_per_service(
        self,
        ctx: MatchingContext,
        bs_id: int,
        by_service: dict[int, list[int]],
    ) -> list[int]:
        """Alg. 1 lines 13--21: one most-preferred candidate per service."""
        picks: list[int] = []
        for service_id in sorted(by_service):
            candidates = by_service[service_id]
            best = min(
                candidates,
                key=lambda ue_id: (
                    self.policy.bs_rank_key(ue_id, bs_id, ctx),
                    ue_id,
                ),
            )
            picks.append(best)
        return picks

    def _fit_radio_budget(
        self,
        ctx: MatchingContext,
        bs_id: int,
        ledger: BSLedger,
        picks: list[int],
    ) -> list[int]:
        """Alg. 1 lines 22--25: evict least preferred picks until the
        round's combined RRB demand fits the remaining budget."""
        demand = {
            ue_id: ctx.rrbs_required(ue_id, bs_id) for ue_id in picks
        }
        total = sum(demand.values())
        if total <= ledger.remaining_rrbs:
            return picks
        ranked = sorted(
            picks,
            key=lambda ue_id: (self.policy.bs_rank_key(ue_id, bs_id, ctx), ue_id),
        )
        while ranked and total > ledger.remaining_rrbs:
            evicted = ranked.pop()  # least preferred = largest rank key
            total -= demand[evicted]
        return ranked
