"""The allocator interface every scheme implements.

An allocator maps a network plus its precomputed radio map to an
:class:`~repro.core.assignment.Assignment`.  DMRA and every baseline
(DCSP, NonCo, greedy, random, ILP optimum) share this interface, which is
what lets the simulation harness sweep schemes uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.assignment import Assignment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["Allocator"]


class Allocator(ABC):
    """Base class for UE--BS association schemes.

    Subclasses must be stateless across calls (any per-run state lives in
    local variables of :meth:`allocate`), so one instance can be reused
    over many scenarios and replications.
    """

    #: Short identifier used in result tables and plots.
    name: str = "allocator"

    @abstractmethod
    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        """Associate every UE with a BS or the cloud.

        Implementations must return an assignment that passes
        :meth:`Assignment.validate` for the same inputs.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
