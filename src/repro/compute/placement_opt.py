"""Demand-aware service placement (which services should a BS host?).

The paper's model allows each BS to host only a subset ``S_i ⊆ S``
(its evaluation hosts everything everywhere, so placement never binds).
When hosting slots are scarce — the regime of the DCSP baseline's
source paper, which is *about* collaborative service placement — the
question becomes real: spreading slots uniformly wastes them on
services nobody requests, while chasing only the most popular service
leaves the tail completely uncovered.

:func:`plan_hosting` allocates hosting slots across BSs proportionally
to service popularity, guaranteeing every service at least one slot,
then deals each service's slots across distinct BSs so coverage is
spatially spread.  :func:`rehost_scenario` applies a plan to an
existing scenario (keeping everything else — positions, demands, seeds
— identical) so planned and unplanned hosting can be compared in a
paired fashion.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import build_radio_map
from repro.sim.scenario import Scenario

__all__ = ["plan_hosting", "rehost_scenario", "empirical_popularity"]


def empirical_popularity(network: MECNetwork) -> tuple[float, ...]:
    """Observed service-request shares of the UE population."""
    counts = [0] * network.service_count
    for ue in network.user_equipments:
        counts[ue.service_id] += 1
    total = sum(counts)
    if total == 0:
        raise ConfigurationError("network has no UEs to estimate demand from")
    return tuple(c / total for c in counts)


def plan_hosting(
    bs_count: int,
    slots_per_bs: int,
    weights: Sequence[float],
) -> list[frozenset[int]]:
    """Allocate per-BS hosting sets proportional to demand weights.

    Returns one service-id set per BS, each of size ``slots_per_bs``.
    Every service receives at least one slot network-wide; the rest are
    apportioned by weight (largest-remainder), then dealt round-robin
    so one service's replicas land on different BSs.
    """
    service_count = len(weights)
    if bs_count <= 0:
        raise ConfigurationError(f"bs_count must be > 0, got {bs_count}")
    if not 0 < slots_per_bs <= service_count:
        raise ConfigurationError(
            f"slots_per_bs must be in [1, {service_count}], got {slots_per_bs}"
        )
    total_weight = sum(weights)
    if total_weight <= 0 or any(w < 0 for w in weights):
        raise ConfigurationError(f"invalid demand weights {weights!r}")
    total_slots = bs_count * slots_per_bs
    if total_slots < service_count:
        raise ConfigurationError(
            f"{total_slots} slots cannot cover {service_count} services"
        )

    # Largest-remainder apportionment with a floor of 1 slot per service
    # and a cap of bs_count (a service cannot be hosted twice on one BS).
    shares = [w / total_weight * total_slots for w in weights]
    counts = [max(1, min(bs_count, int(s))) for s in shares]
    while sum(counts) < total_slots:
        # Hand each spare slot to the service furthest below its exact
        # share (heaviest share on ties).  Ranking by raw fractional
        # remainder is wrong here: the 1-slot floor can over-serve a
        # light service (share < 1) whose fraction then still outranks
        # a heavier service's, handing the lightest service more
        # replicas than the heaviest.
        eligible = [j for j in range(service_count) if counts[j] < bs_count]
        if not eligible:  # every service capped out
            break
        j = max(eligible, key=lambda k: (shares[k] - counts[k], shares[k]))
        counts[j] += 1
    while sum(counts) > total_slots:
        # Trim the most-replicated services first (lightest share on
        # ties), never below 1.
        j = max(range(service_count), key=lambda k: (counts[k], -shares[k]))
        if counts[j] <= 1:
            break
        counts[j] -= 1

    # Deal each service's replicas across BSs, most popular first, each
    # replica on the currently least-loaded BS that lacks the service.
    hosting: list[set[int]] = [set() for _ in range(bs_count)]
    order = sorted(range(service_count), key=lambda j: -counts[j])
    for service_id in order:
        for _ in range(counts[service_id]):
            candidates = [
                i
                for i in range(bs_count)
                if service_id not in hosting[i]
                and len(hosting[i]) < slots_per_bs
            ]
            if not candidates:
                break
            target = min(candidates, key=lambda i: (len(hosting[i]), i))
            hosting[target].add(service_id)
    # Fill any leftover capacity with the most popular absent services.
    popularity_order = sorted(
        range(service_count), key=lambda j: -weights[j]
    )
    for i in range(bs_count):
        for service_id in popularity_order:
            if len(hosting[i]) >= slots_per_bs:
                break
            hosting[i].add(service_id)
    return [frozenset(h) for h in hosting]


def rehost_scenario(
    scenario: Scenario, plan: Sequence[frozenset[int]], seed: int = 0
) -> Scenario:
    """Apply a hosting plan to a scenario, leaving everything else fixed.

    Hosted services get fresh CRU capacities from the config's range
    (seeded, so results are reproducible); positions, demands, and the
    UE population are untouched, making comparisons against the original
    scenario paired.
    """
    network = scenario.network
    if len(plan) != network.bs_count:
        raise ConfigurationError(
            f"plan covers {len(plan)} BSs, network has {network.bs_count}"
        )
    rng = np.random.default_rng(seed)
    config = scenario.config
    new_bss = []
    for bs, hosted in zip(network.base_stations, plan):
        capacities = {
            int(service_id): int(
                rng.integers(
                    config.cru_capacity_min, config.cru_capacity_max + 1
                )
            )
            for service_id in sorted(hosted)
        }
        new_bss.append(replace(bs, cru_capacity=capacities))
    new_network = MECNetwork(
        providers=network.providers,
        base_stations=new_bss,
        user_equipments=network.user_equipments,
        services=network.services,
        region=network.region,
        coverage_radius_m=network.coverage_radius_m,
    )
    radio_map = build_radio_map(
        new_network, config.link_budget(), rate_model=config.rate_model_fn()
    )
    return Scenario(
        config=config,
        network=new_network,
        radio_map=radio_map,
        seed=scenario.seed,
    )
