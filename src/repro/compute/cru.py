"""Resource ledgers for a base station's computing and radio capacity.

A :class:`BSLedger` tracks one BS's remaining CRUs per service (Eq. 1 /
constraint 12) and remaining RRBs (constraint 14) during an allocation
run.  Grants are transactional: :meth:`BSLedger.grant` either reserves
both resources atomically or raises, leaving the ledger untouched; a
grant can be released (e.g. when a matching round evicts a tentatively
accepted UE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import CapacityError, ConfigurationError, UnknownEntityError
from repro.model.entities import BaseStation

__all__ = ["Grant", "BSLedger", "LedgerPool"]


@dataclass(frozen=True, slots=True)
class Grant:
    """A successful reservation of CRUs and RRBs on one BS for one UE."""

    bs_id: int
    ue_id: int
    service_id: int
    crus: int
    rrbs: int


class BSLedger:
    """Mutable remaining-capacity tracker for one base station."""

    def __init__(self, base_station: BaseStation) -> None:
        self._bs = base_station
        self._remaining_crus: dict[int, int] = dict(base_station.cru_capacity)
        self._remaining_rrbs: int = base_station.rrb_capacity
        self._grants: dict[int, Grant] = {}

    @property
    def bs_id(self) -> int:
        return self._bs.bs_id

    @property
    def remaining_rrbs(self) -> int:
        """RRBs still available (``N_i`` minus committed ``n_{u,i}``)."""
        return self._remaining_rrbs

    def remaining_crus(self, service_id: int) -> int:
        """CRUs still available for ``service_id`` (0 if not hosted)."""
        return self._remaining_crus.get(service_id, 0)

    def remaining_crus_by_service(self) -> dict[int, int]:
        """Remaining CRUs for every hosted service (a snapshot copy)."""
        return dict(self._remaining_crus)

    @property
    def grants(self) -> Mapping[int, Grant]:
        """Currently held grants, keyed by UE id."""
        return dict(self._grants)

    @property
    def served_ue_ids(self) -> frozenset[int]:
        """The paper's ``U'_i`` for this BS."""
        return frozenset(self._grants)

    def can_grant(self, ue_id: int, service_id: int, crus: int, rrbs: int) -> bool:
        """Whether :meth:`grant` with these arguments would succeed."""
        if ue_id in self._grants:
            return False
        if crus <= 0 or rrbs <= 0:
            return False
        return (
            self.remaining_crus(service_id) >= crus
            and self._remaining_rrbs >= rrbs
        )

    def grant(self, ue_id: int, service_id: int, crus: int, rrbs: int) -> Grant:
        """Atomically reserve ``crus`` CRUs of the service plus ``rrbs`` RRBs.

        Raises :class:`CapacityError` when either resource is short, and
        :class:`ConfigurationError` on nonsensical amounts or double grants.
        The ledger is unchanged on failure.
        """
        if crus <= 0:
            raise ConfigurationError(f"crus must be > 0, got {crus}")
        if rrbs <= 0:
            raise ConfigurationError(f"rrbs must be > 0, got {rrbs}")
        if ue_id in self._grants:
            raise ConfigurationError(
                f"UE {ue_id} already holds a grant on BS {self.bs_id}"
            )
        available_crus = self.remaining_crus(service_id)
        if available_crus < crus:
            raise CapacityError(
                f"BS {self.bs_id}: service {service_id} has {available_crus} "
                f"CRUs left, {crus} requested"
            )
        if self._remaining_rrbs < rrbs:
            raise CapacityError(
                f"BS {self.bs_id}: {self._remaining_rrbs} RRBs left, "
                f"{rrbs} requested"
            )
        self._remaining_crus[service_id] = available_crus - crus
        self._remaining_rrbs -= rrbs
        grant = Grant(
            bs_id=self.bs_id,
            ue_id=ue_id,
            service_id=service_id,
            crus=crus,
            rrbs=rrbs,
        )
        self._grants[ue_id] = grant
        return grant

    def release(self, ue_id: int) -> Grant:
        """Return a UE's grant to the pool (eviction during matching)."""
        grant = self._grants.pop(ue_id, None)
        if grant is None:
            raise UnknownEntityError(
                f"UE {ue_id} holds no grant on BS {self.bs_id}"
            )
        self._remaining_crus[grant.service_id] = (
            self._remaining_crus.get(grant.service_id, 0) + grant.crus
        )
        self._remaining_rrbs += grant.rrbs
        return grant

    def utilization(self) -> tuple[float, float]:
        """(CRU utilization, RRB utilization) as fractions in [0, 1]."""
        total_crus = self._bs.total_cru_capacity
        used_crus = sum(g.crus for g in self._grants.values())
        cru_util = used_crus / total_crus if total_crus else 0.0
        used_rrbs = self._bs.rrb_capacity - self._remaining_rrbs
        rrb_util = used_rrbs / self._bs.rrb_capacity
        return (cru_util, rrb_util)

    def check_invariants(self) -> None:
        """Assert internal consistency; raises :class:`CapacityError` if broken.

        Used by property tests: remaining + granted must equal capacity for
        every resource, and nothing may be negative.
        """
        if self._remaining_rrbs < 0:
            raise CapacityError(f"BS {self.bs_id}: negative remaining RRBs")
        granted_rrbs = sum(g.rrbs for g in self._grants.values())
        if granted_rrbs + self._remaining_rrbs != self._bs.rrb_capacity:
            raise CapacityError(f"BS {self.bs_id}: RRB conservation violated")
        granted_by_service: dict[int, int] = {}
        for grant in self._grants.values():
            granted_by_service[grant.service_id] = (
                granted_by_service.get(grant.service_id, 0) + grant.crus
            )
        for service_id, capacity in self._bs.cru_capacity.items():
            remaining = self._remaining_crus.get(service_id, 0)
            granted = granted_by_service.get(service_id, 0)
            if remaining < 0:
                raise CapacityError(
                    f"BS {self.bs_id}: negative CRUs for service {service_id}"
                )
            if remaining + granted != capacity:
                raise CapacityError(
                    f"BS {self.bs_id}: CRU conservation violated "
                    f"for service {service_id}"
                )


class LedgerPool:
    """One :class:`BSLedger` per base station of a network."""

    def __init__(self, base_stations) -> None:
        self._ledgers = {bs.bs_id: BSLedger(bs) for bs in base_stations}

    def ledger(self, bs_id: int) -> BSLedger:
        """The ledger of one base station."""
        try:
            return self._ledgers[bs_id]
        except KeyError:
            raise UnknownEntityError(f"unknown BS id {bs_id}") from None

    def __iter__(self):
        return iter(self._ledgers.values())

    def __len__(self) -> int:
        return len(self._ledgers)

    def all_grants(self) -> list[Grant]:
        """Every grant currently held across all BSs."""
        return [g for ledger in self for g in ledger.grants.values()]

    def check_invariants(self) -> None:
        """Run :meth:`BSLedger.check_invariants` on every ledger."""
        for ledger in self:
            ledger.check_invariants()
