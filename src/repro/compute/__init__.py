"""Compute substrate: CRU/RRB ledgers, service catalog, remote cloud."""

from repro.compute.catalog import ServiceCatalog
from repro.compute.cloud import ForwardedTask, RemoteCloud
from repro.compute.cru import BSLedger, Grant, LedgerPool
from repro.compute.placement_opt import (
    empirical_popularity,
    plan_hosting,
    rehost_scenario,
)

__all__ = [
    "BSLedger",
    "ForwardedTask",
    "Grant",
    "LedgerPool",
    "RemoteCloud",
    "empirical_popularity",
    "plan_hosting",
    "rehost_scenario",
    "ServiceCatalog",
]
