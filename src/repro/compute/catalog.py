"""Service catalog construction.

The paper's setup gives every BS six services with per-service CRU
capacities drawn from ``U{100..150}``.  :class:`ServiceCatalog` builds
the global service list and samples per-BS hosting maps, including the
partial-hosting variant (each BS hosts a random subset) used by the
ablation experiments — the paper's model explicitly allows ``S_i ⊂ S``
even though its evaluation hosts all services everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.model.entities import Service

__all__ = ["ServiceCatalog"]


@dataclass(frozen=True, slots=True)
class ServiceCatalog:
    """Factory for services and per-BS CRU capacity maps.

    Parameters
    ----------
    service_count:
        Number of distinct services (6 in the paper).
    cru_capacity_min, cru_capacity_max:
        Inclusive bounds of the per-(BS, service) capacity ``c_{i,j}``
        (100..150 in the paper).
    hosted_fraction:
        Fraction of services each BS hosts.  1.0 (the paper's evaluation)
        means every BS hosts every service; lower values sample a random
        subset of at least one service per BS.
    """

    service_count: int = 6
    cru_capacity_min: int = 100
    cru_capacity_max: int = 150
    hosted_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.service_count <= 0:
            raise ConfigurationError(
                f"service_count must be > 0, got {self.service_count}"
            )
        if (
            self.cru_capacity_min <= 0
            or self.cru_capacity_max < self.cru_capacity_min
        ):
            raise ConfigurationError(
                f"invalid CRU capacity range "
                f"[{self.cru_capacity_min}, {self.cru_capacity_max}]"
            )
        if not 0.0 < self.hosted_fraction <= 1.0:
            raise ConfigurationError(
                f"hosted_fraction must be in (0, 1], got {self.hosted_fraction}"
            )

    def build_services(self) -> list[Service]:
        """The global service set ``S``."""
        return [
            Service(service_id=i, name=f"service-{i}")
            for i in range(self.service_count)
        ]

    def sample_hosting(self, rng: np.random.Generator) -> dict[int, int]:
        """One BS's ``c_{i,j}`` map: hosted service id -> CRU capacity."""
        hosted_count = max(1, round(self.hosted_fraction * self.service_count))
        hosted = rng.choice(
            self.service_count, size=hosted_count, replace=False
        )
        return {
            int(service_id): int(
                rng.integers(self.cru_capacity_min, self.cru_capacity_max + 1)
            )
            for service_id in sorted(hosted)
        }
