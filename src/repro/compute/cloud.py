"""The remote cloud layer.

The paper models the cloud as an unlimited-capacity sink of last resort:
tasks no BS can take are forwarded there, which costs transmission
through the backbone and contributes nothing to MEC-layer SP profit.
:class:`RemoteCloud` records every forwarded task so the harness can
report the "total forwarded traffic load" metric of Fig. 7.

Forwarded load is measured as the sum of the UEs' uplink rate demands
(bits/s) — the traffic that would otherwise have stayed at the edge;
the CRU view is also kept for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment

__all__ = ["ForwardedTask", "RemoteCloud"]


@dataclass(frozen=True, slots=True)
class ForwardedTask:
    """One task forwarded to the remote cloud."""

    ue_id: int
    sp_id: int
    service_id: int
    crus: int
    rate_demand_bps: float


@dataclass
class RemoteCloud:
    """Unlimited-capacity cloud sink with forwarding accounting."""

    _tasks: dict[int, ForwardedTask] = field(default_factory=dict)

    def forward(self, ue: UserEquipment) -> ForwardedTask:
        """Record a UE's task as cloud-served."""
        if ue.ue_id in self._tasks:
            raise ConfigurationError(
                f"UE {ue.ue_id} was already forwarded to the cloud"
            )
        task = ForwardedTask(
            ue_id=ue.ue_id,
            sp_id=ue.sp_id,
            service_id=ue.service_id,
            crus=ue.cru_demand,
            rate_demand_bps=ue.rate_demand_bps,
        )
        self._tasks[ue.ue_id] = task
        return task

    @property
    def forwarded_ue_ids(self) -> frozenset[int]:
        return frozenset(self._tasks)

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def forwarded_traffic_bps(self) -> float:
        """Total forwarded traffic load (Fig. 7's metric)."""
        return sum(task.rate_demand_bps for task in self._tasks.values())

    @property
    def forwarded_crus(self) -> int:
        """Total CRU demand pushed to the cloud."""
        return sum(task.crus for task in self._tasks.values())

    def tasks_of_sp(self, sp_id: int) -> tuple[ForwardedTask, ...]:
        """Forwarded tasks belonging to one SP's subscribers."""
        return tuple(t for t in self._tasks.values() if t.sp_id == sp_id)
