"""Event-driven streaming allocation: churn tapes, incremental engine,
from-scratch oracle, and the backpressured service loop.

See ``docs/streaming.md`` for the dirty-neighborhood invariant and the
equivalence gate that pins the incremental engine to the from-scratch
reference.
"""

from repro.stream.engine import (
    SOA_BATCH_THRESHOLD,
    IncrementalShardEngine,
    RescratchShardEngine,
)
from repro.stream.events import StreamEvent
from repro.stream.runner import (
    MODES,
    StreamDispatcher,
    StreamOutcome,
    replay_tape,
    run_stream,
)
from repro.stream.service import serve_stream, serve_stream_async
from repro.stream.tape import ChurnTape, StreamConfig, open_tape

__all__ = [
    "MODES",
    "SOA_BATCH_THRESHOLD",
    "ChurnTape",
    "IncrementalShardEngine",
    "RescratchShardEngine",
    "StreamConfig",
    "StreamDispatcher",
    "StreamEvent",
    "StreamOutcome",
    "open_tape",
    "replay_tape",
    "run_stream",
    "serve_stream",
    "serve_stream_async",
]
