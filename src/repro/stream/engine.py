"""Per-shard streaming allocators: incremental re-matching vs from-scratch.

Both engines consume the same event semantics — stage arrivals, apply
departures and mobility deltas immediately, re-match once per distinct
timestamp — and differ only in *which* UEs they hand to the matching
kernel:

* :class:`IncrementalShardEngine` re-proposes arrivals, displaced UEs,
  and the *dirty* subset of cloud-forwarded UEs.  Steady-state cost per
  event is proportional to the changed neighborhood.
* :class:`RescratchShardEngine` re-proposes arrivals, displaced UEs,
  and **every** cloud-forwarded UE against a monolithic network that is
  patched with :meth:`~repro.model.network.MECNetwork.with_moved_ues` /
  :meth:`~repro.radio.channel.RadioMap.with_updated_ues` on each move.
  It is the oracle the equivalence gate compares against.

The incremental engine's dirty rule rests on a monotonicity fact of the
round loop (see :class:`repro.core.matching._FeasibilityTracker`): BS
capacity never grows *during* a run — "evictions" drop tentative
same-round picks, never booked grants — so a UE forwarded to the cloud
retired each candidate link only once that link's BS could no longer fit
it, and at quiescence every cloud UE is infeasible at every candidate.
Between runs capacity grows only at an explicit release (departure or
mobility displacement).  Re-proposing exactly the cloud UEs holding a
candidate link to a BS that released capacity — the per-BS
*blocked-candidate index* — therefore reproduces the from-scratch
outcome bit for bit: any cloud UE left out is born-retired in the
reference run (it proposes nowhere and cannot alter another UE's
grants).  ``DMRA_DEBUG_STREAM=1`` re-verifies the quiescence invariant
after every re-match.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Iterable, Sequence

from repro.compute.cru import LedgerPool
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.core.soa import KERNELS, make_matching_engine
from repro.dynamics.online import LedgerMonitor
from repro.econ.accounting import marginal_profit
from repro.errors import AllocationError, ConfigurationError
from repro.model.batchnet import BatchNetworkBuilder
from repro.model.entities import (
    BaseStation,
    Service,
    ServiceProvider,
    UserEquipment,
)
from repro.model.geometry import Point, Rectangle
from repro.model.network import MECNetwork
from repro.obs import get_telemetry
from repro.radio.channel import RadioMap, build_radio_map
from repro.radio.sinr import LinkBudget

__all__ = [
    "IncrementalShardEngine",
    "RescratchShardEngine",
    "SOA_BATCH_THRESHOLD",
]

#: Under ``kernel="auto"`` the incremental engine compiles batches of at
#: least this many UEs with the SoA kernel; smaller batches stay on the
#: object engine, whose per-run setup is cheaper.  Both kernels are
#: bit-identical for a plain :class:`~repro.core.dmra.DMRAPolicy`, so
#: the threshold is purely a throughput knob.
SOA_BATCH_THRESHOLD = 64


def _debug_stream() -> bool:
    return os.environ.get("DMRA_DEBUG_STREAM", "") not in ("", "0")


class _ShardEngineBase:
    """Event bookkeeping shared by both allocation modes.

    Subclasses choose the re-proposal set and the (network, radio map)
    the batch is matched against; everything observable — admission
    counters, profits, ledger state — flows through this shared code so
    the two modes stay comparable field by field.
    """

    mode: str = "base"

    def __init__(
        self,
        *,
        shard_id: int,
        providers: Sequence[ServiceProvider],
        base_stations: Sequence[BaseStation],
        services: Sequence[Service],
        region: Rectangle,
        coverage_radius_m: float,
        budget: LinkBudget,
        rate_model,
        pricing,
        policy: MatchingPolicy,
        scan_cadence: int = 1024,
    ) -> None:
        self.shard_id = shard_id
        self._providers = tuple(providers)
        self._base_stations = tuple(base_stations)
        self._services = tuple(services)
        self._region = region
        self._coverage_radius_m = coverage_radius_m
        self._budget = budget
        self._rate_model = rate_model
        self._pricing = pricing
        self._policy = policy
        self._bs_count = len(self._base_stations)
        self._bs_by_id = {bs.bs_id: bs for bs in self._base_stations}
        self._ledgers = LedgerPool(self._base_stations)
        self.total_rrbs = sum(bs.rrb_capacity for bs in self._base_stations)
        self._monitor = LedgerMonitor(
            self._ledgers, self.total_rrbs, cadence=scan_cadence
        )
        # Live state: entities of every active UE (edge + cloud +
        # displaced), the grant records, and the pre-flush staging area.
        self._staged: dict[int, UserEquipment] = {}
        self._entities: dict[int, UserEquipment] = {}
        self._edge: dict[int, int] = {}
        self._edge_rrbs: dict[int, int] = {}
        self._cloud: set[int] = set()
        self._displaced: set[int] = set()
        self._used_rrbs = 0
        # Outcome counters (mode-equal by the equivalence invariant).
        self.cancelled = 0
        self.displaced = 0
        self.admitted_edge = 0
        self.admitted_cloud = 0
        self.readmitted = 0
        self.total_profit = 0.0
        self.profit_by_sp: dict[int, float] = {
            sp.sp_id: 0.0 for sp in self._providers
        }

    # -- occupancy ----------------------------------------------------

    @property
    def edge_active(self) -> int:
        return len(self._edge)

    @property
    def cloud_active(self) -> int:
        return len(self._cloud)

    @property
    def used_rrbs(self) -> int:
        return self._used_rrbs

    @property
    def rrb_utilization(self) -> float:
        return self._used_rrbs / self.total_rrbs if self.total_rrbs else 0.0

    def grant_items(self) -> Iterable[tuple[int, int, int]]:
        """``(ue_id, bs_id, rrbs)`` per live edge grant (digest input)."""
        for ue_id, bs_id in self._edge.items():
            yield ue_id, bs_id, self._edge_rrbs[ue_id]

    @property
    def cloud_ids(self) -> frozenset[int]:
        return frozenset(self._cloud)

    # -- event application --------------------------------------------

    def stage(self, ue: UserEquipment) -> None:
        """Stage an arrival for the next :meth:`flush`."""
        self._staged[ue.ue_id] = ue

    def depart(self, ue_id: int) -> None:
        """Apply a departure immediately (O(1) plus the tripwire)."""
        if ue_id in self._staged:
            # The tape draws holding times independently of admission;
            # a zero-length holding departs the UE before it was ever
            # matched, which cancels the staged arrival in both modes.
            del self._staged[ue_id]
            self.cancelled += 1
            return
        if ue_id in self._edge:
            self._release_edge(ue_id)
        elif ue_id in self._cloud:
            self._cloud.discard(ue_id)
            self._on_cloud_departure(ue_id)
        elif ue_id in self._displaced:
            # Departed between its displacing move and the flush that
            # would have re-proposed it (same-instant events).
            self._displaced.discard(ue_id)
        else:
            raise AllocationError(
                f"departure for UE {ue_id} which is not active"
            )
        self._entities.pop(ue_id, None)
        self._monitor.check(self._used_rrbs)

    def move(self, ue_id: int, position: Point) -> None:
        """Apply a mobility delta: displace the UE for re-matching."""
        if ue_id in self._staged:
            self._staged[ue_id] = replace(
                self._staged[ue_id], position=position
            )
            self._position_changed(ue_id, position)
            return
        if ue_id not in self._entities:
            raise AllocationError(f"move for UE {ue_id} which is not active")
        self._entities[ue_id] = replace(
            self._entities[ue_id], position=position
        )
        if ue_id in self._edge:
            self._release_edge(ue_id)
            self._displaced.add(ue_id)
            self.displaced += 1
        elif ue_id in self._cloud:
            self._cloud.discard(ue_id)
            self._on_cloud_departure(ue_id)
            self._displaced.add(ue_id)
            self.displaced += 1
        self._position_changed(ue_id, position)
        self._monitor.check(self._used_rrbs)

    def flush(self, now: float) -> None:
        """Re-match the staged + displaced + re-proposal set at ``now``."""
        propose: dict[int, UserEquipment] = {}
        for ue_id in self._reproposal_ids():
            propose[ue_id] = self._entities[ue_id]
        for ue_id in self._displaced:
            propose[ue_id] = self._entities[ue_id]
        propose.update(self._staged)
        self._staged.clear()
        if not propose:
            return
        was_cloud = {u for u in propose if u in self._cloud}
        was_displaced = set(self._displaced)
        self._displaced.clear()
        if self._bs_count == 0:
            # A shard tile that owns no BSs: everything is cloud-bound.
            for ue_id, ue in propose.items():
                self._entities[ue_id] = ue
                if ue_id not in was_cloud:
                    if ue_id not in was_displaced:
                        self.admitted_cloud += 1
                    self._cloud.add(ue_id)
            return

        network, radio = self._batch_context(propose)
        engine = self._engine_for(len(propose))
        with get_telemetry().timer("stream.rematch"):
            assignment = engine.run(
                network, radio, ledgers=self._ledgers,
                ue_ids=list(propose),
            )
        # Sorted accounting keeps the profit float accumulation order
        # independent of the kernel's ledger insertion order.
        for grant in sorted(assignment.grants, key=lambda g: g.ue_id):
            ue = propose[grant.ue_id]
            self._entities[grant.ue_id] = ue
            self._edge[grant.ue_id] = grant.bs_id
            self._edge_rrbs[grant.ue_id] = grant.rrbs
            self._used_rrbs += grant.rrbs
            self._monitor.on_grant(grant.rrbs)
            profit = marginal_profit(
                network, grant.ue_id, grant.bs_id, self._pricing
            )
            self.total_profit += profit
            self.profit_by_sp[ue.sp_id] = (
                self.profit_by_sp.get(ue.sp_id, 0.0) + profit
            )
            if grant.ue_id in was_cloud:
                self._cloud.discard(grant.ue_id)
                self._on_cloud_exit(grant.ue_id)
                self.readmitted += 1
            elif grant.ue_id in was_displaced:
                self.readmitted += 1
            else:
                self.admitted_edge += 1
        for ue_id in sorted(assignment.cloud_ue_ids):
            ue = propose[ue_id]
            self._entities[ue_id] = ue
            if ue_id not in was_cloud:
                if ue_id not in was_displaced:
                    # Blocking counts initial admissions only; a
                    # displaced or re-proposed UE landing cloud again is
                    # occupancy churn, not a new blocked arrival.
                    self.admitted_cloud += 1
                self._cloud.add(ue_id)
            self._on_cloud_entry(ue_id, ue, radio)
        if _debug_stream():
            self._assert_cloud_quiescent(set(assignment.cloud_ue_ids))
        self._monitor.check(self._used_rrbs)

    # -- shared internals ---------------------------------------------

    def _release_edge(self, ue_id: int) -> int:
        bs_id = self._edge.pop(ue_id)
        expected = self._edge_rrbs.pop(ue_id)
        grant = self._ledgers.ledger(bs_id).release(ue_id)
        if grant.rrbs != expected:
            raise AllocationError(
                f"ledger drift: UE {ue_id} released {grant.rrbs} RRBs on "
                f"BS {bs_id} but the run recorded {expected}"
            )
        self._used_rrbs -= grant.rrbs
        self._monitor.on_release(grant.rrbs)
        self._freed(bs_id)
        return bs_id

    def _assert_cloud_quiescent(self, cloud_ids: set[int]) -> None:
        """Debug probe: post-run cloud UEs are infeasible everywhere."""
        for ue_id in sorted(cloud_ids):
            if ue_id not in self._cloud:
                continue
            ue = self._entities[ue_id]
            for bs_id, rrbs in self._quiescence_cands(ue_id):
                ledger = self._ledgers.ledger(bs_id)
                if (
                    ledger.remaining_rrbs >= rrbs
                    and ledger.remaining_crus(ue.service_id)
                    >= ue.cru_demand
                ):
                    raise AllocationError(
                        f"quiescence invariant violated: cloud UE "
                        f"{ue_id} still fits BS {bs_id}"
                    )

    def _quiescence_cands(self, ue_id: int) -> tuple[tuple[int, int], ...]:
        """``(bs_id, rrbs_required)`` pairs backing the debug probe."""
        return ()

    # -- mode hooks ----------------------------------------------------

    def _reproposal_ids(self) -> Iterable[int]:
        raise NotImplementedError

    def _batch_context(
        self, propose: dict[int, UserEquipment]
    ) -> tuple[MECNetwork, RadioMap]:
        raise NotImplementedError

    def _engine_for(self, batch_size: int):
        raise NotImplementedError

    def _freed(self, bs_id: int) -> None:
        """An edge grant on ``bs_id`` was just released."""

    def _on_cloud_departure(self, ue_id: int) -> None:
        """A cloud UE left (departure or displacement)."""

    def _on_cloud_exit(self, ue_id: int) -> None:
        """A cloud UE was re-admitted to the edge."""

    def _on_cloud_entry(
        self, ue_id: int, ue: UserEquipment, radio: RadioMap
    ) -> None:
        """A UE entered (or stayed in) the cloud set after a flush."""

    def _position_changed(self, ue_id: int, position: Point) -> None:
        """The UE's position changed (staged, edge, or cloud)."""


class IncrementalShardEngine(_ShardEngineBase):
    """Dirty-neighborhood re-matching over cheap per-batch networks."""

    mode = "incremental"

    def __init__(
        self,
        *,
        shard_id: int,
        providers: Sequence[ServiceProvider],
        base_stations: Sequence[BaseStation],
        services: Sequence[Service],
        region: Rectangle,
        coverage_radius_m: float,
        budget: LinkBudget,
        rate_model,
        pricing,
        policy: MatchingPolicy,
        kernel: str = "auto",
        scan_cadence: int = 1024,
    ) -> None:
        super().__init__(
            shard_id=shard_id,
            providers=providers,
            base_stations=base_stations,
            services=services,
            region=region,
            coverage_radius_m=coverage_radius_m,
            budget=budget,
            rate_model=rate_model,
            pricing=pricing,
            policy=policy,
            scan_cadence=scan_cadence,
        )
        if kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown matching kernel {kernel!r}; "
                f"choose one of {KERNELS}"
            )
        self.kernel = kernel
        self._object_engine = make_matching_engine(policy, kernel="object")
        self._soa_engine = None
        if kernel == "soa" or (
            kernel == "auto" and type(policy) is DMRAPolicy
        ):
            self._soa_engine = make_matching_engine(policy, kernel="soa")
        self._builder = (
            BatchNetworkBuilder(
                providers=providers,
                base_stations=base_stations,
                services=services,
                region=region,
                coverage_radius_m=coverage_radius_m,
            )
            if self._bs_count
            else None
        )
        #: Cloud UEs to re-propose at the next flush: exactly those with
        #: a candidate link to a BS that released capacity since they
        #: last retired.
        self._dirty: set[int] = set()
        #: Per cloud UE, its viable ``(bs_id, rrbs_required)`` links.
        self._cloud_cands: dict[int, tuple[tuple[int, int], ...]] = {}
        #: The blocked-candidate index: BS id -> cloud UEs holding a
        #: candidate link to it.
        self._blocked_by_bs: dict[int, set[int]] = {}

    # -- hooks ---------------------------------------------------------

    def _reproposal_ids(self) -> Iterable[int]:
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def _batch_context(
        self, propose: dict[int, UserEquipment]
    ) -> tuple[MECNetwork, RadioMap]:
        ues = [propose[ue_id] for ue_id in sorted(propose)]
        network = self._builder.network_for(ues)
        radio = build_radio_map(
            network, self._budget, rate_model=self._rate_model
        )
        return network, radio

    def _engine_for(self, batch_size: int):
        if self._soa_engine is not None and (
            self.kernel == "soa" or batch_size >= SOA_BATCH_THRESHOLD
        ):
            return self._soa_engine
        return self._object_engine

    def _freed(self, bs_id: int) -> None:
        blocked = self._blocked_by_bs.get(bs_id)
        if blocked:
            self._dirty.update(blocked)

    def _on_cloud_departure(self, ue_id: int) -> None:
        self._dirty.discard(ue_id)
        self._drop_index(ue_id)

    def _on_cloud_exit(self, ue_id: int) -> None:
        self._drop_index(ue_id)

    def _on_cloud_entry(
        self, ue_id: int, ue: UserEquipment, radio: RadioMap
    ) -> None:
        if ue_id in self._cloud_cands:
            # Same position since last indexed: links unchanged.
            return
        start, stop = radio.ue_slice(ue_id)
        bs_col = radio.bs_ids
        demands = radio.rrb_demands
        pairs: list[tuple[int, int]] = []
        for i in range(start, stop):
            bs_id = int(bs_col[i])
            rrbs = int(demands[i])
            bs = self._bs_by_id[bs_id]
            if rrbs > bs.rrb_capacity:
                continue  # can never fit, even on an empty BS
            if ue.cru_demand > bs.cru_capacity.get(ue.service_id, 0):
                continue
            pairs.append((bs_id, rrbs))
            self._blocked_by_bs.setdefault(bs_id, set()).add(ue_id)
        self._cloud_cands[ue_id] = tuple(pairs)

    def _quiescence_cands(self, ue_id: int) -> tuple[tuple[int, int], ...]:
        return self._cloud_cands.get(ue_id, ())

    def _drop_index(self, ue_id: int) -> None:
        cands = self._cloud_cands.pop(ue_id, None)
        if not cands:
            return
        for bs_id, _ in cands:
            blocked = self._blocked_by_bs.get(bs_id)
            if blocked is not None:
                blocked.discard(ue_id)
                if not blocked:
                    del self._blocked_by_bs[bs_id]

    # -- introspection (tests) ----------------------------------------

    @property
    def dirty_ids(self) -> frozenset[int]:
        return frozenset(self._dirty)

    @property
    def blocked_index_size(self) -> int:
        return sum(len(s) for s in self._blocked_by_bs.values())


class RescratchShardEngine(_ShardEngineBase):
    """The from-scratch oracle: every cloud UE re-proposed, every batch.

    Holds one monolithic grid network over the shard's entire tape
    population (built at arrival positions, patched per move with
    ``with_moved_ues`` / ``with_updated_ues``) and runs a **fresh**
    object-kernel engine per flush, so no incremental machinery —
    caches, batch networks, dirty sets — is shared with the engine
    under test.
    """

    mode = "rescratch"

    def __init__(
        self,
        *,
        shard_id: int,
        providers: Sequence[ServiceProvider],
        base_stations: Sequence[BaseStation],
        services: Sequence[Service],
        region: Rectangle,
        coverage_radius_m: float,
        budget: LinkBudget,
        rate_model,
        pricing,
        policy: MatchingPolicy,
        population: Sequence[UserEquipment],
        scan_cadence: int = 1,
    ) -> None:
        super().__init__(
            shard_id=shard_id,
            providers=providers,
            base_stations=base_stations,
            services=services,
            region=region,
            coverage_radius_m=coverage_radius_m,
            budget=budget,
            rate_model=rate_model,
            pricing=pricing,
            policy=policy,
            scan_cadence=scan_cadence,
        )
        self._network: MECNetwork | None = None
        self._radio: RadioMap | None = None
        if self._bs_count:
            self._network = MECNetwork(
                providers=self._providers,
                base_stations=self._base_stations,
                user_equipments=tuple(population),
                services=self._services,
                region=region,
                coverage_radius_m=coverage_radius_m,
                geometry="grid",
            )
            self._radio = build_radio_map(
                self._network, budget, rate_model=rate_model
            )

    def _reproposal_ids(self) -> Iterable[int]:
        return sorted(self._cloud)

    def _batch_context(
        self, propose: dict[int, UserEquipment]
    ) -> tuple[MECNetwork, RadioMap]:
        return self._network, self._radio

    def _engine_for(self, batch_size: int):
        # A cold engine per batch: nothing carries over between solves.
        return IterativeMatchingEngine(self._policy)

    def _position_changed(self, ue_id: int, position: Point) -> None:
        if self._network is None:
            return
        self._network = self._network.with_moved_ues({ue_id: position})
        self._radio = self._radio.with_updated_ues(
            self._network, self._budget, [ue_id],
            rate_model=self._rate_model,
        )

    def _quiescence_cands(self, ue_id: int) -> tuple[tuple[int, int], ...]:
        if self._radio is None:
            return ()
        start, stop = self._radio.ue_slice(ue_id)
        bs_col = self._radio.bs_ids
        demands = self._radio.rrb_demands
        return tuple(
            (int(bs_col[i]), int(demands[i])) for i in range(start, stop)
        )
