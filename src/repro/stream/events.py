"""Events on the streaming allocator's input tape.

Unlike the classic online queue (:mod:`repro.dynamics.events`), the
stream is *exogenous*: every event — arrival, departure, and mobility
delta — is fixed on the tape before the allocator sees it, so the
incremental engine and the from-scratch reference consume byte-identical
inputs and their outcomes are directly comparable.  Arrival events carry
the materialized UE entity; move events carry the new position.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.events import EventKind
from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.geometry import Point

__all__ = ["StreamEvent"]


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One timestamped tape entry concerning one UE.

    ``ue`` is set on arrivals (the full entity, drawn lazily by the
    tape), ``position`` on moves (the destination).  Departures carry
    only the id.
    """

    time_s: float
    kind: EventKind
    ue_id: int
    ue: UserEquipment | None = None
    position: Point | None = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError(
                f"event time must be >= 0, got {self.time_s}"
            )
        if self.kind is EventKind.ARRIVAL and self.ue is None:
            raise ConfigurationError(
                f"arrival event for UE {self.ue_id} must carry the entity"
            )
        if self.kind is EventKind.MOVE and self.position is None:
            raise ConfigurationError(
                f"move event for UE {self.ue_id} must carry a position"
            )
