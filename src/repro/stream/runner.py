"""Replay a churn tape through per-shard streaming engines.

The dispatcher is the *shared* half of both allocation modes: it groups
tape events by exact timestamp (arrivals staged, departures and moves
applied immediately, one re-match per timestamp per touched shard),
routes every UE to the shard owning its **arrival** position, and
accumulates the outcome counters, occupancy series, and telemetry.
Because modes differ only inside the engines, every gated metric —
admissions, profits, blocking, occupancy — is recorded by identical
code, which is what lets ``dmra trace diff`` compare an incremental run
against the from-scratch reference without mode-specific noise.

Sharding trades borders for memory: BSs are tiled by
:func:`repro.scale.partition.plan_tiles`, and a UE whose arrival
position lands in one tile never proposes to another tile's BSs (no
halo — unlike the static :mod:`repro.scale` path).  ``shards=1`` is
lossless; larger counts drop cross-border candidates symmetrically in
both modes, so the equivalence gate holds at any shard count.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.dmra import DMRAPolicy
from repro.core.matching import MatchingPolicy
from repro.core.soa import KERNELS
from repro.dynamics.events import EventKind
from repro.dynamics.timeseries import StepSeries
from repro.errors import AllocationError, ConfigurationError
from repro.obs import get_telemetry
from repro.scale.partition import assign_shards, plan_tiles
from repro.sim.config import ScenarioConfig
from repro.stream.engine import (
    IncrementalShardEngine,
    RescratchShardEngine,
    _ShardEngineBase,
)
from repro.stream.events import StreamEvent
from repro.stream.tape import ChurnTape, StreamConfig, open_tape

__all__ = ["MODES", "StreamOutcome", "StreamDispatcher", "run_stream"]

MODES = ("incremental", "rescratch")


@dataclass(frozen=True)
class StreamOutcome:
    """Everything measured over one tape replay."""

    mode: str
    shards: int
    kernel: str
    horizon_s: float
    events_processed: int
    arrivals: int
    departures: int
    moves: int
    cancelled: int
    admitted_edge: int
    admitted_cloud: int
    readmitted: int
    displaced: int
    total_profit: float
    profit_by_sp: Mapping[int, float]
    edge_active: StepSeries
    cloud_active: StepSeries
    rrb_utilization: StepSeries
    shard_events: tuple[int, ...]
    peak_edge_active: int
    peak_active: int
    wall_s: float
    #: SHA-256 over the final grants, cloud set, profits, and admission
    #: counters — two replays agree bit-for-bit iff digests match.
    digest: str

    @property
    def admissions(self) -> int:
        """Initial admissions (edge + cloud) — cancelled arrivals excluded."""
        return self.admitted_edge + self.admitted_cloud

    @property
    def blocking_probability(self) -> float:
        total = self.admissions
        return self.admitted_cloud / total if total else 0.0

    @property
    def profit_rate_per_s(self) -> float:
        return self.total_profit / self.horizon_s

    @property
    def events_per_s(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s else 0.0

    @property
    def mean_edge_active(self) -> float:
        return self.edge_active.time_average(self.horizon_s)

    @property
    def mean_rrb_utilization(self) -> float:
        return self.rrb_utilization.time_average(self.horizon_s)


class StreamDispatcher:
    """Event router shared by :func:`run_stream` and the asyncio service.

    Feed it the tape's events (via :meth:`events` so the rescratch mode
    can pre-buffer them) one at a time through :meth:`dispatch`, then
    call :meth:`finish` for the outcome.
    """

    def __init__(
        self,
        tape: ChurnTape,
        *,
        mode: str = "incremental",
        shards: int = 1,
        kernel: str = "auto",
        policy: MatchingPolicy | None = None,
        scan_cadence: int = 1024,
        series_stride: int = 1,
    ) -> None:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown stream mode {mode!r}; choose one of {MODES}"
            )
        if kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown matching kernel {kernel!r}; "
                f"choose one of {KERNELS}"
            )
        if shards <= 0:
            raise ConfigurationError(f"shards must be > 0, got {shards}")
        if series_stride <= 0:
            raise ConfigurationError(
                f"series_stride must be > 0, got {series_stride}"
            )
        self.mode = mode
        self.shards = shards
        self.kernel = kernel
        self._tape = tape
        self._series_stride = series_stride
        frame = tape.frame
        config = frame.config
        if policy is None:
            policy = DMRAPolicy(pricing=frame.pricing, rho=config.rho)

        # Route by arrival position: the shard index per arrival ue_id,
        # vectorized once over the frame's position scatter.
        if shards > 1:
            nx, ny, _bounds = plan_tiles(frame.region, shards)
            bs_xy = np.asarray(
                [bs.position.as_tuple() for bs in frame.base_stations]
            ).reshape(-1, 2)
            bs_shard = assign_shards(bs_xy, frame.region, nx, ny)
            ue_xy = np.asarray(
                [p.as_tuple() for p in frame.ue_positions]
            ).reshape(-1, 2)
            self._arrival_shard = assign_shards(
                ue_xy, frame.region, nx, ny
            )
        else:
            bs_shard = np.zeros(len(frame.base_stations), dtype=np.int64)
            self._arrival_shard = None

        self._event_source: Iterator[StreamEvent] | None = None
        populations: list[list] = [[] for _ in range(shards)]
        if mode == "rescratch":
            # The oracle needs each shard's full tape population up
            # front (its monolithic network) — deliberately O(arrivals)
            # in memory, unlike the engine under test.
            buffered = list(tape.events())
            for event in buffered:
                if event.kind is EventKind.ARRIVAL:
                    populations[self._shard_of_arrival(event.ue_id)].append(
                        event.ue
                    )
            self._event_source = iter(buffered)
        else:
            self._event_source = tape.events()

        budget = config.link_budget()
        rate_model = config.rate_model_fn()
        pricing = frame.pricing
        self._engines: list[_ShardEngineBase] = []
        for shard_id in range(shards):
            shard_bs = tuple(
                bs
                for bs, owner in zip(frame.base_stations, bs_shard)
                if owner == shard_id
            )
            common = dict(
                shard_id=shard_id,
                providers=frame.providers,
                base_stations=shard_bs,
                services=frame.services,
                region=frame.region,
                coverage_radius_m=config.coverage_radius_m,
                budget=budget,
                rate_model=rate_model,
                pricing=pricing,
                policy=policy,
            )
            if mode == "incremental":
                self._engines.append(IncrementalShardEngine(
                    kernel=kernel, scan_cadence=scan_cadence, **common
                ))
            else:
                # Full O(#BS) conservation scans on every event: the
                # reference trades speed for maximum auditability.
                self._engines.append(RescratchShardEngine(
                    population=populations[shard_id], scan_cadence=1,
                    **common,
                ))
        self.total_rrbs = sum(e.total_rrbs for e in self._engines)

        self._now: float | None = None
        self._touched: set[int] = set()
        self._shard_of: dict[int, int] = {}
        self._timestamps = 0
        self.events_processed = 0
        self.arrivals = 0
        self.departures = 0
        self.moves = 0
        self.shard_events = [0] * shards
        self.peak_edge_active = 0
        self.peak_active = 0
        self._edge_series = StepSeries("edge_active")
        self._cloud_series = StepSeries("cloud_active")
        self._util_series = StepSeries("rrb_utilization")
        self._edge_series.record(0.0, 0.0)
        self._cloud_series.record(0.0, 0.0)
        self._util_series.record(0.0, 0.0)
        self._finished = False

    # ------------------------------------------------------------------

    def events(self) -> Iterator[StreamEvent]:
        """The tape's events, exactly once, in tape order."""
        source = self._event_source
        if source is None:
            raise ConfigurationError("dispatcher events already consumed")
        self._event_source = None
        return source

    def dispatch(self, event: StreamEvent) -> None:
        """Apply one tape event (events must arrive in tape order)."""
        time_s = event.time_s
        if self._now is not None and time_s < self._now:
            raise AllocationError(
                f"event at {time_s} after timestamp {self._now}: the "
                f"tape must be non-decreasing in time"
            )
        if self._now is None:
            self._now = time_s
        elif time_s > self._now:
            self._flush_group()
            self._now = time_s
        self.events_processed += 1
        kind = event.kind
        if kind is EventKind.ARRIVAL:
            shard = self._shard_of_arrival(event.ue_id)
            self.arrivals += 1
            self._shard_of[event.ue_id] = shard
            self._engines[shard].stage(event.ue)
        elif kind is EventKind.DEPARTURE:
            shard = self._shard_of.pop(event.ue_id, None)
            if shard is None:
                raise AllocationError(
                    f"departure for UE {event.ue_id} which never arrived"
                )
            self.departures += 1
            self._engines[shard].depart(event.ue_id)
        else:
            shard = self._shard_of.get(event.ue_id)
            if shard is None:
                raise AllocationError(
                    f"move for UE {event.ue_id} which never arrived"
                )
            self.moves += 1
            self._engines[shard].move(event.ue_id, event.position)
        self.shard_events[shard] += 1
        self._touched.add(shard)

    def finish(self, wall_s: float = 0.0) -> StreamOutcome:
        """Flush the final group and assemble the outcome."""
        if self._finished:
            raise ConfigurationError("dispatcher already finished")
        self._finished = True
        if self._now is not None:
            self._flush_group()
        engines = self._engines
        cancelled = sum(e.cancelled for e in engines)
        displaced = sum(e.displaced for e in engines)
        admitted_edge = sum(e.admitted_edge for e in engines)
        admitted_cloud = sum(e.admitted_cloud for e in engines)
        readmitted = sum(e.readmitted for e in engines)
        total_profit = sum(e.total_profit for e in engines)
        profit_by_sp: dict[int, float] = {}
        for engine in engines:
            for sp_id, profit in engine.profit_by_sp.items():
                profit_by_sp[sp_id] = profit_by_sp.get(sp_id, 0.0) + profit

        digest = hashlib.sha256()
        for engine in engines:
            for item in sorted(engine.grant_items()):
                digest.update(f"g:{item[0]}:{item[1]}:{item[2]};".encode())
            for ue_id in sorted(engine.cloud_ids):
                digest.update(f"c:{ue_id};".encode())
        digest.update(
            f"p:{total_profit:.17g};ae:{admitted_edge};"
            f"ac:{admitted_cloud};r:{readmitted};".encode()
        )

        tel = get_telemetry()
        tel.count("stream.events", self.events_processed)
        tel.count("stream.arrivals", self.arrivals)
        tel.count("stream.departures", self.departures)
        tel.count("stream.moves", self.moves)
        tel.count("stream.cancelled", cancelled)
        tel.count("stream.admitted_edge", admitted_edge)
        tel.count("stream.admitted_cloud", admitted_cloud)
        tel.count("stream.readmitted", readmitted)
        tel.count("stream.displaced", displaced)
        # Flat entity-id counters; the metrics layer folds each family
        # into labeled samples.
        for sp_id in sorted(profit_by_sp):
            tel.count(f"stream.sp_profit.{sp_id}", profit_by_sp[sp_id])
        for shard_id, count in enumerate(self.shard_events):
            tel.count(f"stream.shard_events.{shard_id}", count)

        return StreamOutcome(
            mode=self.mode,
            shards=self.shards,
            kernel=self.kernel,
            horizon_s=self._tape.stream.horizon_s,
            events_processed=self.events_processed,
            arrivals=self.arrivals,
            departures=self.departures,
            moves=self.moves,
            cancelled=cancelled,
            admitted_edge=admitted_edge,
            admitted_cloud=admitted_cloud,
            readmitted=readmitted,
            displaced=displaced,
            total_profit=total_profit,
            profit_by_sp=profit_by_sp,
            edge_active=self._edge_series,
            cloud_active=self._cloud_series,
            rrb_utilization=self._util_series,
            shard_events=tuple(self.shard_events),
            peak_edge_active=self.peak_edge_active,
            peak_active=self.peak_active,
            wall_s=wall_s,
            digest=digest.hexdigest(),
        )

    # ------------------------------------------------------------------

    def _shard_of_arrival(self, ue_id: int) -> int:
        if self._arrival_shard is None:
            return 0
        return int(self._arrival_shard[ue_id])

    def _flush_group(self) -> None:
        now = self._now
        for shard in sorted(self._touched):
            self._engines[shard].flush(now)
        self._touched.clear()
        self._timestamps += 1
        edge = sum(e.edge_active for e in self._engines)
        cloud = sum(e.cloud_active for e in self._engines)
        used = sum(e.used_rrbs for e in self._engines)
        util = used / self.total_rrbs if self.total_rrbs else 0.0
        if edge > self.peak_edge_active:
            self.peak_edge_active = edge
        if edge + cloud > self.peak_active:
            self.peak_active = edge + cloud
        if self._timestamps % self._series_stride == 0:
            self._edge_series.record(now, float(edge))
            self._cloud_series.record(now, float(cloud))
            self._util_series.record(now, util)
        tel = get_telemetry()
        tel.gauge("stream.edge_active", edge)
        tel.gauge("stream.cloud_active", cloud)
        tel.gauge("stream.rrb_utilization", util)


def run_stream(
    config: ScenarioConfig,
    stream: StreamConfig,
    seed: int,
    *,
    mode: str = "incremental",
    shards: int = 1,
    kernel: str = "auto",
    policy: MatchingPolicy | None = None,
    scan_cadence: int = 1024,
    series_stride: int = 1,
) -> StreamOutcome:
    """Replay one churn tape synchronously and return the outcome.

    Deterministic given ``(config, stream, seed)`` and the allocation
    options; the asyncio service (:func:`repro.stream.service.serve_stream`)
    produces the identical outcome for the identical inputs.
    """
    tape = open_tape(config, stream, seed)
    return replay_tape(
        tape,
        mode=mode,
        shards=shards,
        kernel=kernel,
        policy=policy,
        scan_cadence=scan_cadence,
        series_stride=series_stride,
    )


def replay_tape(
    tape: ChurnTape,
    *,
    mode: str = "incremental",
    shards: int = 1,
    kernel: str = "auto",
    policy: MatchingPolicy | None = None,
    scan_cadence: int = 1024,
    series_stride: int = 1,
) -> StreamOutcome:
    """Drive one already-open tape through a dispatcher."""
    tel = get_telemetry()
    with tel.span(
        "stream.run", mode=mode, shards=shards, kernel=kernel,
        arrivals=tape.arrival_count,
    ) as run_span:
        dispatcher = StreamDispatcher(
            tape,
            mode=mode,
            shards=shards,
            kernel=kernel,
            policy=policy,
            scan_cadence=scan_cadence,
            series_stride=series_stride,
        )
        start = time.perf_counter()
        if tel.enabled:
            # Per-event latency histogram, same families the asyncio
            # service records, so replay and serve traces compare.
            clock = time.perf_counter
            for event in dispatcher.events():
                t0 = clock()
                dispatcher.dispatch(event)
                tel.observe(
                    f"stream.event_latency_s.{event.kind.name.lower()}",
                    clock() - t0,
                )
        else:
            for event in dispatcher.events():
                dispatcher.dispatch(event)
        outcome = dispatcher.finish(wall_s=time.perf_counter() - start)
        run_span.set(
            events=outcome.events_processed,
            admitted_edge=outcome.admitted_edge,
            admitted_cloud=outcome.admitted_cloud,
            readmitted=outcome.readmitted,
        )
    return outcome
