"""Lazy churn tapes: the exogenous event stream the allocator consumes.

A tape fixes *every* event before the allocator runs: arrival times
come from the configured :class:`~repro.dynamics.arrivals.ArrivalProcess`,
each task's holding time is drawn **at arrival** (so its departure time
does not depend on where — or whether — it was admitted), and an
optional fraction of tasks makes one mid-life move to a fresh uniform
position.  Exogenous departures are what make the incremental engine
and the from-scratch reference exactly comparable: both consume the
identical event sequence, so any outcome divergence is an allocator
bug, not a feedback effect.

UE entities are materialized lazily in ``ue_id`` order through
:meth:`~repro.scale.streaming.ScenarioFrame.iter_ue_chunks` (the PR 5
machinery), so a tape over millions of arrivals holds O(active set +
one chunk) entities plus O(arrivals) scalar timestamps — never the full
population.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.dynamics.arrivals import (
    ArrivalProcess,
    ExponentialHolding,
    HoldingTimeModel,
    PoissonArrivals,
)
from repro.dynamics.events import EventKind
from repro.errors import ConfigurationError
from repro.model.geometry import Point
from repro.scale.streaming import ScenarioFrame, build_scenario_frame
from repro.sim.config import ScenarioConfig
from repro.stream.events import StreamEvent

__all__ = ["StreamConfig", "ChurnTape", "open_tape"]


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of one churn tape, layered on a static :class:`ScenarioConfig`."""

    horizon_s: float = 600.0
    arrivals: ArrivalProcess = field(
        default_factory=lambda: PoissonArrivals(rate_per_s=2.0)
    )
    holding: HoldingTimeModel = field(
        default_factory=lambda: ExponentialHolding(mean_s=120.0)
    )
    #: Probability that a task makes one mid-life move to a fresh
    #: uniform position (a mobility delta on the tape).
    move_fraction: float = 0.0
    #: UE entities materialized per frame chunk.
    chunk_size: int = 4096

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon_s}"
            )
        if not 0.0 <= self.move_fraction <= 1.0:
            raise ConfigurationError(
                f"move_fraction must be in [0, 1], got {self.move_fraction}"
            )
        if self.chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be > 0, got {self.chunk_size}"
            )


@dataclass
class ChurnTape:
    """One fully determined event tape plus the scenario skeleton.

    ``frame`` carries the BS-side deployment; :meth:`events` yields the
    tape in non-decreasing time order (one-shot — it consumes the
    frame's UE generator).  Events at equal timestamps are adjacent,
    with arrivals preceding the departures/moves that share their
    instant, so consumers can group batches by exact timestamp.
    """

    frame: ScenarioFrame
    stream: StreamConfig
    seed: int
    #: Scalar schedules as float64 arrays — 8 bytes per arrival, so a
    #: million-arrival tape stays well inside the bench's RSS cap.
    arrival_times: np.ndarray
    holding_times: np.ndarray
    move_times: dict[int, float]
    move_positions: dict[int, Point]

    @property
    def arrival_count(self) -> int:
        return len(self.arrival_times)

    @property
    def event_count(self) -> int:
        """Total events on the tape (arrivals + departures + moves)."""
        return 2 * len(self.arrival_times) + len(self.move_times)

    def events(self) -> Iterator[StreamEvent]:
        """Yield the tape lazily, materializing UE chunks on demand."""
        heap: list[tuple[float, int, StreamEvent]] = []
        sequence = 0
        chunk_size = self.stream.chunk_size
        chunks = self.frame.iter_ue_chunks(chunk_size)
        buffer: deque = deque()
        ue_id = 0
        for start in range(0, len(self.arrival_times), chunk_size):
            times = self.arrival_times[start:start + chunk_size].tolist()
            holdings = self.holding_times[start:start + chunk_size].tolist()
            for time_s, holding_s in zip(times, holdings):
                if not buffer:
                    buffer.extend(next(chunks))
                ue = buffer.popleft()
                while heap and heap[0][0] < time_s:
                    yield heapq.heappop(heap)[2]
                yield StreamEvent(
                    time_s=time_s, kind=EventKind.ARRIVAL, ue_id=ue_id,
                    ue=ue,
                )
                depart_s = time_s + holding_s
                move_s = self.move_times.get(ue_id)
                if move_s is not None and time_s < move_s < depart_s:
                    heapq.heappush(heap, (move_s, sequence, StreamEvent(
                        time_s=move_s, kind=EventKind.MOVE, ue_id=ue_id,
                        position=self.move_positions[ue_id],
                    )))
                    sequence += 1
                heapq.heappush(heap, (depart_s, sequence, StreamEvent(
                    time_s=depart_s, kind=EventKind.DEPARTURE, ue_id=ue_id,
                )))
                sequence += 1
                ue_id += 1
        while heap:
            yield heapq.heappop(heap)[2]


def open_tape(
    config: ScenarioConfig, stream: StreamConfig, seed: int
) -> ChurnTape:
    """Draw one churn tape: skeleton, arrival/holding/move schedule.

    Deterministic given ``(config, stream, seed)``.  RNG layout:
    ``seed`` drives the event schedule (arrival times, then per arrival
    its holding time and optional move draw, in arrival order);
    ``seed + 1`` drives the scenario frame — mirroring
    :func:`~repro.dynamics.online.run_online`'s split, so the same seed
    sees the same deployment in both runners.
    """
    rng = np.random.default_rng(seed)
    arrival_times = np.asarray(
        stream.arrivals.arrival_times(stream.horizon_s, rng), dtype=float
    )
    frame = build_scenario_frame(
        config, ue_count=len(arrival_times), seed=seed + 1
    )
    holding_times = []
    move_times: dict[int, float] = {}
    move_positions: dict[int, Point] = {}
    region = frame.region
    for ue_id, time_s in enumerate(arrival_times.tolist()):
        holding = stream.holding.holding_time_s(rng)
        holding_times.append(holding)
        if stream.move_fraction and rng.random() < stream.move_fraction:
            move_s = time_s + rng.random() * holding
            move_times[ue_id] = move_s
            move_positions[ue_id] = Point(
                x=rng.uniform(region.x_min, region.x_max),
                y=rng.uniform(region.y_min, region.y_max),
            )
    return ChurnTape(
        frame=frame,
        stream=stream,
        seed=seed,
        arrival_times=arrival_times,
        holding_times=np.asarray(holding_times, dtype=float),
        move_times=move_times,
        move_positions=move_positions,
    )
