"""Asyncio service loop around the stream dispatcher.

``serve_stream`` splits a tape replay into a producer coroutine (reads
the tape) and a consumer coroutine (dispatches into the per-shard
engines), joined by a **bounded** :class:`asyncio.Queue`.  When the
allocator falls behind, ``await queue.put`` suspends the producer — the
tape is the backpressure boundary, so memory stays bounded by the queue
size no matter how bursty the event stream is.  In production the
producer would read a socket or broker; here it reads the deterministic
tape, which is what lets the service be regression-tested: for the same
``(config, stream, seed)`` the service's outcome — including its
bit-exact digest — equals :func:`repro.stream.runner.run_stream`'s.

Queue depth is observed as a real labeled gauge (``stream.queue_depth``)
and a depth histogram (``stream.queue_depth_hist``), so it reaches
metrics documents and ``dmra trace diff``; the peak also remains a span
attribute for the trace report.  Depth depends on scheduler
interleaving, so the gated incremental-vs-rescratch CI diff keeps
comparing the *outcome-only* metrics documents, where these families
never appear.  Per-event dispatch latency lands in the
``stream.event_latency_s.<kind>`` histograms (one per event kind,
folded into one ``event``-labeled Prometheus family).
"""

from __future__ import annotations

import asyncio
import time

from repro.core.matching import MatchingPolicy
from repro.errors import ConfigurationError
from repro.obs import DEFAULT_DEPTH_BOUNDS, get_telemetry
from repro.sim.config import ScenarioConfig
from repro.stream.runner import StreamDispatcher, StreamOutcome
from repro.stream.tape import StreamConfig, open_tape

__all__ = ["serve_stream", "serve_stream_async"]

#: Producer/consumer handoff buffer (events). Small by design: the
#: point of the service loop is backpressure, not buffering.
DEFAULT_QUEUE_MAXSIZE = 256

_STOP = object()


async def serve_stream_async(
    config: ScenarioConfig,
    stream: StreamConfig,
    seed: int,
    *,
    mode: str = "incremental",
    shards: int = 1,
    kernel: str = "auto",
    policy: MatchingPolicy | None = None,
    scan_cadence: int = 1024,
    series_stride: int = 1,
    queue_maxsize: int = DEFAULT_QUEUE_MAXSIZE,
    flight=None,
) -> StreamOutcome:
    """Replay one churn tape through the backpressured service loop.

    ``flight`` optionally takes a
    :class:`~repro.obs.telemetry.FlightRecorder`; the loop notes every
    batch boundary and completion into its ring for postmortems.
    """
    if queue_maxsize <= 0:
        raise ConfigurationError(
            f"queue_maxsize must be > 0, got {queue_maxsize}"
        )
    tel = get_telemetry()
    with tel.span(
        "stream.serve", mode=mode, shards=shards, kernel=kernel,
        queue_maxsize=queue_maxsize,
    ) as serve_span:
        tape = open_tape(config, stream, seed)
        dispatcher = StreamDispatcher(
            tape,
            mode=mode,
            shards=shards,
            kernel=kernel,
            policy=policy,
            scan_cadence=scan_cadence,
            series_stride=series_stride,
        )
        queue: asyncio.Queue = asyncio.Queue(maxsize=queue_maxsize)
        max_depth = 0

        async def produce() -> None:
            # A full queue suspends this coroutine — backpressure.
            for event in dispatcher.events():
                await queue.put(event)
            await queue.put(_STOP)

        recording = tel.enabled
        clock = time.perf_counter

        async def consume() -> None:
            nonlocal max_depth
            while True:
                event = await queue.get()
                depth = queue.qsize() + 1
                if depth > max_depth:
                    max_depth = depth
                if event is _STOP:
                    return
                if recording:
                    tel.gauge("stream.queue_depth", depth)
                    tel.observe(
                        "stream.queue_depth_hist", depth,
                        bounds=DEFAULT_DEPTH_BOUNDS,
                    )
                    t0 = clock()
                    dispatcher.dispatch(event)
                    tel.observe(
                        "stream.event_latency_s."
                        f"{event.kind.name.lower()}",
                        clock() - t0,
                    )
                else:
                    dispatcher.dispatch(event)
                if flight is not None:
                    flight.note(
                        "event", kind=event.kind.name.lower(),
                        ue=event.ue_id, t=event.time_s, depth=depth,
                    )
                # Dispatch is synchronous CPU work; yield so the
                # producer (or a surrounding application) can run
                # between events even when the queue never fills.
                await asyncio.sleep(0)

        start = time.perf_counter()
        await asyncio.gather(produce(), consume())
        outcome = dispatcher.finish(wall_s=time.perf_counter() - start)
        if flight is not None:
            flight.note(
                "finish", events=outcome.events_processed,
                queue_max_depth=max_depth,
            )
        serve_span.set(
            events=outcome.events_processed,
            queue_max_depth=max_depth,
            admitted_edge=outcome.admitted_edge,
            admitted_cloud=outcome.admitted_cloud,
            readmitted=outcome.readmitted,
        )
    return outcome


def serve_stream(
    config: ScenarioConfig,
    stream: StreamConfig,
    seed: int,
    **kwargs,
) -> StreamOutcome:
    """Synchronous entry point: run the service loop to completion."""
    return asyncio.run(
        serve_stream_async(config, stream, seed, **kwargs)
    )
