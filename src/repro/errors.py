"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from runtime
allocation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario or model was configured with invalid parameters."""


class CapacityError(ReproError):
    """A resource ledger was asked to grant more than it holds."""


class UnknownEntityError(ReproError):
    """A lookup referenced a UE, BS, SP, or service that does not exist."""


class InfeasibleLinkError(ReproError):
    """A radio computation was requested for a link that cannot carry data.

    Raised, for example, when the achievable per-RRB rate between a UE and
    a BS is zero (the UE is out of any practical range) and the caller asked
    for the number of RRBs needed to reach a target rate.
    """


class TariffViolationError(ReproError):
    """SP tariffs violate the profitability constraint (Eq. 16 of the paper).

    The paper requires ``m_k > p_{i,u} + m_k^o`` for every SP ``k`` and every
    feasible UE--BS link, i.e. serving a subscriber at the edge must always
    be profitable for its SP.
    """


class AllocationError(ReproError):
    """An allocator produced or was given an inconsistent association."""
