"""Arrival traces: replayable and time-varying workloads.

Two capabilities beyond the stationary Poisson process:

* **replay** — :class:`ArrivalTrace` wraps explicit timestamps (e.g.
  exported from a production system or a previous run) and plugs into
  :class:`~repro.dynamics.online.OnlineConfig` like any arrival
  process; CSV read/write round-trips traces through disk;
* **diurnal load** — :class:`DiurnalArrivals` generates a
  non-homogeneous Poisson process whose rate follows a sinusoidal
  day curve (off-peak ``base_rate``, midday ``peak_rate``), via the
  standard thinning construction.  This is the workload shape MEC
  deployments actually see, and it exercises the online simulator's
  transient behaviour rather than just its steady state.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalTrace",
    "DiurnalArrivals",
    "read_trace_csv",
    "write_trace_csv",
]


@dataclass(frozen=True)
class ArrivalTrace:
    """A fixed sequence of arrival timestamps (seconds, sorted)."""

    times_s: tuple[float, ...]

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times_s)
        if any(t < 0 for t in times):
            raise ConfigurationError("trace timestamps must be >= 0")
        if list(times) != sorted(times):
            raise ConfigurationError("trace timestamps must be sorted")
        object.__setattr__(self, "times_s", times)

    def arrival_times(
        self, horizon_s: float, rng: np.random.Generator
    ) -> list[float]:
        """Timestamps within the horizon (the RNG is unused — replay)."""
        if horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {horizon_s}"
            )
        return [t for t in self.times_s if t < horizon_s]

    @property
    def count(self) -> int:
        return len(self.times_s)

    @property
    def duration_s(self) -> float:
        return self.times_s[-1] if self.times_s else 0.0


@dataclass(frozen=True, slots=True)
class DiurnalArrivals:
    """Non-homogeneous Poisson arrivals with a sinusoidal day profile.

    The instantaneous rate is::

        lambda(t) = base + (peak - base) * (1 - cos(2 pi t / period)) / 2

    i.e. ``base_rate_per_s`` at t = 0 (night) rising to
    ``peak_rate_per_s`` at half-period (midday).  Sampled by thinning a
    homogeneous process at the peak rate, the textbook-exact method.
    """

    base_rate_per_s: float
    peak_rate_per_s: float
    period_s: float = 86_400.0

    def __post_init__(self) -> None:
        if self.base_rate_per_s < 0:
            raise ConfigurationError(
                f"base rate must be >= 0, got {self.base_rate_per_s}"
            )
        if self.peak_rate_per_s < self.base_rate_per_s:
            raise ConfigurationError(
                f"peak rate {self.peak_rate_per_s} must be >= base rate "
                f"{self.base_rate_per_s}"
            )
        if self.peak_rate_per_s <= 0:
            raise ConfigurationError("peak rate must be > 0")
        if self.period_s <= 0:
            raise ConfigurationError(
                f"period must be > 0, got {self.period_s}"
            )

    def rate_at(self, t_s: float) -> float:
        """The instantaneous arrival rate ``lambda(t)``."""
        phase = (1.0 - math.cos(2.0 * math.pi * t_s / self.period_s)) / 2.0
        return self.base_rate_per_s + (
            self.peak_rate_per_s - self.base_rate_per_s
        ) * phase

    def arrival_times(
        self, horizon_s: float, rng: np.random.Generator
    ) -> list[float]:
        """Thinning: homogeneous candidates at the peak rate, each kept
        with probability ``lambda(t) / peak``."""
        if horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {horizon_s}"
            )
        times: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.peak_rate_per_s))
            if t >= horizon_s:
                return times
            if rng.uniform() <= self.rate_at(t) / self.peak_rate_per_s:
                times.append(t)


def write_trace_csv(path: str | Path, times_s) -> Path:
    """Write arrival timestamps as single-column CSV."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_time_s"])
        for t in times_s:
            writer.writerow([f"{float(t):.6f}"])
    return target


def read_trace_csv(path: str | Path) -> ArrivalTrace:
    """Read a trace written by :func:`write_trace_csv`."""
    source = Path(path)
    try:
        with source.open(newline="") as handle:
            reader = csv.DictReader(handle)
            if (
                reader.fieldnames is None
                or "arrival_time_s" not in reader.fieldnames
            ):
                raise ConfigurationError(
                    f"{source}: missing 'arrival_time_s' column"
                )
            times = [float(row["arrival_time_s"]) for row in reader]
    except OSError as exc:
        raise ConfigurationError(f"cannot read {source}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"{source}: malformed timestamp ({exc})"
        ) from exc
    return ArrivalTrace(times_s=tuple(times))
