"""Analytic Erlang-B blocking, for cross-validating the online simulator.

Approximating the whole edge as one M/M/c/c loss system — ``c`` parallel
"task slots" (aggregate RRBs over the typical per-task RRB demand),
Poisson arrivals of intensity λ, mean holding time T — Erlang's B
formula predicts the blocking probability at offered load ``a = λT``:

    B(c, a) = (a^c / c!) / Σ_{k=0..c} a^k / k!

computed with the standard numerically-stable recurrence.  The edge is
*not* literally M/M/c/c (two resource types, spatial coverage, per-BS
pools), so the analytic value is a sanity anchor rather than ground
truth: the simulated curve should sit near it and share its shape,
which the validation tests assert.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["erlang_b_blocking", "edge_server_estimate"]


def erlang_b_blocking(servers: int, offered_erlangs: float) -> float:
    """Erlang-B blocking probability ``B(c, a)``.

    Uses the recurrence ``B_0 = 1``, ``B_k = a B_{k-1} / (k + a B_{k-1})``,
    which is stable for large ``c`` where factorials overflow.
    """
    if servers < 0:
        raise ConfigurationError(f"servers must be >= 0, got {servers}")
    if offered_erlangs < 0:
        raise ConfigurationError(
            f"offered load must be >= 0, got {offered_erlangs}"
        )
    if offered_erlangs == 0:
        return 0.0
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = (
            offered_erlangs * blocking / (k + offered_erlangs * blocking)
        )
    return blocking


def edge_server_estimate(network: MECNetwork, radio_map: RadioMap) -> int:
    """Equivalent server count ``c`` for the M/M/c/c approximation.

    Total RRBs across all BSs divided by the mean per-task RRB demand
    over the candidate links — how many typical tasks the radio pool
    holds concurrently.  (Compute capacity is much looser in the paper's
    parameterization, so radio defines ``c``.)
    """
    total_rrbs = sum(bs.rrb_capacity for bs in network.base_stations)
    demands = [link.rrbs_required for link in radio_map]
    if not demands:
        raise ConfigurationError(
            "radio map has no links; cannot estimate task size"
        )
    mean_demand = sum(demands) / len(demands)
    return max(1, int(total_rrbs / mean_demand))
