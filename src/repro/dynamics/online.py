"""The online (event-driven) DMRA simulation.

Static DMRA answers "given this batch of UEs, who goes where?".  The
online simulation answers the operational question behind §V's
motivation: tasks *arrive over time*, hold their resources for a task
duration, and depart — and the matching must keep adapting.  On every
arrival batch the incremental engine matches just the new tasks against
the remaining capacity (departures having returned resources to the
ledgers), exactly the "recalculate the preference relationship ...
during each iteration" behaviour the paper describes.

Outputs are operator metrics the static figures cannot express:
blocking probability, time-averaged edge occupancy and RRB utilization,
and profit throughput per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.compute.cru import LedgerPool
from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.core.dmra import DMRAPolicy
from repro.dynamics.arrivals import (
    ArrivalProcess,
    ExponentialHolding,
    HoldingTimeModel,
    PoissonArrivals,
)
from repro.dynamics.events import Event, EventKind, EventQueue
from repro.dynamics.timeseries import StepSeries
from repro.econ.accounting import marginal_profit
from repro.errors import AllocationError, ConfigurationError
from repro.obs.telemetry import get_telemetry
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["OnlineConfig", "OnlineOutcome", "run_online"]


@dataclass(frozen=True)
class OnlineConfig:
    """Dynamics knobs layered on top of a static :class:`ScenarioConfig`."""

    horizon_s: float = 600.0
    arrivals: ArrivalProcess = field(
        default_factory=lambda: PoissonArrivals(rate_per_s=2.0)
    )
    holding: HoldingTimeModel = field(
        default_factory=lambda: ExponentialHolding(mean_s=120.0)
    )

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon_s}"
            )


@dataclass(frozen=True)
class OnlineOutcome:
    """Everything measured over one online run."""

    scenario: Scenario
    events_processed: int
    admitted_edge: int
    admitted_cloud: int
    total_admitted_profit: float
    profit_by_sp: Mapping[int, float]
    edge_active: StepSeries
    cloud_active: StepSeries
    rrb_utilization: StepSeries
    horizon_s: float

    @property
    def arrivals(self) -> int:
        return self.admitted_edge + self.admitted_cloud

    @property
    def blocking_probability(self) -> float:
        """Fraction of tasks the edge could not absorb."""
        total = self.arrivals
        return self.admitted_cloud / total if total else 0.0

    @property
    def profit_rate_per_s(self) -> float:
        return self.total_admitted_profit / self.horizon_s

    @property
    def mean_edge_active(self) -> float:
        return self.edge_active.time_average(self.horizon_s)

    @property
    def mean_rrb_utilization(self) -> float:
        return self.rrb_utilization.time_average(self.horizon_s)


def run_online(
    config: ScenarioConfig,
    online: OnlineConfig,
    seed: int,
    policy: MatchingPolicy | None = None,
) -> OnlineOutcome:
    """Run one event-driven simulation.

    The static population (SPs, BSs, service catalog) comes from
    ``config``; arrival timestamps, task demands, and positions are
    drawn from ``seed``; each arriving UE is matched on arrival by the
    incremental engine under ``policy`` (DMRA by default) and departs
    after its holding time, returning its resources.
    """
    rng = np.random.default_rng(seed)
    arrival_times = online.arrivals.arrival_times(online.horizon_s, rng)
    scenario = build_scenario(
        config, ue_count=len(arrival_times), seed=seed + 1
    )
    if policy is None:
        policy = DMRAPolicy(pricing=scenario.pricing, rho=config.rho)
    # One engine for the whole run, deliberately: the engine memoizes
    # static preference components (e.g. DMRA's Eq. 17 price term) per
    # (UE, BS) pair across run() calls on the same network, so every
    # batch after the first matches against a warm cache.
    engine = IterativeMatchingEngine(policy)
    ledgers = LedgerPool(scenario.network.base_stations)
    total_rrbs = sum(
        bs.rrb_capacity for bs in scenario.network.base_stations
    )

    queue = EventQueue()
    for ue_id, time_s in enumerate(arrival_times):
        queue.push(Event(time_s=time_s, kind=EventKind.ARRIVAL, ue_id=ue_id))

    edge_active = StepSeries("edge_active")
    cloud_active = StepSeries("cloud_active")
    rrb_utilization = StepSeries("rrb_utilization")
    edge_active.record(0.0, 0.0)
    cloud_active.record(0.0, 0.0)
    rrb_utilization.record(0.0, 0.0)

    active_edge: set[int] = set()
    active_cloud: set[int] = set()
    serving_bs: dict[int, int] = {}
    rrbs_of_ue: dict[int, int] = {}
    used_rrbs = 0
    admitted_edge = 0
    admitted_cloud = 0
    total_profit = 0.0
    profit_by_sp: dict[int, float] = {
        sp.sp_id: 0.0 for sp in scenario.network.providers
    }
    events_processed = 0
    tel = get_telemetry()

    with tel.span(
        "online.run",
        horizon_s=online.horizon_s,
        arrivals=len(arrival_times),
    ) as run_span:
        while queue:
            now = queue.peek_time()
            # Drain every event sharing this timestamp; arrivals in the
            # same instant are matched as one batch (BatchArrivals
            # semantics).
            batch_arrivals: list[int] = []
            with tel.timer("online.batch"):
                while queue and queue.peek_time() == now:
                    event = queue.pop()
                    events_processed += 1
                    if event.kind is EventKind.ARRIVAL:
                        batch_arrivals.append(event.ue_id)
                    else:
                        used_rrbs -= _process_departure(
                            event.ue_id, ledgers, active_edge, active_cloud,
                            serving_bs, rrbs_of_ue,
                        )
                        tel.count("online.departures")
                        _check_ledger_conservation(
                            ledgers, total_rrbs, used_rrbs
                        )

                if batch_arrivals:
                    tel.gauge("online.batch_size", len(batch_arrivals))
                    assignment = engine.run(
                        scenario.network,
                        scenario.radio_map,
                        ledgers=ledgers,
                        ue_ids=batch_arrivals,
                    )
                    for grant in assignment.grants:
                        active_edge.add(grant.ue_id)
                        serving_bs[grant.ue_id] = grant.bs_id
                        rrbs_of_ue[grant.ue_id] = grant.rrbs
                        used_rrbs += grant.rrbs
                        admitted_edge += 1
                        profit = marginal_profit(
                            scenario.network, grant.ue_id, grant.bs_id,
                            scenario.pricing,
                        )
                        total_profit += profit
                        sp_id = scenario.network.user_equipment(
                            grant.ue_id
                        ).sp_id
                        profit_by_sp[sp_id] += profit
                        _schedule_departure(
                            queue, grant.ue_id, now, online.holding, rng
                        )
                    for ue_id in assignment.cloud_ue_ids:
                        active_cloud.add(ue_id)
                        admitted_cloud += 1
                        _schedule_departure(
                            queue, ue_id, now, online.holding, rng
                        )
                    _check_ledger_conservation(
                        ledgers, total_rrbs, used_rrbs
                    )

            edge_active.record(now, float(len(active_edge)))
            cloud_active.record(now, float(len(active_cloud)))
            rrb_utilization.record(now, used_rrbs / total_rrbs)
            tel.gauge("online.rrb_utilization", used_rrbs / total_rrbs)
            tel.gauge("online.edge_active", len(active_edge))
            tel.gauge("online.cloud_active", len(active_cloud))

        run_span.set(
            events=events_processed,
            admitted_edge=admitted_edge,
            admitted_cloud=admitted_cloud,
        )
        tel.count("online.events", events_processed)
        tel.count("online.admitted_edge", admitted_edge)
        tel.count("online.admitted_cloud", admitted_cloud)
        # Flat per-SP counters (entity id as last dot-segment); the
        # metrics layer folds them into one labeled family.
        for sp_id in sorted(profit_by_sp):
            tel.count(f"online.sp_profit.{sp_id}", profit_by_sp[sp_id])

    return OnlineOutcome(
        scenario=scenario,
        events_processed=events_processed,
        admitted_edge=admitted_edge,
        admitted_cloud=admitted_cloud,
        total_admitted_profit=total_profit,
        profit_by_sp=profit_by_sp,
        edge_active=edge_active,
        cloud_active=cloud_active,
        rrb_utilization=rrb_utilization,
        horizon_s=online.horizon_s,
    )


def _schedule_departure(
    queue: EventQueue,
    ue_id: int,
    now: float,
    holding: HoldingTimeModel,
    rng: np.random.Generator,
) -> None:
    queue.push(Event(
        time_s=now + holding.holding_time_s(rng),
        kind=EventKind.DEPARTURE,
        ue_id=ue_id,
    ))


def _process_departure(
    ue_id: int,
    ledgers: LedgerPool,
    active_edge: set[int],
    active_cloud: set[int],
    serving_bs: dict[int, int],
    rrbs_of_ue: dict[int, int],
) -> int:
    """Release one departing UE's resources; returns the edge RRBs freed.

    A departure for a UE that is active nowhere, or an edge departure
    with no recorded RRB grant, means the run's bookkeeping has drifted
    from the ledgers — raise instead of silently absorbing it.
    """
    if ue_id in active_edge:
        active_edge.remove(ue_id)
        ledgers.ledger(serving_bs.pop(ue_id)).release(ue_id)
        try:
            return rrbs_of_ue.pop(ue_id)
        except KeyError:
            raise AllocationError(
                f"edge departure for UE {ue_id} with no recorded RRB "
                f"grant (ledger drift)"
            ) from None
    if ue_id in active_cloud:
        active_cloud.remove(ue_id)
        return 0
    raise AllocationError(
        f"departure event for UE {ue_id}, which is active on neither "
        f"edge nor cloud (ledger drift)"
    )


def _check_ledger_conservation(
    ledgers: LedgerPool, total_rrbs: int, used_rrbs: int
) -> None:
    """Edge RRBs tracked in flight must equal the sum of live grants."""
    in_flight = total_rrbs - sum(
        ledger.remaining_rrbs for ledger in ledgers
    )
    if in_flight != used_rrbs:
        raise AllocationError(
            f"ledger conservation violated: ledgers hold {in_flight} "
            f"granted RRBs but the run tracks {used_rrbs} in flight"
        )
