"""The online (event-driven) DMRA simulation.

Static DMRA answers "given this batch of UEs, who goes where?".  The
online simulation answers the operational question behind §V's
motivation: tasks *arrive over time*, hold their resources for a task
duration, and depart — and the matching must keep adapting.  On every
arrival batch the incremental engine matches just the new tasks against
the remaining capacity (departures having returned resources to the
ledgers), exactly the "recalculate the preference relationship ...
during each iteration" behaviour the paper describes.

Memory stays bounded by the *active* set, not total arrivals: UE
entities are materialized lazily in arrival order through
:class:`~repro.scale.streaming.ScenarioFrame` chunks, and each arrival
batch is matched on a cheap per-batch network stamped out by
:class:`~repro.model.batchnet.BatchNetworkBuilder` (bit-identical
candidates/links to the monolithic construction).  Ledger conservation
is an O(1) tripwire per event (:class:`LedgerMonitor`); the full
O(#BS) scan runs on a cadence, or on every event under
``DMRA_DEBUG_LEDGER=1``.

Outputs are operator metrics the static figures cannot express:
blocking probability, time-averaged edge occupancy and RRB utilization,
and profit throughput per second.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.compute.cru import LedgerPool
from repro.core.matching import MatchingPolicy
from repro.core.dmra import DMRAPolicy
from repro.core.soa import make_matching_engine
from repro.dynamics.arrivals import (
    ArrivalProcess,
    ExponentialHolding,
    HoldingTimeModel,
    PoissonArrivals,
)
from repro.dynamics.events import Event, EventKind, EventQueue
from repro.dynamics.timeseries import StepSeries
from repro.econ.accounting import marginal_profit
from repro.errors import AllocationError, ConfigurationError
from repro.model.batchnet import BatchNetworkBuilder
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import build_radio_map
from repro.scale.streaming import build_scenario_frame
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario

__all__ = [
    "DEFAULT_LEDGER_SCAN_CADENCE",
    "LedgerMonitor",
    "OnlineConfig",
    "OnlineOutcome",
    "run_online",
]

#: Events between full O(#BS) ledger-conservation scans; the O(1)
#: in-flight comparison still runs on every event.
DEFAULT_LEDGER_SCAN_CADENCE = 1024


def _debug_ledger() -> bool:
    return os.environ.get("DMRA_DEBUG_LEDGER", "") not in ("", "0")


class LedgerMonitor:
    """O(1) per-event ledger-conservation tripwire.

    Tracks granted and freed RRBs as they happen (the incremental
    counterpart of summing every ledger's remainder), so the steady-state
    check is one integer comparison.  The full
    :func:`_check_ledger_conservation` scan — which audits the actual
    ledger objects — still runs every ``cadence`` checks, and on *every*
    check when ``DMRA_DEBUG_LEDGER=1``.
    """

    __slots__ = ("_ledgers", "_total_rrbs", "_cadence", "_in_flight",
                 "_since_scan")

    def __init__(
        self,
        ledgers: LedgerPool,
        total_rrbs: int,
        cadence: int = DEFAULT_LEDGER_SCAN_CADENCE,
    ) -> None:
        if cadence <= 0:
            raise ConfigurationError(
                f"scan cadence must be > 0, got {cadence}"
            )
        self._ledgers = ledgers
        self._total_rrbs = total_rrbs
        self._cadence = cadence
        self._in_flight = sum(
            grant.rrbs for grant in ledgers.all_grants()
        )
        self._since_scan = 0

    def on_grant(self, rrbs: int) -> None:
        """Record ``rrbs`` RRBs granted to an admitted task."""
        self._in_flight += rrbs

    def on_release(self, rrbs: int) -> None:
        """Record ``rrbs`` RRBs freed by a departing task."""
        self._in_flight -= rrbs

    def check(self, used_rrbs: int, force: bool = False) -> None:
        """O(1) comparison; full scan on cadence / debug / ``force``."""
        if self._in_flight != used_rrbs:
            raise AllocationError(
                f"ledger conservation violated: ledgers hold "
                f"{self._in_flight} granted RRBs but the run tracks "
                f"{used_rrbs} in flight"
            )
        self._since_scan += 1
        if force or _debug_ledger() or self._since_scan >= self._cadence:
            self._since_scan = 0
            _check_ledger_conservation(
                self._ledgers, self._total_rrbs, used_rrbs
            )


@dataclass(frozen=True)
class OnlineConfig:
    """Dynamics knobs layered on top of a static :class:`ScenarioConfig`."""

    horizon_s: float = 600.0
    arrivals: ArrivalProcess = field(
        default_factory=lambda: PoissonArrivals(rate_per_s=2.0)
    )
    holding: HoldingTimeModel = field(
        default_factory=lambda: ExponentialHolding(mean_s=120.0)
    )

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon_s}"
            )


@dataclass(frozen=True)
class OnlineOutcome:
    """Everything measured over one online run.

    ``scenario`` is ``None`` since the lazy-arrival rewrite: the run
    never materializes a monolithic :class:`Scenario`, which is what
    bounds its memory by the active set.
    """

    scenario: Scenario | None
    events_processed: int
    admitted_edge: int
    admitted_cloud: int
    total_admitted_profit: float
    profit_by_sp: Mapping[int, float]
    edge_active: StepSeries
    cloud_active: StepSeries
    rrb_utilization: StepSeries
    horizon_s: float

    @property
    def arrivals(self) -> int:
        return self.admitted_edge + self.admitted_cloud

    @property
    def blocking_probability(self) -> float:
        """Fraction of tasks the edge could not absorb."""
        total = self.arrivals
        return self.admitted_cloud / total if total else 0.0

    @property
    def profit_rate_per_s(self) -> float:
        return self.total_admitted_profit / self.horizon_s

    @property
    def mean_edge_active(self) -> float:
        return self.edge_active.time_average(self.horizon_s)

    @property
    def mean_rrb_utilization(self) -> float:
        return self.rrb_utilization.time_average(self.horizon_s)


def run_online(
    config: ScenarioConfig,
    online: OnlineConfig,
    seed: int,
    policy: MatchingPolicy | None = None,
    kernel: str = "object",
) -> OnlineOutcome:
    """Run one event-driven simulation.

    The static population (SPs, BSs, service catalog) comes from
    ``config``; arrival timestamps, task demands, and positions are
    drawn from ``seed``; each arriving UE is matched on arrival by the
    incremental engine under ``policy`` (DMRA by default) and departs
    after its holding time, returning its resources.

    ``kernel`` selects the matching implementation per
    :func:`~repro.core.soa.make_matching_engine` — ``"object"`` (the
    default, and the bit-parity reference), ``"soa"``, or ``"auto"``.
    """
    rng = np.random.default_rng(seed)
    arrival_times = online.arrivals.arrival_times(online.horizon_s, rng)
    frame = build_scenario_frame(
        config, ue_count=len(arrival_times), seed=seed + 1
    )
    if policy is None:
        policy = DMRAPolicy(pricing=frame.pricing, rho=config.rho)
    # One engine for the whole run; per-batch networks mean its static
    # caches reset each batch, but every cached value would have been
    # recomputed anyway (new UEs each batch).
    engine = make_matching_engine(policy, kernel=kernel)
    builder = BatchNetworkBuilder(
        providers=frame.providers,
        base_stations=frame.base_stations,
        services=frame.services,
        region=frame.region,
        coverage_radius_m=config.coverage_radius_m,
    )
    budget = config.link_budget()
    rate_model = config.rate_model_fn()
    pricing = frame.pricing
    ledgers = LedgerPool(frame.base_stations)
    total_rrbs = sum(bs.rrb_capacity for bs in frame.base_stations)
    monitor = LedgerMonitor(ledgers, total_rrbs)

    # Departures only; arrivals are merged in lazily from the sorted
    # timestamp array, so the queue holds O(active set) events.
    queue = EventQueue()
    chunks = frame.iter_ue_chunks()
    buffer: deque = deque()
    arrival_index = 0
    n_arrivals = len(arrival_times)

    edge_active = StepSeries("edge_active")
    cloud_active = StepSeries("cloud_active")
    rrb_utilization = StepSeries("rrb_utilization")
    edge_active.record(0.0, 0.0)
    cloud_active.record(0.0, 0.0)
    rrb_utilization.record(0.0, 0.0)

    active_edge: set[int] = set()
    active_cloud: set[int] = set()
    serving_bs: dict[int, int] = {}
    rrbs_of_ue: dict[int, int] = {}
    used_rrbs = 0
    admitted_edge = 0
    admitted_cloud = 0
    total_profit = 0.0
    profit_by_sp: dict[int, float] = {
        sp.sp_id: 0.0 for sp in frame.providers
    }
    events_processed = 0
    tel = get_telemetry()

    with tel.span(
        "online.run",
        horizon_s=online.horizon_s,
        arrivals=n_arrivals,
    ) as run_span:
        while arrival_index < n_arrivals or queue:
            if arrival_index < n_arrivals:
                next_arrival = arrival_times[arrival_index]
                queue_time = queue.peek_time()
                now = (
                    next_arrival
                    if queue_time is None or next_arrival <= queue_time
                    else queue_time
                )
            else:
                now = queue.peek_time()
            # Drain every event sharing this timestamp; arrivals in the
            # same instant are matched as one batch (BatchArrivals
            # semantics) and precede same-instant departures, matching
            # the historical queue order.
            batch: list = []
            with tel.timer("online.batch"):
                while (
                    arrival_index < n_arrivals
                    and arrival_times[arrival_index] == now
                ):
                    if not buffer:
                        buffer.extend(next(chunks))
                    batch.append(buffer.popleft())
                    arrival_index += 1
                    events_processed += 1
                while queue and queue.peek_time() == now:
                    event = queue.pop()
                    events_processed += 1
                    freed = _process_departure(
                        event.ue_id, ledgers, active_edge, active_cloud,
                        serving_bs, rrbs_of_ue,
                    )
                    used_rrbs -= freed
                    monitor.on_release(freed)
                    tel.count("online.departures")
                    monitor.check(used_rrbs)

                if batch:
                    tel.gauge("online.batch_size", len(batch))
                    network = builder.network_for(batch)
                    radio_map = build_radio_map(
                        network, budget, rate_model=rate_model
                    )
                    assignment = engine.run(
                        network,
                        radio_map,
                        ledgers=ledgers,
                        ue_ids=[ue.ue_id for ue in batch],
                    )
                    sp_of = {ue.ue_id: ue.sp_id for ue in batch}
                    for grant in assignment.grants:
                        active_edge.add(grant.ue_id)
                        serving_bs[grant.ue_id] = grant.bs_id
                        rrbs_of_ue[grant.ue_id] = grant.rrbs
                        used_rrbs += grant.rrbs
                        monitor.on_grant(grant.rrbs)
                        admitted_edge += 1
                        profit = marginal_profit(
                            network, grant.ue_id, grant.bs_id, pricing
                        )
                        total_profit += profit
                        profit_by_sp[sp_of[grant.ue_id]] += profit
                        _schedule_departure(
                            queue, grant.ue_id, now, online.holding, rng
                        )
                    for ue_id in assignment.cloud_ue_ids:
                        active_cloud.add(ue_id)
                        admitted_cloud += 1
                        _schedule_departure(
                            queue, ue_id, now, online.holding, rng
                        )
                    monitor.check(used_rrbs)

            edge_active.record(now, float(len(active_edge)))
            cloud_active.record(now, float(len(active_cloud)))
            rrb_utilization.record(now, used_rrbs / total_rrbs)
            tel.gauge("online.rrb_utilization", used_rrbs / total_rrbs)
            tel.gauge("online.edge_active", len(active_edge))
            tel.gauge("online.cloud_active", len(active_cloud))

        run_span.set(
            events=events_processed,
            admitted_edge=admitted_edge,
            admitted_cloud=admitted_cloud,
        )
        tel.count("online.events", events_processed)
        tel.count("online.admitted_edge", admitted_edge)
        tel.count("online.admitted_cloud", admitted_cloud)
        # Flat per-SP counters (entity id as last dot-segment); the
        # metrics layer folds them into one labeled family.
        for sp_id in sorted(profit_by_sp):
            tel.count(f"online.sp_profit.{sp_id}", profit_by_sp[sp_id])

    return OnlineOutcome(
        scenario=None,
        events_processed=events_processed,
        admitted_edge=admitted_edge,
        admitted_cloud=admitted_cloud,
        total_admitted_profit=total_profit,
        profit_by_sp=profit_by_sp,
        edge_active=edge_active,
        cloud_active=cloud_active,
        rrb_utilization=rrb_utilization,
        horizon_s=online.horizon_s,
    )


def _schedule_departure(
    queue: EventQueue,
    ue_id: int,
    now: float,
    holding: HoldingTimeModel,
    rng: np.random.Generator,
) -> None:
    queue.push(Event(
        time_s=now + holding.holding_time_s(rng),
        kind=EventKind.DEPARTURE,
        ue_id=ue_id,
    ))


def _process_departure(
    ue_id: int,
    ledgers: LedgerPool,
    active_edge: set[int],
    active_cloud: set[int],
    serving_bs: dict[int, int],
    rrbs_of_ue: dict[int, int],
) -> int:
    """Release one departing UE's resources; returns the edge RRBs freed.

    A departure for a UE that is active nowhere, an edge departure with
    no recorded RRB grant, or a released grant whose size disagrees with
    the run's record, means the run's bookkeeping has drifted from the
    ledgers — raise instead of silently absorbing it.
    """
    if ue_id in active_edge:
        active_edge.remove(ue_id)
        grant = ledgers.ledger(serving_bs.pop(ue_id)).release(ue_id)
        try:
            recorded = rrbs_of_ue.pop(ue_id)
        except KeyError:
            raise AllocationError(
                f"edge departure for UE {ue_id} with no recorded RRB "
                f"grant (ledger drift)"
            ) from None
        if grant.rrbs != recorded:
            raise AllocationError(
                f"ledger drift: UE {ue_id} released {grant.rrbs} RRBs "
                f"but the run recorded {recorded}"
            )
        return grant.rrbs
    if ue_id in active_cloud:
        active_cloud.remove(ue_id)
        return 0
    raise AllocationError(
        f"departure event for UE {ue_id}, which is active on neither "
        f"edge nor cloud (ledger drift)"
    )


def _check_ledger_conservation(
    ledgers: LedgerPool, total_rrbs: int, used_rrbs: int
) -> None:
    """Edge RRBs tracked in flight must equal the sum of live grants."""
    in_flight = total_rrbs - sum(
        ledger.remaining_rrbs for ledger in ledgers
    )
    if in_flight != used_rrbs:
        raise AllocationError(
            f"ledger conservation violated: ledgers hold {in_flight} "
            f"granted RRBs but the run tracks {used_rrbs} in flight"
        )
