"""Time-series recording for the online simulation.

Piecewise-constant series: a sample ``(t, v)`` means the value was ``v``
from ``t`` until the next sample.  That matches how event-driven state
evolves and makes the time average exact rather than sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["StepSeries"]


@dataclass
class StepSeries:
    """A piecewise-constant time series built by appending samples."""

    name: str
    _times: list[float] = field(default_factory=list)
    _values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The dataclass constructor accepts _times/_values directly;
        # hold them to the same invariants record() enforces, otherwise
        # time_average silently returns garbage (negative weights,
        # zip truncation) on a malformed series.
        if len(self._times) != len(self._values):
            raise ConfigurationError(
                f"{self.name}: {len(self._times)} timestamps but "
                f"{len(self._values)} values"
            )
        for earlier, later in zip(self._times, self._times[1:]):
            if later <= earlier:
                raise ConfigurationError(
                    f"{self.name}: timestamps must be strictly "
                    f"increasing, got {earlier} then {later}"
                )

    def record(self, time_s: float, value: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self._times and time_s < self._times[-1]:
            raise ConfigurationError(
                f"{self.name}: time went backwards "
                f"({time_s} < {self._times[-1]})"
            )
        if self._times and time_s == self._times[-1]:
            # Same-instant update: the later write wins (event batches).
            self._values[-1] = value
            return
        self._times.append(time_s)
        self._values.append(value)

    @property
    def samples(self) -> tuple[tuple[float, float], ...]:
        return tuple(zip(self._times, self._values))

    @property
    def last_value(self) -> float:
        if not self._values:
            raise ConfigurationError(f"{self.name}: series is empty")
        return self._values[-1]

    @property
    def peak(self) -> float:
        if not self._values:
            raise ConfigurationError(f"{self.name}: series is empty")
        return max(self._values)

    def time_average(self, until_s: float) -> float:
        """Exact time-weighted mean over ``[first sample, until_s]``."""
        if not self._times:
            raise ConfigurationError(f"{self.name}: series is empty")
        if until_s < self._times[0]:
            raise ConfigurationError(
                f"{self.name}: until={until_s} precedes first sample"
            )
        if until_s == self._times[0]:
            return self._values[0]
        total = 0.0
        for index, (t, v) in enumerate(zip(self._times, self._values)):
            t_next = (
                self._times[index + 1]
                if index + 1 < len(self._times)
                else until_s
            )
            t_next = min(t_next, until_s)
            if t_next > t:
                total += v * (t_next - t)
            if t_next >= until_s:
                break
        return total / (until_s - self._times[0])

    def __len__(self) -> int:
        return len(self._times)
