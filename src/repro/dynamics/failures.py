"""Failure injection: BS outages and DMRA's recovery behaviour.

A resilience question the paper leaves open: when a base station dies,
what happens to the UEs it was serving?  Under DMRA the answer is
mechanical — the orphaned UEs re-enter the matching against the
surviving BSs' residual capacity — and this module measures how well
that works: how many orphans the surviving edge absorbs, how much
profit the outage costs, and how both degrade as more of the
infrastructure fails.

The survivor network keeps its ledgers: UEs that were on healthy BSs
are *not* disturbed (their grants carry over), exactly like the sticky
mobility repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.compute.cru import Grant, LedgerPool
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.econ.accounting import marginal_profit
from repro.errors import ConfigurationError, UnknownEntityError
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import build_radio_map
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["FailureOutcome", "inject_bs_failures"]


@dataclass(frozen=True)
class FailureOutcome:
    """Before/after picture of one BS-outage event."""

    failed_bs_ids: tuple[int, ...]
    orphaned_ues: int
    recovered_ues: int
    dropped_to_cloud: int
    profit_before: float
    profit_after: float
    edge_served_before: int
    edge_served_after: int
    carried_grants: tuple[Grant, ...] = ()
    repair_grants: tuple[Grant, ...] = ()

    @property
    def recovery_fraction(self) -> float:
        """Share of orphaned UEs the surviving edge re-absorbed."""
        if self.orphaned_ues == 0:
            return 1.0
        return self.recovered_ues / self.orphaned_ues

    @property
    def profit_loss(self) -> float:
        return self.profit_before - self.profit_after

    @property
    def profit_loss_fraction(self) -> float:
        """Profit loss as a signed fraction of the pre-failure magnitude.

        Normalized by ``abs(profit_before)`` so the sign always means
        the same thing (positive = the outage cost profit), including
        in negative-profit scenarios.
        """
        if self.profit_before == 0:
            return 0.0
        return self.profit_loss / abs(self.profit_before)


def inject_bs_failures(
    config: ScenarioConfig,
    ue_count: int,
    failed_bs_ids: Sequence[int],
    seed: int,
    policy_factory=None,
) -> FailureOutcome:
    """Allocate, kill the given BSs, repair, and report the damage.

    Steps: (1) build the scenario and run DMRA normally; (2) remove the
    failed BSs from the network; (3) carry every surviving grant over
    into fresh ledgers; (4) re-match only the orphaned UEs (plus any
    previously cloud-bound ones, who get another chance now as they
    would in a live system) with the incremental engine.
    """
    scenario = build_scenario(config, ue_count, seed)
    failed = tuple(sorted(set(failed_bs_ids)))
    known = {bs.bs_id for bs in scenario.network.base_stations}
    unknown = set(failed) - known
    if unknown:
        raise UnknownEntityError(
            f"cannot fail unknown BS ids {sorted(unknown)}"
        )
    if len(failed) >= len(known):
        raise ConfigurationError("cannot fail every BS in the network")

    def make_policy(current: Scenario) -> MatchingPolicy:
        if policy_factory is not None:
            return policy_factory(current)
        return DMRAPolicy(pricing=current.pricing, rho=config.rho)

    tel = get_telemetry()
    with tel.span(
        "failures.inject", failed=len(failed), ues=ue_count
    ) as span:
        engine = IterativeMatchingEngine(make_policy(scenario))
        before = engine.run(scenario.network, scenario.radio_map)
        profit_before = _total_profit(scenario, before.grants)

        survivors = [
            bs
            for bs in scenario.network.base_stations
            if bs.bs_id not in failed
        ]
        degraded_network = MECNetwork(
            providers=scenario.network.providers,
            base_stations=survivors,
            user_equipments=scenario.network.user_equipments,
            services=scenario.network.services,
            region=scenario.network.region,
            coverage_radius_m=scenario.network.coverage_radius_m,
        )
        budget = config.link_budget()
        degraded_map = build_radio_map(
            degraded_network, budget, rate_model=config.rate_model_fn()
        )
        degraded = Scenario(
            config=config,
            network=degraded_network,
            radio_map=degraded_map,
            seed=seed,
        )

        ledgers = LedgerPool(survivors)
        orphans: list[int] = []
        carried_grants = []
        for grant in before.grants:
            if grant.bs_id in failed:
                orphans.append(grant.ue_id)
                continue
            ledgers.ledger(grant.bs_id).grant(
                grant.ue_id, grant.service_id, grant.crus, grant.rrbs
            )
            carried_grants.append(grant)

        rematch_pool = sorted(set(orphans) | set(before.cloud_ue_ids))
        engine = IterativeMatchingEngine(make_policy(degraded))
        repair = engine.run(
            degraded_network, degraded_map, ledgers=ledgers,
            ue_ids=rematch_pool,
        )

        orphan_set = set(orphans)
        recovered = sum(1 for g in repair.grants if g.ue_id in orphan_set)
        dropped = len(orphan_set) - recovered
        after_grants = carried_grants + list(repair.grants)
        profit_after = _total_profit(degraded, after_grants)

        span.set(
            orphaned=len(orphan_set),
            recovered=recovered,
            repair_rounds=repair.rounds,
        )
        tel.count("failures.orphaned", len(orphan_set))
        tel.count("failures.recovered", recovered)
        tel.count("failures.dropped_to_cloud", dropped)

        return FailureOutcome(
            failed_bs_ids=failed,
            orphaned_ues=len(orphan_set),
            recovered_ues=recovered,
            dropped_to_cloud=dropped,
            profit_before=profit_before,
            profit_after=profit_after,
            edge_served_before=before.edge_served_count,
            edge_served_after=len(after_grants),
            carried_grants=tuple(carried_grants),
            repair_grants=tuple(repair.grants),
        )


def _total_profit(scenario: Scenario, grants: Iterable) -> float:
    return sum(
        marginal_profit(
            scenario.network, grant.ue_id, grant.bs_id, scenario.pricing
        )
        for grant in grants
    )
