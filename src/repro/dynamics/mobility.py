"""Mobility: moving UEs, re-association, and handovers.

The paper distinguishes its matching from the classic stable-marriage
problem precisely because "the preference list of UEs and BSs vary over
time" (§V).  This module makes that concrete: UEs move, link qualities
and prices change, and each epoch the allocation is repaired — kept
where it still holds, re-matched where it broke.

Epoch semantics (deterministic given a seed):

1. every UE moves per the mobility model;
2. the network and radio map are brought up to date at the new
   positions — by default *incrementally*: only the distance rows,
   candidate sets, and radio-map columns of UEs that actually moved
   (beyond ``position_epsilon_m``) are recomputed, instead of
   reconstructing :class:`MECNetwork` and the full map from scratch
   (``incremental=False`` keeps the full-rebuild path, which produces
   identical assignments — pinned by the parity tests);
3. each previously served UE keeps its BS if the BS still covers it and
   its (possibly changed) RRB demand still fits — otherwise it joins
   the re-match pool, together with every previously cloud-bound UE;
4. the incremental DMRA engine matches the pool against the remaining
   capacity.

A *handover* is a UE that was edge-served and ends the epoch on a
different BS; a *drop to cloud* is a previously served UE the edge can
no longer hold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Protocol

import numpy as np

from repro.compute.cru import LedgerPool
from repro.core.dmra import DMRAPolicy
from repro.core.matching import IterativeMatchingEngine, MatchingPolicy
from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import build_radio_map
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario

__all__ = [
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "EpochRecord",
    "MobilityOutcome",
    "run_mobility",
]


class MobilityModel(Protocol):
    """Moves one UE for one epoch."""

    def step(
        self,
        ue_id: int,
        position: Point,
        dt_s: float,
        region: Rectangle,
        rng: np.random.Generator,
    ) -> Point:
        """The UE's position after one epoch of duration ``dt_s``."""
        ...


@dataclass(frozen=True, slots=True)
class RandomWalk:
    """Each epoch: a uniformly random direction at a fixed speed."""

    speed_mps: float = 1.5  # pedestrian

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ConfigurationError(
                f"speed must be >= 0, got {self.speed_mps}"
            )

    def step(
        self,
        ue_id: int,
        position: Point,
        dt_s: float,
        region: Rectangle,
        rng: np.random.Generator,
    ) -> Point:
        """Move ``speed * dt`` in a fresh random direction, clipped."""
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        distance = self.speed_mps * dt_s
        x = float(np.clip(
            position.x + distance * math.cos(angle),
            region.x_min, region.x_max,
        ))
        y = float(np.clip(
            position.y + distance * math.sin(angle),
            region.y_min, region.y_max,
        ))
        return Point(x, y)


class RandomWaypoint:
    """Classic random-waypoint: walk toward a target, then pick a new one.

    Stateful per UE (current target and speed), reproducible because all
    draws come from the simulation's generator in a fixed UE order.
    """

    def __init__(
        self, speed_min_mps: float = 0.5, speed_max_mps: float = 3.0
    ) -> None:
        if speed_min_mps <= 0 or speed_max_mps < speed_min_mps:
            raise ConfigurationError(
                f"invalid speed range [{speed_min_mps}, {speed_max_mps}]"
            )
        self.speed_min_mps = speed_min_mps
        self.speed_max_mps = speed_max_mps
        self._targets: dict[int, tuple[Point, float]] = {}

    def step(
        self,
        ue_id: int,
        position: Point,
        dt_s: float,
        region: Rectangle,
        rng: np.random.Generator,
    ) -> Point:
        """Advance toward the current waypoint, re-rolling on arrival."""
        target, speed = self._targets.get(ue_id, (None, 0.0))
        if target is None or position.distance_to(target) < 1.0:
            (target,) = region.sample_uniform(rng, 1)
            speed = float(rng.uniform(self.speed_min_mps, self.speed_max_mps))
            self._targets[ue_id] = (target, speed)
        remaining = position.distance_to(target)
        travel = min(speed * dt_s, remaining)
        if remaining == 0.0:
            return position
        fraction = travel / remaining
        return Point(
            position.x + (target.x - position.x) * fraction,
            position.y + (target.y - position.y) * fraction,
        )


@dataclass(frozen=True, slots=True)
class EpochRecord:
    """What happened in one mobility epoch."""

    epoch: int
    edge_served: int
    cloud: int
    handovers: int
    drops_to_cloud: int
    recovered_from_cloud: int
    total_profit: float


@dataclass(frozen=True)
class MobilityOutcome:
    """All epochs of one mobility run."""

    records: tuple[EpochRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ConfigurationError("mobility run produced no epochs")

    @property
    def epoch_count(self) -> int:
        return len(self.records)

    @property
    def total_handovers(self) -> int:
        return sum(r.handovers for r in self.records)

    @property
    def handover_rate(self) -> float:
        """Handovers per UE per epoch."""
        ue_count = self.records[0].edge_served + self.records[0].cloud
        if ue_count == 0:
            return 0.0
        return self.total_handovers / (ue_count * self.epoch_count)

    @property
    def mean_profit(self) -> float:
        return sum(r.total_profit for r in self.records) / self.epoch_count

    @property
    def mean_edge_served(self) -> float:
        return sum(r.edge_served for r in self.records) / self.epoch_count


def run_mobility(
    config: ScenarioConfig,
    ue_count: int,
    epochs: int,
    epoch_duration_s: float,
    seed: int,
    mobility: MobilityModel | None = None,
    policy_factory=None,
    sticky: bool = True,
    incremental: bool = True,
    position_epsilon_m: float = 1e-9,
    rebuild_fraction: float = 0.5,
) -> MobilityOutcome:
    """Run an epoch-based mobility simulation.

    ``policy_factory(scenario) -> MatchingPolicy`` lets callers swap the
    repair policy; the default is DMRA with the config's pricing/rho.

    ``sticky=True`` (default) keeps a feasible association across epochs
    and only re-matches broken ones — few handovers, but profit decays
    as UEs drift from their once-optimal BSs.  ``sticky=False``
    re-optimizes everyone every epoch — maximal profit, maximal
    handovers.  The pair quantifies the re-association trade-off the
    paper's "best association changes over time" remark alludes to.

    ``incremental=True`` (default) patches the network and radio map in
    place of a full rebuild: only UEs displaced by more than
    ``position_epsilon_m`` get their distance rows, candidate sets, and
    link columns recomputed.  Both modes consume the RNG identically
    and yield identical assignments; ``incremental=False`` keeps the
    full-rebuild path as the executable specification.

    ``rebuild_fraction`` is the displaced-fraction crossover: once at
    least that fraction of UEs moved in an epoch, incremental patching
    cannot win (it re-does most of the work *plus* the stitching), so
    the epoch takes the full-rebuild route directly.  Models where
    everyone moves every epoch (random walk) therefore no longer pay an
    incremental penalty; models with mostly idle UEs still patch.
    """
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be > 0, got {epochs}")
    if epoch_duration_s <= 0:
        raise ConfigurationError(
            f"epoch duration must be > 0, got {epoch_duration_s}"
        )
    if position_epsilon_m < 0:
        raise ConfigurationError(
            f"position_epsilon_m must be >= 0, got {position_epsilon_m}"
        )
    if rebuild_fraction <= 0:
        raise ConfigurationError(
            f"rebuild_fraction must be > 0, got {rebuild_fraction}"
        )
    if mobility is None:
        mobility = RandomWalk()
    rng = np.random.default_rng(seed)
    scenario = build_scenario(config, ue_count, seed)
    budget = config.link_budget()

    def make_policy(current: Scenario) -> MatchingPolicy:
        if policy_factory is not None:
            return policy_factory(current)
        return DMRAPolicy(pricing=current.pricing, rho=config.rho)

    # Epoch 0: the initial (static) allocation.
    engine = IterativeMatchingEngine(make_policy(scenario))
    assignment = engine.run(scenario.network, scenario.radio_map)
    serving: dict[int, int] = {
        g.ue_id: g.bs_id for g in assignment.grants
    }
    records = [
        EpochRecord(
            epoch=0,
            edge_served=assignment.edge_served_count,
            cloud=assignment.cloud_count,
            handovers=0,
            drops_to_cloud=0,
            recovered_from_cloud=0,
            total_profit=_profit_of(scenario, serving),
        )
    ]
    network = scenario.network
    radio_map = scenario.radio_map
    rate_model = config.rate_model_fn()

    tel = get_telemetry()
    for epoch in range(1, epochs + 1):
        # One mobility draw per UE in fixed order: both update modes
        # consume the RNG identically, keeping traces comparable.
        ues = network.user_equipments
        stepped = [
            mobility.step(
                ue.ue_id, ue.position, epoch_duration_s, network.region, rng
            )
            for ue in ues
        ]
        patch = incremental
        displaced_rows: np.ndarray | None = None
        if incremental:
            # Vectorized displacement test: one array pass instead of a
            # Python-level distance call per UE.
            old_xy = np.array(
                [(ue.position.x, ue.position.y) for ue in ues]
            )
            new_xy = np.array([(p.x, p.y) for p in stepped])
            delta = new_xy - old_xy
            moved_mask = (
                delta[:, 0] ** 2 + delta[:, 1] ** 2
                > position_epsilon_m * position_epsilon_m
            )
            displaced_count = int(moved_mask.sum())
            tel.gauge(
                "mobility.displaced_fraction",
                displaced_count / len(ues) if ues else 0.0,
            )
            if displaced_count > rebuild_fraction * len(ues):
                # Crossover: patching would redo most of the work plus
                # the stitching — take the full-rebuild route.
                patch = False
            else:
                displaced_rows = np.flatnonzero(moved_mask)
        if patch:
            assert displaced_rows is not None
            displaced = {
                ues[row].ue_id: stepped[row] for row in displaced_rows
            }
            network = network.with_moved_ues(
                displaced, rebuild_fraction=rebuild_fraction
            )
            radio_map = radio_map.with_updated_ues(
                network, budget, displaced.keys(), rate_model=rate_model,
                rebuild_fraction=rebuild_fraction,
            )
        else:
            moved = [
                replace(ue, position=stepped[row])
                for row, ue in enumerate(ues)
            ]
            network = MECNetwork(
                providers=network.providers,
                base_stations=network.base_stations,
                user_equipments=moved,
                services=network.services,
                region=network.region,
                coverage_radius_m=network.coverage_radius_m,
            )
            radio_map = build_radio_map(
                network, budget, rate_model=rate_model
            )
        current = Scenario(
            config=config, network=network, radio_map=radio_map, seed=seed
        )

        ledgers = LedgerPool(network.base_stations)
        rematch_pool: list[int] = []
        kept: dict[int, int] = {}
        for ue in network.user_equipments:
            prev_bs = serving.get(ue.ue_id)
            if prev_bs is None or not sticky:
                rematch_pool.append(ue.ue_id)
                continue
            still_candidate = prev_bs in network.candidate_base_stations(
                ue.ue_id
            )
            if still_candidate:
                rrbs = radio_map.link(ue.ue_id, prev_bs).rrbs_required
                ledger = ledgers.ledger(prev_bs)
                if ledger.can_grant(
                    ue.ue_id, ue.service_id, ue.cru_demand, rrbs
                ):
                    ledger.grant(ue.ue_id, ue.service_id, ue.cru_demand, rrbs)
                    kept[ue.ue_id] = prev_bs
                    continue
            rematch_pool.append(ue.ue_id)

        engine = IterativeMatchingEngine(make_policy(current))
        repair = engine.run(
            network, radio_map, ledgers=ledgers, ue_ids=rematch_pool
        )

        new_serving = dict(kept)
        handovers = 0
        drops = 0
        recovered = 0
        for grant in repair.grants:
            new_serving[grant.ue_id] = grant.bs_id
            prev = serving.get(grant.ue_id)
            if prev is None:
                recovered += 1
            elif prev != grant.bs_id:
                handovers += 1
        for ue_id in repair.cloud_ue_ids:
            if serving.get(ue_id) is not None:
                drops += 1

        serving = new_serving
        records.append(
            EpochRecord(
                epoch=epoch,
                edge_served=len(serving),
                cloud=network.ue_count - len(serving),
                handovers=handovers,
                drops_to_cloud=drops,
                recovered_from_cloud=recovered,
                total_profit=_profit_of(current, serving),
            )
        )

    return MobilityOutcome(records=tuple(records))


def _profit_of(scenario: Scenario, serving: dict[int, int]) -> float:
    from repro.econ.accounting import marginal_profit

    return sum(
        marginal_profit(scenario.network, ue_id, bs_id, scenario.pricing)
        for ue_id, bs_id in serving.items()
    )
