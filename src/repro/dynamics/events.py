"""Discrete-event machinery for the online simulation.

A minimal, deterministic event queue: events are ordered by timestamp
with a monotonically increasing sequence number breaking ties, so two
runs over the same event set always pop in the same order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """What happened at an event timestamp."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    #: A mobility delta: the UE is still active but changed position.
    #: Only the streaming tape (:mod:`repro.stream`) emits these; the
    #: classic online queue never schedules them.
    MOVE = "move"


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence concerning one UE."""

    time_s: float
    kind: EventKind
    ue_id: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError(
                f"event time must be >= 0, got {self.time_s}"
            )


@dataclass
class EventQueue:
    """A deterministic min-heap of events."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _sequence: int = 0

    def push(self, event: Event) -> None:
        """Insert an event; equal timestamps pop in insertion order."""
        heapq.heappush(self._heap, (event.time_s, self._sequence, event))
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise ConfigurationError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float | None:
        """Timestamp of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
