"""Online dynamics: event-driven arrivals/departures over DMRA."""

from repro.dynamics.arrivals import (
    ArrivalProcess,
    BatchArrivals,
    DeterministicHolding,
    ExponentialHolding,
    HoldingTimeModel,
    PoissonArrivals,
)
from repro.dynamics.erlang import edge_server_estimate, erlang_b_blocking
from repro.dynamics.events import Event, EventKind, EventQueue
from repro.dynamics.failures import FailureOutcome, inject_bs_failures
from repro.dynamics.mobility import (
    EpochRecord,
    MobilityModel,
    MobilityOutcome,
    RandomWalk,
    RandomWaypoint,
    run_mobility,
)
from repro.dynamics.online import (
    LedgerMonitor,
    OnlineConfig,
    OnlineOutcome,
    run_online,
)
from repro.dynamics.timeseries import StepSeries
from repro.dynamics.trace import (
    ArrivalTrace,
    DiurnalArrivals,
    read_trace_csv,
    write_trace_csv,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalTrace",
    "DiurnalArrivals",
    "BatchArrivals",
    "DeterministicHolding",
    "EpochRecord",
    "edge_server_estimate",
    "erlang_b_blocking",
    "FailureOutcome",
    "Event",
    "EventKind",
    "EventQueue",
    "ExponentialHolding",
    "HoldingTimeModel",
    "LedgerMonitor",
    "MobilityModel",
    "MobilityOutcome",
    "OnlineConfig",
    "OnlineOutcome",
    "PoissonArrivals",
    "RandomWalk",
    "RandomWaypoint",
    "StepSeries",
    "inject_bs_failures",
    "read_trace_csv",
    "run_mobility",
    "run_online",
    "write_trace_csv",
]
