"""Arrival and holding-time processes for the online simulation.

The paper treats allocation as a batch problem over "a batch of UEs with
computing tasks" but motivates DMRA with the need to "adjust its
resource allocation strategy in real time to adapt to the changing
environment" (§V).  These processes generate that changing environment:
task arrivals over a time horizon and how long each admitted task holds
its resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BatchArrivals",
    "HoldingTimeModel",
    "ExponentialHolding",
    "DeterministicHolding",
]


class ArrivalProcess(Protocol):
    """Generates arrival timestamps over ``[0, horizon_s)``."""

    def arrival_times(
        self, horizon_s: float, rng: np.random.Generator
    ) -> list[float]:
        """Sorted arrival timestamps in ``[0, horizon_s)``."""
        ...


@dataclass(frozen=True, slots=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"arrival rate must be > 0, got {self.rate_per_s}"
            )

    def arrival_times(
        self, horizon_s: float, rng: np.random.Generator
    ) -> list[float]:
        """Exponential inter-arrival times accumulated up to the horizon."""
        if horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {horizon_s}"
            )
        times: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_per_s))
            if t >= horizon_s:
                return times
            times.append(t)


@dataclass(frozen=True, slots=True)
class BatchArrivals:
    """``batch_size`` simultaneous arrivals every ``interval_s``.

    The online analogue of the paper's batch framing: a burst of
    offloading requests lands together and the matching runs once per
    burst.
    """

    interval_s: float
    batch_size: int

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError(
                f"interval must be > 0, got {self.interval_s}"
            )
        if self.batch_size <= 0:
            raise ConfigurationError(
                f"batch size must be > 0, got {self.batch_size}"
            )

    def arrival_times(
        self, horizon_s: float, rng: np.random.Generator
    ) -> list[float]:
        """``batch_size`` identical timestamps every ``interval_s``."""
        if horizon_s <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {horizon_s}"
            )
        times: list[float] = []
        t = self.interval_s
        while t < horizon_s:
            times.extend([t] * self.batch_size)
            t += self.interval_s
        return times


class HoldingTimeModel(Protocol):
    """Draws how long an admitted task occupies its resources."""

    def holding_time_s(self, rng: np.random.Generator) -> float:
        """Duration one admitted task occupies its resources."""
        ...


@dataclass(frozen=True, slots=True)
class ExponentialHolding:
    """Memoryless task durations with the given mean."""

    mean_s: float

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ConfigurationError(
                f"mean holding time must be > 0, got {self.mean_s}"
            )

    def holding_time_s(self, rng: np.random.Generator) -> float:
        """One exponential draw with the configured mean."""
        return float(rng.exponential(self.mean_s))


@dataclass(frozen=True, slots=True)
class DeterministicHolding:
    """Every task holds resources for exactly ``duration_s``."""

    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"holding duration must be > 0, got {self.duration_s}"
            )

    def holding_time_s(self, rng: np.random.Generator) -> float:
        """The fixed duration (the RNG is accepted but unused)."""
        return self.duration_s
