"""Visualization: dependency-free SVG rendering of deployments."""

from repro.viz.svg import render_svg, write_svg

__all__ = ["render_svg", "write_svg"]
