"""SVG rendering of deployments and associations (no plotting deps).

The offline environment has no matplotlib; SVG needs none.  These
renderers emit standalone ``.svg`` documents: base stations as squares
colored by owning SP, UEs as dots (colored by subscription), association
lines from each served UE to its BS, and dashed coverage circles on
request.  Open the file in any browser.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.assignment import Assignment
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork

__all__ = ["render_svg", "write_svg"]

#: Color-blind-safe palette (Okabe-Ito), cycled over SP ids.
_SP_COLORS = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple-pink
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_CLOUD_COLOR = "#999999"


def _sp_color(sp_id: int) -> str:
    return _SP_COLORS[sp_id % len(_SP_COLORS)]


def render_svg(
    network: MECNetwork,
    assignment: Assignment | None = None,
    size_px: int = 800,
    show_coverage: bool = False,
    title: str | None = None,
) -> str:
    """Render the deployment to an SVG document string."""
    if size_px < 100:
        raise ConfigurationError(f"size_px must be >= 100, got {size_px}")
    region = network.region
    margin = 40
    scale = (size_px - 2 * margin) / max(region.width, region.height)

    def sx(x: float) -> float:
        return margin + (x - region.x_min) * scale

    def sy(y: float) -> float:
        # SVG's y axis points down; flip so north is up.
        return size_px - margin - (y - region.y_min) * scale

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{size_px}" height="{size_px}" '
        f'viewBox="0 0 {size_px} {size_px}">'
    )
    parts.append(
        f'<rect width="{size_px}" height="{size_px}" fill="#ffffff"/>'
    )
    parts.append(
        f'<rect x="{margin}" y="{margin}" '
        f'width="{region.width * scale:.1f}" '
        f'height="{region.height * scale:.1f}" '
        f'fill="none" stroke="#cccccc" stroke-width="1"/>'
    )
    if title:
        parts.append(
            f'<text x="{size_px / 2:.0f}" y="24" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{escape(title)}</text>'
        )

    if show_coverage:
        radius_px = network.coverage_radius_m * scale
        for bs in network.base_stations:
            parts.append(
                f'<circle cx="{sx(bs.position.x):.1f}" '
                f'cy="{sy(bs.position.y):.1f}" r="{radius_px:.1f}" '
                f'fill="none" stroke="{_sp_color(bs.sp_id)}" '
                f'stroke-width="0.5" stroke-dasharray="4 4" opacity="0.4"/>'
            )

    if assignment is not None:
        for grant in assignment.grants:
            ue = network.user_equipment(grant.ue_id)
            bs = network.base_station(grant.bs_id)
            same_sp = ue.sp_id == bs.sp_id
            parts.append(
                f'<line x1="{sx(ue.position.x):.1f}" '
                f'y1="{sy(ue.position.y):.1f}" '
                f'x2="{sx(bs.position.x):.1f}" '
                f'y2="{sy(bs.position.y):.1f}" '
                f'stroke="{_sp_color(ue.sp_id)}" '
                f'stroke-width="{1.0 if same_sp else 0.5}" '
                f'opacity="{0.55 if same_sp else 0.3}"/>'
            )

    for ue in network.user_equipments:
        cloud_bound = (
            assignment is not None and ue.ue_id in assignment.cloud_ue_ids
        )
        color = _CLOUD_COLOR if cloud_bound else _sp_color(ue.sp_id)
        parts.append(
            f'<circle cx="{sx(ue.position.x):.1f}" '
            f'cy="{sy(ue.position.y):.1f}" r="2.2" fill="{color}" '
            f'opacity="{0.5 if cloud_bound else 0.85}"/>'
        )

    half = 6.0
    for bs in network.base_stations:
        parts.append(
            f'<rect x="{sx(bs.position.x) - half:.1f}" '
            f'y="{sy(bs.position.y) - half:.1f}" '
            f'width="{2 * half}" height="{2 * half}" '
            f'fill="{_sp_color(bs.sp_id)}" stroke="#222222" '
            f'stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{sx(bs.position.x):.1f}" '
            f'y="{sy(bs.position.y) - half - 3:.1f}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="8" fill="#444444">{bs.bs_id}</text>'
        )

    # Legend: one swatch per SP plus the cloud marker.
    legend_y = size_px - 14
    legend_x = margin
    for sp in network.providers:
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" '
            f'height="10" fill="{_sp_color(sp.sp_id)}"/>'
        )
        label = escape(sp.name or f"SP-{sp.sp_id}")
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" '
            f'font-family="sans-serif" font-size="11">{label}</text>'
        )
        legend_x += 14 + 8 * max(4, len(label))
    if assignment is not None:
        parts.append(
            f'<circle cx="{legend_x + 5}" cy="{legend_y - 4}" r="3" '
            f'fill="{_CLOUD_COLOR}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" '
            f'font-family="sans-serif" font-size="11">cloud-forwarded</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    path: str | Path,
    network: MECNetwork,
    assignment: Assignment | None = None,
    **kwargs,
) -> Path:
    """Render and write an SVG file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_svg(network, assignment, **kwargs))
    return target
