"""One experiment definition per figure of the paper's evaluation.

Figs. 2--5 sweep the UE population for the three schemes under the four
(iota, placement) combinations; Fig. 6 sweeps DMRA's ``rho`` against
total profit and Fig. 7 against forwarded traffic load.  Every
experiment accepts a :class:`Scale` so the same definition serves quick
CI runs and full paper-fidelity reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.core.allocator import Allocator
from repro.core.dmra import DMRAAllocator
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics
from repro.sim.sweep import SweepResult, rho_sweep, ue_count_sweep

__all__ = ["Scale", "Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True, slots=True)
class Scale:
    """How big to run an experiment.

    ``paper()`` reproduces the published sweep; ``smoke()`` is a
    minutes-to-seconds reduction with the same structure, used by tests
    and quick CLI runs.
    """

    ue_counts: tuple[int, ...]
    rho_values: tuple[float, ...]
    rho_ue_count: int
    seeds: tuple[int, ...]

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            ue_counts=(400, 500, 600, 700, 800, 900),
            rho_values=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0),
            rho_ue_count=1000,
            seeds=(0, 1, 2, 3, 4),
        )

    @classmethod
    def smoke(cls) -> "Scale":
        return cls(
            ue_counts=(150, 300),
            rho_values=(0.0, 50.0, 500.0),
            rho_ue_count=300,
            seeds=(0,),
        )


@dataclass(frozen=True, slots=True)
class Experiment:
    """A runnable reproduction of one paper figure."""

    exp_id: str
    title: str
    x_label: str
    y_label: str
    run: Callable[..., SweepResult]
    """Called as ``run(scale, workers=N)``; ``workers`` controls how
    many processes the underlying sweep fans grid cells out to."""


def _scheme_factories(
    config: ScenarioConfig,
) -> Mapping[str, Callable[[float], Allocator]]:
    """The three compared schemes, with DMRA wired to the config's prices."""
    pricing = PaperPricing(
        base_price=config.base_price,
        cross_sp_markup=config.cross_sp_markup,
        distance_weight=config.distance_weight,
    )
    return {
        "dmra": lambda _x: DMRAAllocator(pricing=pricing, rho=config.rho),
        "dcsp": lambda _x: DCSPAllocator(),
        "nonco": lambda _x: NonCoAllocator(),
    }


def _profit(metrics: OutcomeMetrics) -> float:
    return metrics.total_profit


def _forwarded_mbps(metrics: OutcomeMetrics) -> float:
    return metrics.forwarded_traffic_bps / 1e6


def _profit_vs_ue_count(
    iota: float, placement: str
) -> Callable[[Scale], SweepResult]:
    def run(scale: Scale, workers: int | None = None) -> SweepResult:
        config = ScenarioConfig.paper(
            cross_sp_markup=iota, placement=placement
        )
        return ue_count_sweep(
            config=config,
            ue_counts=scale.ue_counts,
            seeds=scale.seeds,
            allocator_factories=_scheme_factories(config),
            metric=_profit,
            workers=workers,
        )

    return run


def _rho_experiment(
    iota: float, metric: Callable[[OutcomeMetrics], float]
) -> Callable[[Scale], SweepResult]:
    def run(scale: Scale, workers: int | None = None) -> SweepResult:
        config = ScenarioConfig.paper(cross_sp_markup=iota)
        pricing = PaperPricing(
            base_price=config.base_price,
            cross_sp_markup=config.cross_sp_markup,
            distance_weight=config.distance_weight,
        )
        return rho_sweep(
            config=config,
            rhos=scale.rho_values,
            ue_count=scale.rho_ue_count,
            seeds=scale.seeds,
            allocator_factory=lambda rho: DMRAAllocator(
                pricing=pricing, rho=rho
            ),
            metric=metric,
            workers=workers,
        )

    return run


EXPERIMENTS: dict[str, Experiment] = {
    "fig2": Experiment(
        exp_id="fig2",
        title="Fig. 2: total SP profit vs #UEs (iota=2, regular placement)",
        x_label="#UEs",
        y_label="total profit",
        run=_profit_vs_ue_count(iota=2.0, placement="regular"),
    ),
    "fig3": Experiment(
        exp_id="fig3",
        title="Fig. 3: total SP profit vs #UEs (iota=2, random placement)",
        x_label="#UEs",
        y_label="total profit",
        run=_profit_vs_ue_count(iota=2.0, placement="random"),
    ),
    "fig4": Experiment(
        exp_id="fig4",
        title="Fig. 4: total SP profit vs #UEs (iota=1.1, regular placement)",
        x_label="#UEs",
        y_label="total profit",
        run=_profit_vs_ue_count(iota=1.1, placement="regular"),
    ),
    "fig5": Experiment(
        exp_id="fig5",
        title="Fig. 5: total SP profit vs #UEs (iota=1.1, random placement)",
        x_label="#UEs",
        y_label="total profit",
        run=_profit_vs_ue_count(iota=1.1, placement="random"),
    ),
    "fig6": Experiment(
        exp_id="fig6",
        title="Fig. 6: total SP profit vs rho (iota=2, 1000 UEs, regular)",
        x_label="rho",
        y_label="total profit",
        run=_rho_experiment(iota=2.0, metric=_profit),
    ),
    "fig7": Experiment(
        exp_id="fig7",
        title=(
            "Fig. 7: total forwarded traffic vs rho "
            "(iota=1.1, 1000 UEs, regular)"
        ),
        x_label="rho",
        y_label="forwarded traffic (Mbps)",
        run=_rho_experiment(iota=1.1, metric=_forwarded_mbps),
    ),
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by figure id (e.g. ``"fig2"``)."""
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
