"""Experiment registry: one runnable definition per paper figure."""

from repro.experiments.ascii_plot import render_chart, render_table
from repro.experiments.extensions import (
    EXTENSIONS,
    all_experiments,
    get_extension,
)
from repro.experiments.figures import (
    EXPERIMENTS,
    Experiment,
    Scale,
    get_experiment,
)
from repro.experiments.io import read_series_csv, write_series_csv

__all__ = [
    "EXPERIMENTS",
    "EXTENSIONS",
    "Experiment",
    "Scale",
    "all_experiments",
    "get_experiment",
    "get_extension",
    "read_series_csv",
    "render_chart",
    "render_table",
    "write_series_csv",
]
