"""Terminal plotting: render result series as ASCII line charts.

The offline environment has no matplotlib, so figure reproductions are
emitted as CSV files plus these terminal charts.  The renderer scales a
set of series onto a character grid, one marker glyph per series, with
axis labels and a legend — enough to eyeball the shapes the paper's
figures show.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.results import Series

__all__ = ["render_chart", "render_table"]

_MARKERS = "ox+*#@%&"


def render_chart(
    series_list: Sequence[Series],
    title: str,
    x_label: str = "x",
    y_label: str = "y",
    width: int = 72,
    height: int = 20,
) -> str:
    """Render one or more series as a multi-line ASCII chart string."""
    if not series_list:
        raise ConfigurationError("need at least one series to plot")
    if width < 16 or height < 4:
        raise ConfigurationError("chart must be at least 16x4 characters")

    xs = sorted({x for series in series_list for x in series.xs})
    ys = [p.value.mean for series in series_list for p in series.points]
    if not xs or not ys:
        raise ConfigurationError("series contain no points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def to_row(y: float) -> int:
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for index, series in enumerate(series_list):
        marker = _MARKERS[index % len(_MARKERS)]
        previous: tuple[int, int] | None = None
        for point in sorted(series.points, key=lambda p: p.x):
            col, row = to_col(point.x), to_row(point.value.mean)
            if previous is not None:
                _draw_segment(grid, previous, (col, row))
            previous = (col, row)
        # Markers drawn last so they sit on top of connecting lines.
        for point in series.points:
            grid[to_row(point.value.mean)][to_col(point.x)] = marker

    lines = [title, f"  {y_label}"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:>10.4g} |"
        elif row_index == height - 1:
            label = f"{y_min:>10.4g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_min:<10.4g}{x_label:^{max(width - 20, 4)}}{x_max:>10.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {series.label}"
        for i, series in enumerate(series_list)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def _draw_segment(
    grid: list[list[str]], start: tuple[int, int], end: tuple[int, int]
) -> None:
    """Draw a light dotted line between two grid cells."""
    (c0, r0), (c1, r1) = start, end
    steps = max(abs(c1 - c0), abs(r1 - r0))
    for step in range(1, steps):
        col = round(c0 + (c1 - c0) * step / steps)
        row = round(r0 + (r1 - r0) * step / steps)
        if grid[row][col] == " ":
            grid[row][col] = "."


def render_table(
    series_list: Sequence[Series], x_header: str = "x"
) -> str:
    """Render series as an aligned text table (one row per x value)."""
    if not series_list:
        raise ConfigurationError("need at least one series to tabulate")
    xs = sorted({x for series in series_list for x in series.xs})
    headers = [x_header] + [s.label for s in series_list]
    rows: list[list[str]] = []
    for x in xs:
        row = [f"{x:g}"]
        for series in series_list:
            try:
                agg = series.value_at(x)
                row.append(f"{agg.mean:.1f} ± {agg.ci95_half_width:.1f}")
            except ConfigurationError:
                row.append("-")
        rows.append(row)
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rows))
        for col in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    separator = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), separator] + [fmt(r) for r in rows])
