"""CSV emission for figure reproductions.

Each experiment writes one CSV with the full aggregate per point (mean,
std, replication count, CI), so downstream plotting outside this offline
environment can regenerate publication-grade figures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.results import Series

__all__ = ["write_series_csv", "read_series_csv"]


def write_series_csv(
    path: str | Path, series_list: Sequence[Series], x_header: str = "x"
) -> Path:
    """Write series to ``path`` as tidy CSV (one row per series point)."""
    if not series_list:
        raise ConfigurationError("need at least one series to write")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [x_header, "series", "mean", "std", "count", "ci95_half_width"]
        )
        for series in series_list:
            for point in series.points:
                writer.writerow(
                    [
                        point.x,
                        series.label,
                        point.value.mean,
                        point.value.std,
                        point.value.count,
                        point.value.ci95_half_width,
                    ]
                )
    return target


def read_series_csv(path: str | Path, x_header: str = "x") -> list[Series]:
    """Read back series written by :func:`write_series_csv`."""
    from repro.sim.results import Aggregate, SeriesPoint

    source = Path(path)
    by_label: dict[str, list[SeriesPoint]] = {}
    with source.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or x_header not in reader.fieldnames:
            raise ConfigurationError(
                f"{source}: missing {x_header!r} column"
            )
        for row in reader:
            point = SeriesPoint(
                x=float(row[x_header]),
                value=Aggregate(
                    mean=float(row["mean"]),
                    std=float(row["std"]),
                    count=int(row["count"]),
                    ci95_half_width=float(row["ci95_half_width"]),
                ),
            )
            by_label.setdefault(row["series"], []).append(point)
    return [
        Series(label=label, points=tuple(points))
        for label, points in by_label.items()
    ]
