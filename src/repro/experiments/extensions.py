"""Extended experiments beyond the paper's six figures.

Each extension answers a question the paper raises but does not plot,
using the same experiment interface as the figure reproductions so the
CLI, CSV emission, and charts work uniformly:

* ``ext-iota``      — how the cross-SP markup shapes profit and same-SP
                      association (the mechanism behind Figs. 2 vs 4);
* ``ext-coverage``  — sensitivity to the coverage radius, the one
                      geometric constant the paper never states;
* ``ext-noise``     — profit under the paper's −170 dBm noise vs a
                      conventional thermal floor (DESIGN.md §3);
* ``ext-blocking``  — the online Erlang curve: blocking probability vs
                      offered load;
* ``ext-scaling``   — profit as deployment density grows (BSs per SP);
* ``ext-staleness`` — rounds-to-converge and profit under delayed
                      resource broadcasts (the gossip-delay ablation);
* ``ext-failures``  — profit retained as growing BS outages hit a
                      loaded deployment;
* ``ext-gap``       — the certified optimality gap (repro.bound
                      Lagrangian upper bound) and the repeated-auction
                      baseline's relative profit as the load grows.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.dcsp import DCSPAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.core.dmra import DMRAAllocator
from repro.dynamics.arrivals import ExponentialHolding, PoissonArrivals
from repro.dynamics.online import OnlineConfig, run_online
from repro.econ.pricing import PaperPricing
from repro.errors import ConfigurationError
from repro.experiments.figures import Experiment, Scale
from repro.radio.sinr import thermal_noise_dbm
from repro.sim.config import ScenarioConfig
from repro.sim.results import Series
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario
from repro.sim.sweep import SweepResult, SweepSpec, run_sweep

__all__ = ["EXTENSIONS", "get_extension", "all_experiments"]


def _pricing_for(config: ScenarioConfig) -> PaperPricing:
    return PaperPricing(
        base_price=config.base_price,
        cross_sp_markup=config.cross_sp_markup,
        distance_weight=config.distance_weight,
    )


def _run_ext_iota(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Profit and same-SP fraction as the markup iota grows."""
    iotas = (1.0, 1.5, 2.0, 3.0, 5.0)
    ue_count = max(scale.ue_counts)

    def scenario_factory(iota: float, seed: int):
        config = ScenarioConfig.paper(
            cross_sp_markup=iota,
            # Keep Eq. 16 satisfiable at the largest markup.
            sp_cru_price=15.0,
        )
        return build_scenario(config, ue_count, seed)

    profit_samples: list[tuple[float, list[float]]] = []
    same_sp_samples: list[tuple[float, list[float]]] = []
    for iota in iotas:
        profits: list[float] = []
        fractions: list[float] = []
        for seed in scale.seeds:
            scenario = scenario_factory(iota, seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
            profits.append(outcome.metrics.total_profit)
            fractions.append(outcome.metrics.same_sp_fraction * 100.0)
        profit_samples.append((iota, profits))
        same_sp_samples.append((iota, fractions))
    return SweepResult(series={
        "profit": Series.from_samples("profit", profit_samples),
        "same-sp %": Series.from_samples("same-sp %", same_sp_samples),
    })


def _run_ext_coverage(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """DMRA profit as the (unstated-by-the-paper) coverage radius varies."""
    radii = (300.0, 400.0, 500.0, 650.0, 800.0)
    ue_count = max(scale.ue_counts)

    def factory_for(radius: float):
        worst = 2.0 + 0.01 * radius  # iota*b + sigma*r*b at b=1
        return ScenarioConfig.paper(
            coverage_radius_m=radius, sp_cru_price=worst + 2.0
        )

    spec = SweepSpec(
        xs=tuple(radii),
        seeds=tuple(scale.seeds),
        scenario_factory=lambda radius, seed: build_scenario(
            factory_for(radius), ue_count, seed
        ),
        allocator_factories={
            "dmra": lambda radius: DMRAAllocator(
                pricing=_pricing_for(factory_for(radius))
            )
        },
        metric=lambda m: m.total_profit,
    )
    return run_sweep(spec, workers=workers)


def _run_ext_noise(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Edge-served UEs under the paper noise figure vs thermal noise."""
    configs = {
        "paper -170 dBm": ScenarioConfig.paper(),
        "thermal floor": ScenarioConfig.paper(
            noise_dbm=thermal_noise_dbm(180e3)
        ),
    }
    samples: dict[str, list[tuple[float, list[float]]]] = {
        label: [] for label in configs
    }
    for ue_count in scale.ue_counts:
        for label, config in configs.items():
            values = []
            for seed in scale.seeds:
                scenario = build_scenario(config, ue_count, seed)
                outcome = run_allocation(
                    scenario, DMRAAllocator(pricing=scenario.pricing)
                )
                values.append(float(outcome.metrics.edge_served))
            samples[label].append((float(ue_count), values))
    return SweepResult(series={
        label: Series.from_samples(label, data)
        for label, data in samples.items()
    })


def _run_ext_blocking(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Online blocking probability vs offered load (Erlang curve)."""
    holding_s = 150.0
    rates = (2.0, 4.0, 6.0, 8.0, 10.0, 12.0)
    config = ScenarioConfig.paper()
    samples: list[tuple[float, list[float]]] = []
    for rate in rates:
        values = []
        for seed in scale.seeds:
            online = OnlineConfig(
                horizon_s=300.0,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=holding_s),
            )
            outcome = run_online(config, online, seed=seed)
            values.append(outcome.blocking_probability * 100.0)
        samples.append((rate * holding_s, values))
    return SweepResult(series={
        "blocking %": Series.from_samples("blocking %", samples)
    })


def _run_ext_scaling(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Total profit as the deployment densifies (BSs per SP)."""
    bs_counts = (2, 3, 5, 8, 12)
    ue_count = max(scale.ue_counts)
    samples: dict[str, list[tuple[float, list[float]]]] = {
        "dmra": [], "dcsp": [], "nonco": [],
    }
    for bs_per_sp in bs_counts:
        config = ScenarioConfig.paper(
            bs_per_sp=bs_per_sp, placement="random"
        )
        per_alloc: dict[str, list[float]] = {k: [] for k in samples}
        for seed in scale.seeds:
            scenario = build_scenario(config, ue_count, seed)
            for name, allocator in (
                ("dmra", DMRAAllocator(pricing=scenario.pricing)),
                ("dcsp", DCSPAllocator()),
                ("nonco", NonCoAllocator()),
            ):
                outcome = run_allocation(scenario, allocator)
                per_alloc[name].append(outcome.metrics.total_profit)
        for name in samples:
            samples[name].append((float(bs_per_sp * 5), per_alloc[name]))
    return SweepResult(series={
        name: Series.from_samples(name, data)
        for name, data in samples.items()
    })


def _run_ext_staleness(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Convergence rounds and profit under delayed broadcasts."""
    from repro.core.agents import DecentralizedDMRAAllocator

    delays = (0, 1, 2, 3, 5, 8)
    ue_count = max(scale.ue_counts)
    config = ScenarioConfig.paper()
    rounds_samples: list[tuple[float, list[float]]] = []
    profit_samples: list[tuple[float, list[float]]] = []
    for delay in delays:
        rounds_values: list[float] = []
        profit_values: list[float] = []
        for seed in scale.seeds:
            scenario = build_scenario(config, ue_count, seed)
            outcome = run_allocation(
                scenario,
                DecentralizedDMRAAllocator(
                    pricing=scenario.pricing, broadcast_delay_rounds=delay
                ),
            )
            rounds_values.append(float(outcome.metrics.rounds))
            profit_values.append(outcome.metrics.total_profit)
        rounds_samples.append((float(delay), rounds_values))
        profit_samples.append((float(delay), profit_values))
    return SweepResult(series={
        "rounds": Series.from_samples("rounds", rounds_samples),
        "profit": Series.from_samples("profit", profit_samples),
    })


def _run_ext_failures(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Fraction of profit retained as BS outages grow."""
    from repro.dynamics.failures import inject_bs_failures

    config = ScenarioConfig.paper()
    ue_count = max(scale.ue_counts)
    counts = (0, 1, 2, 4, 8, 12)
    samples: list[tuple[float, list[float]]] = []
    for count in counts:
        values: list[float] = []
        for seed in scale.seeds:
            if count == 0:
                values.append(100.0)
                continue
            outcome = inject_bs_failures(
                config,
                ue_count=ue_count,
                failed_bs_ids=list(range(count)),
                seed=seed,
            )
            values.append(100.0 * (1.0 - outcome.profit_loss_fraction))
        samples.append((float(count), values))
    return SweepResult(series={
        "profit retained %": Series.from_samples(
            "profit retained %", samples
        )
    })


def _run_ext_gap(
    scale: Scale, workers: int | None = None
) -> SweepResult:
    """Certified gap and auction-baseline profit as the load grows.

    The gap is certified against the Lagrangian upper bound
    (:mod:`repro.bound`), so this sweep runs at any scale the matching
    itself runs at — no ILP in the loop.
    """
    from repro.baselines.auction import AuctionAllocator
    from repro.bound import certify_gap

    config = ScenarioConfig.paper()
    gap_samples: list[tuple[float, list[float]]] = []
    auction_samples: list[tuple[float, list[float]]] = []
    for ue_count in scale.ue_counts:
        gaps: list[float] = []
        ratios: list[float] = []
        for seed in scale.seeds:
            scenario = build_scenario(config, ue_count, seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
            incumbent = outcome.metrics.total_profit
            certificate = certify_gap(
                scenario.network,
                scenario.radio_map,
                scenario.pricing,
                incumbent_profit=incumbent,
            )
            gaps.append(certificate.gap_fraction * 100.0)
            auction = run_allocation(
                scenario, AuctionAllocator(pricing=scenario.pricing)
            )
            ratios.append(
                100.0 * auction.metrics.total_profit / incumbent
                if incumbent > 0 else 100.0
            )
        gap_samples.append((float(ue_count), gaps))
        auction_samples.append((float(ue_count), ratios))
    return SweepResult(series={
        "certified gap %": Series.from_samples(
            "certified gap %", gap_samples
        ),
        "auction profit %": Series.from_samples(
            "auction profit %", auction_samples
        ),
    })


EXTENSIONS: dict[str, Experiment] = {
    "ext-iota": Experiment(
        exp_id="ext-iota",
        title="Extension: markup iota vs profit and same-SP association",
        x_label="iota",
        y_label="profit / same-SP %",
        run=_run_ext_iota,
    ),
    "ext-coverage": Experiment(
        exp_id="ext-coverage",
        title="Extension: coverage-radius sensitivity (DMRA profit)",
        x_label="coverage radius (m)",
        y_label="total profit",
        run=_run_ext_coverage,
    ),
    "ext-noise": Experiment(
        exp_id="ext-noise",
        title="Extension: paper noise figure vs thermal floor (edge-served)",
        x_label="#UEs",
        y_label="edge-served UEs",
        run=_run_ext_noise,
    ),
    "ext-blocking": Experiment(
        exp_id="ext-blocking",
        title="Extension: online blocking vs offered load",
        x_label="offered load (tasks)",
        y_label="blocking %",
        run=_run_ext_blocking,
    ),
    "ext-scaling": Experiment(
        exp_id="ext-scaling",
        title="Extension: profit vs deployment density",
        x_label="#BSs",
        y_label="total profit",
        run=_run_ext_scaling,
    ),
    "ext-staleness": Experiment(
        exp_id="ext-staleness",
        title="Extension: convergence under stale resource broadcasts",
        x_label="broadcast delay (rounds)",
        y_label="rounds / profit",
        run=_run_ext_staleness,
    ),
    "ext-failures": Experiment(
        exp_id="ext-failures",
        title="Extension: profit retained under BS outages",
        x_label="failed BSs",
        y_label="profit retained %",
        run=_run_ext_failures,
    ),
    "ext-gap": Experiment(
        exp_id="ext-gap",
        title="Extension: certified optimality gap vs load",
        x_label="#UEs",
        y_label="gap % / auction profit %",
        run=_run_ext_gap,
    ),
}


def get_extension(exp_id: str) -> Experiment:
    """Look up an extension experiment by id."""
    try:
        return EXTENSIONS[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown extension {exp_id!r}; available: {sorted(EXTENSIONS)}"
        ) from None


def all_experiments() -> dict[str, Experiment]:
    """Paper figures plus extensions, one registry."""
    from repro.experiments.figures import EXPERIMENTS

    merged = dict(EXPERIMENTS)
    merged.update(EXTENSIONS)
    return merged
