"""Sharded, memory-bounded execution of Alg. 1 for large populations.

The monolithic path builds one dense scenario and matches it in one
process — fine at the paper's few thousand UEs, hopeless at the
ROADMAP's production scale.  This package decomposes a run spatially:

* :mod:`repro.scale.partition` — tile the region; each shard owns its
  UEs plus a halo of every reachable BS;
* :mod:`repro.scale.streaming` — build scenario entities chunk by
  chunk (bit-identical to the monolithic builder);
* :mod:`repro.scale.executor` — run the existing matching engine per
  shard over the fork-pool machinery;
* :mod:`repro.scale.reconcile` — evict least-preferred claims from
  over-subscribed BSs and let evictees re-propose against residual
  capacity (:func:`repro.core.residual.residual_match`);
* :mod:`repro.scale.runner` — the orchestrating entry point,
  :func:`~repro.scale.runner.run_sharded`.

See docs/scaling.md for the model and its deviation bounds.
"""

from repro.scale.executor import ShardJob, ShardResult, run_shards
from repro.scale.partition import (
    ShardPlan,
    ShardTile,
    assign_shards,
    halo_bs_indices,
    partition_network,
    plan_tiles,
)
from repro.scale.reconcile import ReconcileOutcome, reconcile_claims
from repro.scale.runner import ShardedOutcome, run_sharded
from repro.scale.streaming import ScenarioFrame, build_scenario_frame

__all__ = [
    "ReconcileOutcome",
    "ScenarioFrame",
    "ShardJob",
    "ShardPlan",
    "ShardResult",
    "ShardTile",
    "ShardedOutcome",
    "assign_shards",
    "build_scenario_frame",
    "halo_bs_indices",
    "partition_network",
    "plan_tiles",
    "reconcile_claims",
    "run_shards",
    "run_sharded",
]
