"""Per-shard execution of Alg. 1 over the fork-pool machinery.

Mirrors the worker model of :mod:`repro.sim.sweep`: the active
:class:`ShardJob` sits in a module-level global that forked workers
inherit, the pool ships only shard indices, and each worker sends back
a picklable :class:`ShardResult` plus (when telemetry is on) a child
recorder that the parent absorbs in shard order — so the merged trace
is identical at any worker count.

Each worker materializes *only its shard*: a
:class:`~repro.model.network.MECNetwork` over the shard's owned UEs and
halo BSs, its radio map, and one engine run.  Because the halo contains
every BS an owned UE can reach (see :mod:`repro.scale.partition`), the
shard-local candidate sets — and hence the shard-local matching — use
exactly the data the monolithic run would for those UEs.

Alongside its grants, each shard reports the BS-side preference key of
every granted (UE, BS) pair so reconciliation can rank conflicting
claims without rebuilding shard state.  The key mirrors
:func:`repro.core.preferences.dmra_bs_rank_key` with one substitution:
the dynamic ``f_u`` (feasible-BS count at grant time, which no longer
exists once the shard run ends) is replaced by the *static* candidate
degree ``|B_u|`` — the same quantity before any capacity is consumed.
The engine's deterministic ``ue_id`` tie-break is appended, as in
:meth:`IterativeMatchingEngine._rank_key`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.compute.cru import Grant
from repro.core.dmra import DMRAPolicy
from repro.core.soa import make_matching_engine
from repro.econ.pricing import PricingPolicy
from repro.errors import ConfigurationError
from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import Rectangle
from repro.model.network import MECNetwork
from repro.obs.telemetry import Recorder, get_telemetry, telemetry_session
from repro.radio.channel import RateModel, build_radio_map
from repro.radio.sinr import LinkBudget

__all__ = ["ShardJob", "ShardResult", "run_shards"]

#: Reconciliation rank key of one granted pair:
#: ``(cross-SP flag, |B_u|, n_{u,i} + c_j^u, ue_id)``.
RankKey = tuple[int, int, int, int]


@dataclass(frozen=True)
class ShardJob:
    """Everything the shard workers need, inherited via fork."""

    providers: tuple[ServiceProvider, ...]
    services: tuple[Service, ...]
    region: Rectangle
    coverage_radius_m: float
    geometry: str
    link_budget: LinkBudget
    rate_model: RateModel | None
    pricing: PricingPolicy
    rho: float
    same_sp_priority: bool
    max_rounds: int
    #: Owned UE entities per shard, ascending ``ue_id`` within a shard.
    shard_ues: tuple[tuple[UserEquipment, ...], ...]
    #: Halo BS entities per shard, in deployment order — the monolithic
    #: objects with their full capacities (each shard matches as if it
    #: had the BS to itself; reconciliation settles the difference).
    shard_base_stations: tuple[tuple[BaseStation, ...], ...]
    #: Matching kernel per shard run: ``"object"`` (bit-parity
    #: reference), ``"soa"``, or ``"auto"`` — forwarded to
    #: :func:`repro.core.soa.make_matching_engine`.
    kernel: str = "object"

    @property
    def shard_count(self) -> int:
        return len(self.shard_ues)


@dataclass(frozen=True)
class ShardResult:
    """One shard's matching outcome, shipped back to the parent."""

    shard_index: int
    ue_count: int
    bs_count: int
    grants: tuple[Grant, ...]
    #: Reconciliation rank keys, parallel to ``grants``.
    rank_keys: tuple[RankKey, ...]
    cloud_ue_ids: frozenset[int]
    rounds: int


# The job currently fanning out, inherited by forked workers (the
# entity tuples and the radio-map budget never survive pickling cheaply;
# the pool only ships shard indices — same pattern as sim/sweep.py).
_ACTIVE_JOB: ShardJob | None = None


def _shard_network(job: ShardJob, index: int) -> MECNetwork:
    """Materialize one shard's network view (owned UEs + halo BSs)."""
    return MECNetwork(
        providers=job.providers,
        base_stations=job.shard_base_stations[index],
        user_equipments=job.shard_ues[index],
        services=job.services,
        region=job.region,
        coverage_radius_m=job.coverage_radius_m,
        geometry=job.geometry,
    )


def _match_shard(job: ShardJob, index: int) -> ShardResult:
    """Build one shard's network + radio map and run the engine on it."""
    network = _shard_network(job, index)
    radio_map = build_radio_map(
        network, job.link_budget, rate_model=job.rate_model
    )
    policy = DMRAPolicy(
        pricing=job.pricing,
        rho=job.rho,
        same_sp_priority=job.same_sp_priority,
    )
    engine = make_matching_engine(
        policy, kernel=job.kernel, max_rounds=job.max_rounds
    )
    assignment = engine.run(network, radio_map)
    sp_of_bs = {bs.bs_id: bs.sp_id for bs in network.base_stations}
    rank_keys = []
    for grant in assignment.grants:
        ue = network.user_equipment(grant.ue_id)
        same_sp = ue.sp_id == sp_of_bs[grant.bs_id]
        degree = len(network.candidate_base_stations(grant.ue_id))
        rank_keys.append(
            (0 if same_sp else 1, degree, grant.rrbs + grant.crus, grant.ue_id)
        )
    return ShardResult(
        shard_index=index,
        ue_count=network.ue_count,
        bs_count=network.bs_count,
        grants=assignment.grants,
        rank_keys=tuple(rank_keys),
        cloud_ue_ids=assignment.cloud_ue_ids,
        rounds=assignment.rounds,
    )


def _run_shard(index: int) -> tuple[ShardResult, Recorder | None]:
    """Pool entry point: run one shard, recording into a child recorder."""
    job = _ACTIVE_JOB
    assert job is not None
    tel = get_telemetry()
    if not tel.enabled:
        return _match_shard(job, index), None
    child = tel.child()
    with telemetry_session(child):
        with child.span("scale.shard", shard=index) as span:
            result = _match_shard(job, index)
            span.set(
                ues=result.ue_count,
                bs=result.bs_count,
                grants=len(result.grants),
                cloud=len(result.cloud_ue_ids),
                rounds=result.rounds,
            )
    return result, child


def run_shards(job: ShardJob, workers: int = 1) -> list[ShardResult]:
    """Execute every shard of ``job``, optionally over a fork pool.

    ``workers=1`` runs shards serially in-process (one shard's network
    and radio map live at a time — the memory-bounded path);
    ``workers=N`` fans shards out to a fork pool.  Results come back in
    shard order and are identical at any worker count, including the
    merged telemetry trace (children absorbed in shard order).
    Platforms without ``fork`` fall back to serial execution.
    """
    global _ACTIVE_JOB
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    count = job.shard_count
    tel = get_telemetry()
    _ACTIVE_JOB = job
    try:
        if workers > 1 and count > 1 and _fork_available():
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=min(workers, count)) as pool:
                outcomes = pool.map(_run_shard, range(count))
        else:
            outcomes = [_run_shard(index) for index in range(count)]
    finally:
        _ACTIVE_JOB = None
    results = []
    for result, child in outcomes:
        results.append(result)
        if child is not None and tel.enabled:
            tel.absorb(child)
    return results


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
