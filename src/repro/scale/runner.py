"""The sharded run: partition -> per-shard matching -> reconciliation.

:func:`run_sharded` is the scale-path counterpart of
:func:`repro.sim.runner.run_allocation`.  It never materializes the
monolithic scenario: UE entities are streamed chunk-by-chunk straight
into per-shard buckets (:mod:`repro.scale.streaming`), each shard
matches against only its halo view (:mod:`repro.scale.executor`), and
the global constraints are restored by ranked admission plus residual
re-proposal (:mod:`repro.scale.reconcile`,
:func:`repro.core.residual.residual_match`).  Outcome metrics are then
evaluated on a monolithic *grid-geometry* network — entity populations
plus sparse coverage pairs, no dense UE x BS matrix — so even the
100k-UE bench stays inside a fixed memory envelope.

Determinism: with one shard the partition owns every UE, the shard
network equals the monolithic network entity-for-entity, no BS can be
over-subscribed, and the assembled assignment (grants tuple, cloud
set, round count) is bit-identical to
``DMRAAllocator.allocate(network, radio_map)`` — pinned by the parity
integration test.  With several shards, results can differ from the
monolithic run only at tile boundaries (see docs/scaling.md); the
``scale.*`` counters quantify exactly how much reconciliation had to
intervene.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.residual import residual_match
from repro.errors import AllocationError, ConfigurationError
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.channel import build_radio_map
from repro.scale.executor import ShardJob, run_shards
from repro.scale.partition import assign_shards, halo_bs_indices, plan_tiles
from repro.scale.reconcile import reconcile_claims
from repro.scale.streaming import (
    DEFAULT_CHUNK_SIZE,
    ScenarioFrame,
    build_scenario_frame,
)
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics, compute_metrics

__all__ = ["ShardedOutcome", "run_sharded"]


@dataclass(frozen=True)
class ShardedOutcome:
    """Everything one sharded run produces."""

    assignment: Assignment
    metrics: OutcomeMetrics
    shard_count: int
    workers: int
    shard_ue_counts: tuple[int, ...]
    shard_bs_counts: tuple[int, ...]
    shard_rounds: tuple[int, ...]
    evictions_by_shard: tuple[int, ...]
    reproposal_rounds: int
    reproposal_grants: int
    partition_time_s: float
    match_time_s: float
    reconcile_time_s: float
    wall_time_s: float

    @property
    def total_evictions(self) -> int:
        return sum(self.evictions_by_shard)


def run_sharded(
    config: ScenarioConfig,
    ue_count: int,
    seed: int,
    shards: int,
    workers: int = 1,
    allocator: DMRAAllocator | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    geometry: str = "auto",
    kernel: str = "object",
) -> ShardedOutcome:
    """Run DMRA on ``(config, ue_count, seed)`` sharded by geometry.

    ``allocator`` supplies the DMRA parameters (pricing, ``rho``,
    ablation switch, round bound); ``None`` uses the config's pricing
    and ``rho`` — the same defaults the monolithic CLI path applies.
    ``workers`` bounds the fork pool; ``geometry`` is forwarded to the
    shard networks (``"auto"`` keeps small shards dense).  ``kernel``
    picks the per-shard matching engine (``"object"``, ``"soa"``, or
    ``"auto"``; see :func:`repro.core.soa.make_matching_engine`) — the
    shard-local assignments are bit-identical either way, so the choice
    is pure throughput.  Sharding is DMRA-specific: reconciliation
    ranks conflicting claims with the DMRA BS-side preference order,
    which has no analogue for the baseline schemes.
    """
    if shards <= 0:
        raise ConfigurationError(f"shards must be > 0, got {shards}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    tel = get_telemetry()
    start = time.perf_counter()
    with tel.span(
        "scale.run", shards=shards, workers=workers, ues=ue_count, seed=seed
    ) as run_span:
        phase_start = time.perf_counter()
        with tel.span("scale.partition", shards=shards) as part_span:
            frame = build_scenario_frame(config, ue_count, seed)
            if allocator is None:
                allocator = DMRAAllocator(
                    pricing=frame.pricing, rho=config.rho
                )
            shard_ues = _bucket_ues(frame, shards, chunk_size)
            _, _, bounds = plan_tiles(frame.region, shards)
            shard_bs_indices = tuple(
                tuple(
                    halo_bs_indices(
                        frame.base_stations,
                        tile_bounds,
                        config.coverage_radius_m,
                    ).tolist()
                )
                for tile_bounds in bounds
            )
            shard_base_stations = tuple(
                tuple(frame.base_stations[i] for i in indices)
                for indices in shard_bs_indices
            )
            part_span.set(
                ues=ue_count,
                bs=len(frame.base_stations),
                max_shard_ues=max(len(s) for s in shard_ues),
                max_halo_bs=max(len(s) for s in shard_bs_indices),
            )
        partition_time = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        job = ShardJob(
            providers=frame.providers,
            services=frame.services,
            region=frame.region,
            coverage_radius_m=config.coverage_radius_m,
            geometry=geometry,
            link_budget=config.link_budget(),
            rate_model=config.rate_model_fn(),
            pricing=allocator.pricing,
            rho=allocator.rho,
            same_sp_priority=allocator.same_sp_priority,
            max_rounds=allocator.max_rounds,
            shard_ues=shard_ues,
            shard_base_stations=shard_base_stations,
            kernel=kernel,
        )
        results = run_shards(job, workers=workers)
        match_time = time.perf_counter() - phase_start

        phase_start = time.perf_counter()
        with tel.span("scale.reconcile", shards=shards) as rec_span:
            outcome = reconcile_claims(frame.base_stations, results)
            for result in results:
                tel.count(
                    f"scale.shard_rounds.{result.shard_index}", result.rounds
                )
            for index, evictions in enumerate(outcome.evictions_by_shard):
                if evictions:
                    tel.count(f"scale.shard_evictions.{index}", evictions)
            if outcome.total_evictions:
                tel.count("scale.evictions", outcome.total_evictions)
            # Re-proposal targets: every evicted UE, plus — in multi-shard
            # mode only — every shard-cloud UE.  Shard-cloud UEs were
            # rejected inside one shard's halo view, so the reconciled
            # global pool may still fit them; with one shard the match
            # already saw the whole network and re-proposing rejected UEs
            # would break Alg. 1's no-re-proposal rule (and bit-parity).
            shard_clouds = frozenset().union(
                *(result.cloud_ue_ids for result in results)
            )
            if shards > 1:
                targets = tuple(
                    sorted(set(outcome.evicted_ue_ids) | shard_clouds)
                )
            else:
                targets = outcome.evicted_ue_ids
            reproposal = _repropose(
                frame, outcome, allocator, shard_ues, targets
            )
            rec_span.set(
                evictions=outcome.total_evictions,
                reproposal_rounds=reproposal.rounds,
                reproposal_grants=len(reproposal.grants),
            )
            if reproposal.rounds:
                tel.count("scale.reproposal_rounds", reproposal.rounds)
            if reproposal.grants:
                tel.count("scale.reproposal_grants", len(reproposal.grants))
            outcome.ledgers.check_invariants()
        reconcile_time = time.perf_counter() - phase_start

        grants = tuple(
            grant
            for shard_grants in outcome.surviving
            for grant in shard_grants
        ) + reproposal.grants
        # Every target UE was resolved by the re-proposal pass (granted
        # or forwarded to cloud); the rest keep their shard outcome.
        cloud = (shard_clouds - set(targets)) | reproposal.cloud_ue_ids
        rounds = (
            max((result.rounds for result in results), default=0)
            + reproposal.rounds
        )
        if len(grants) + len(cloud) != ue_count:
            raise AllocationError(
                f"sharded run lost UEs: {len(grants)} grants + "
                f"{len(cloud)} cloud != {ue_count}"
            )
        assignment = Assignment(
            grants=grants, cloud_ue_ids=cloud, rounds=rounds
        )

        metrics_network = _metrics_network(frame, shard_ues)
        metrics = compute_metrics(metrics_network, assignment, frame.pricing)
        tel.gauge("scale.shards", shards)
        run_span.set(
            grants=len(grants),
            cloud=len(cloud),
            rounds=rounds,
            evictions=outcome.total_evictions,
        )
    return ShardedOutcome(
        assignment=assignment,
        metrics=metrics,
        shard_count=shards,
        workers=workers,
        shard_ue_counts=tuple(result.ue_count for result in results),
        shard_bs_counts=tuple(result.bs_count for result in results),
        shard_rounds=tuple(result.rounds for result in results),
        evictions_by_shard=outcome.evictions_by_shard,
        reproposal_rounds=reproposal.rounds,
        reproposal_grants=len(reproposal.grants),
        partition_time_s=partition_time,
        match_time_s=match_time,
        reconcile_time_s=reconcile_time,
        wall_time_s=time.perf_counter() - start,
    )


def _bucket_ues(
    frame: ScenarioFrame, shards: int, chunk_size: int
) -> tuple[tuple, ...]:
    """Stream UE chunks straight into per-shard ownership buckets."""
    nx, ny, _ = plan_tiles(frame.region, shards)
    buckets: list[list] = [[] for _ in range(shards)]
    for chunk in frame.iter_ue_chunks(chunk_size):
        if not chunk:
            continue
        xy = np.asarray(
            [ue.position.as_tuple() for ue in chunk], dtype=float
        ).reshape(-1, 2)
        owners = assign_shards(xy, frame.region, nx, ny)
        for ue, owner in zip(chunk, owners.tolist()):
            buckets[owner].append(ue)
    return tuple(tuple(bucket) for bucket in buckets)


def _metrics_network(
    frame: ScenarioFrame, shard_ues: tuple[tuple, ...]
) -> MECNetwork:
    """The monolithic network used for outcome metrics only.

    Reassembles the full UE population (ascending ``ue_id``) from the
    shard buckets.  ``geometry="auto"`` keeps this affordable at scale:
    beyond the dense cell limit the network stores only sparse coverage
    pairs — never the dense UE x BS matrix the sharded path exists to
    avoid — and no radio map is built (metrics need none).
    """
    all_ues = sorted(
        (ue for bucket in shard_ues for ue in bucket),
        key=lambda ue: ue.ue_id,
    )
    return MECNetwork(
        providers=frame.providers,
        base_stations=frame.base_stations,
        user_equipments=all_ues,
        services=frame.services,
        region=frame.region,
        coverage_radius_m=frame.config.coverage_radius_m,
    )


def _repropose(
    frame: ScenarioFrame,
    outcome,
    allocator: DMRAAllocator,
    shard_ues: tuple[tuple, ...],
    targets: tuple[int, ...],
):
    """Deferred-acceptance re-proposal of unplaced UEs (step 2).

    Builds a small *conflict network* — just the target UEs (evicted
    claims plus, in multi-shard mode, shard-cloud UEs) against the full
    BS population — and runs the engine's incremental mode on the
    global pool's residual capacity.  Returns an empty assignment
    untouched-fast when there is nothing to re-propose (the
    ``--shards 1`` path: zero extra work, zero extra rounds).
    """
    if not targets:
        return Assignment(grants=(), cloud_ue_ids=frozenset(), rounds=0)
    wanted = set(targets)
    conflict_ues = tuple(
        sorted(
            (
                ue
                for bucket in shard_ues
                for ue in bucket
                if ue.ue_id in wanted
            ),
            key=lambda ue: ue.ue_id,
        )
    )
    network = MECNetwork(
        providers=frame.providers,
        base_stations=frame.base_stations,
        user_equipments=conflict_ues,
        services=frame.services,
        region=frame.region,
        coverage_radius_m=frame.config.coverage_radius_m,
    )
    radio_map = build_radio_map(
        network, frame.config.link_budget(),
        rate_model=frame.config.rate_model_fn(),
    )
    policy = DMRAPolicy(
        pricing=allocator.pricing,
        rho=allocator.rho,
        same_sp_priority=allocator.same_sp_priority,
    )
    return residual_match(
        network,
        radio_map,
        outcome.ledgers,
        targets,
        policy,
        max_rounds=allocator.max_rounds,
    )
