"""Reconciliation: resolve BSs claimed by more than one shard.

Shards match independently, each against a private ledger of its halo
BSs — so a BS sitting in several halos can collect more grants than its
real capacity allows.  Reconciliation restores the global constraints
(Eqs. 12--15) in two deterministic steps:

1. **Admission with eviction.**  All claims on one BS are ranked by the
   BS-side preference key the shards shipped (cross-SP flag, candidate
   degree, footprint, ``ue_id`` — the shard-independent analogue of
   :func:`repro.core.preferences.dmra_bs_rank_key`).  While the BS is
   over its RRB budget or any hosted service is over its CRU pool, the
   least-preferred claim that relieves a violated resource is evicted —
   the same evict-from-the-worst-end rule the engine's own RRB budget
   check uses (Alg. 1 lines 22--25).  Survivors are granted into one
   global :class:`~repro.compute.cru.LedgerPool`, whose transactional
   ledgers make over-commitment impossible by construction.
2. **Re-proposal** (in :mod:`repro.scale.runner`): evicted UEs run
   :func:`repro.core.residual.residual_match` against the pool's
   residual capacity — ordinary bounded deferred acceptance, so the
   ledger ends balanced with every evicted UE either re-granted
   elsewhere or forwarded to the cloud.

A single shard can never over-subscribe a BS (its claims come from one
consistent ledger), so with ``--shards 1`` this pass admits everything
untouched — the bit-parity guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.compute.cru import Grant, LedgerPool
from repro.model.entities import BaseStation
from repro.scale.executor import RankKey, ShardResult

__all__ = ["ReconcileOutcome", "reconcile_claims"]


@dataclass(frozen=True)
class ReconcileOutcome:
    """The admission step's result, before re-proposal."""

    #: Global pool holding every surviving grant.
    ledgers: LedgerPool
    #: Surviving grants per shard, shard-local order preserved.
    surviving: tuple[tuple[Grant, ...], ...]
    #: Evicted UE ids, ascending.
    evicted_ue_ids: tuple[int, ...]
    #: Eviction counts per shard.
    evictions_by_shard: tuple[int, ...]

    @property
    def total_evictions(self) -> int:
        return sum(self.evictions_by_shard)


def reconcile_claims(
    base_stations: Sequence[BaseStation], results: list[ShardResult]
) -> ReconcileOutcome:
    """Admit shard claims into one global ledger, evicting conflicts.

    ``base_stations`` must be the *monolithic* BS population (every BS
    present); it supplies the capacity envelopes.  Claims are processed
    per BS in ascending ``bs_id``; within a BS the ranked admission
    above decides who stays.  The output's ``surviving`` tuples keep
    each shard's grant order, so concatenating them (plus re-proposal
    grants) reproduces the monolithic grants tuple exactly in the
    single-shard case.
    """
    bs_by_id = {bs.bs_id: bs for bs in base_stations}
    # (rank_key, shard_index, position-in-shard) per claim, per BS.
    claims: dict[int, list[tuple[RankKey, int, int]]] = {}
    for result in results:
        for position, (grant, key) in enumerate(
            zip(result.grants, result.rank_keys)
        ):
            claims.setdefault(grant.bs_id, []).append(
                (key, result.shard_index, position)
            )

    evicted_by_shard: list[set[int]] = [set() for _ in results]
    by_shard = {result.shard_index: result for result in results}
    for bs_id in sorted(claims):
        bs = bs_by_id[bs_id]
        ranked = sorted(claims[bs_id])
        grants = [by_shard[s].grants[p] for _, s, p in ranked]
        rrb_used = sum(grant.rrbs for grant in grants)
        cru_used: dict[int, int] = {}
        # Rank positions per service, ascending — each service keeps a
        # tail cursor so finding "the least-preferred claim of an
        # over-subscribed service" never rescans the whole list.  The
        # cursors (and the global tail for the RRB case) only ever move
        # toward the head, so admission is O(claims log claims) overall
        # instead of quadratic on heavily over-subscribed border BSs.
        service_rows: dict[int, list[int]] = {}
        for rank_pos, grant in enumerate(grants):
            cru_used[grant.service_id] = (
                cru_used.get(grant.service_id, 0) + grant.crus
            )
            service_rows.setdefault(grant.service_id, []).append(rank_pos)
        alive = [True] * len(ranked)
        tail = len(ranked) - 1
        service_tail = {
            service_id: len(rows) - 1
            for service_id, rows in service_rows.items()
        }
        while True:
            over_rrb = rrb_used > bs.rrb_capacity
            over_services = {
                service_id
                for service_id, used in cru_used.items()
                if used > bs.cru_capacity.get(service_id, 0)
            }
            if not over_rrb and not over_services:
                break
            # Evict the least-preferred claim that relieves a violated
            # resource (any claim when RRBs are over; otherwise one of
            # an over-subscribed service).
            if over_rrb:
                while not alive[tail]:
                    tail -= 1
                rank_pos = tail
            else:
                rank_pos = -1
                for service_id in over_services:
                    rows = service_rows[service_id]
                    cursor = service_tail[service_id]
                    while cursor >= 0 and not alive[rows[cursor]]:
                        cursor -= 1
                    service_tail[service_id] = cursor
                    if cursor >= 0:
                        rank_pos = max(rank_pos, rows[cursor])
            grant = grants[rank_pos]
            alive[rank_pos] = False
            rrb_used -= grant.rrbs
            cru_used[grant.service_id] -= grant.crus
            _, shard_index, position = ranked[rank_pos]
            evicted_by_shard[shard_index].add(position)

    pool = LedgerPool(base_stations)
    surviving: list[tuple[Grant, ...]] = []
    evicted_ue_ids: list[int] = []
    for index, result in enumerate(results):
        kept = []
        dropped = evicted_by_shard[index]
        for position, grant in enumerate(result.grants):
            if position in dropped:
                evicted_ue_ids.append(grant.ue_id)
                continue
            kept.append(grant)
            pool.ledger(grant.bs_id).grant(
                ue_id=grant.ue_id,
                service_id=grant.service_id,
                crus=grant.crus,
                rrbs=grant.rrbs,
            )
        surviving.append(tuple(kept))
    return ReconcileOutcome(
        ledgers=pool,
        surviving=tuple(surviving),
        evicted_ue_ids=tuple(sorted(evicted_ue_ids)),
        evictions_by_shard=tuple(
            len(dropped) for dropped in evicted_by_shard
        ),
    )
