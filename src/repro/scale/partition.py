"""Spatial partitioning: tile the deployment area into UE shards.

A shard owns the UEs whose positions fall inside its tile and carries a
**halo** of every BS a tile-resident UE could possibly reach: any BS
within ``coverage_radius_m`` of the tile rectangle (point-to-rectangle
distance).  Because a UE inside the tile is never farther from a BS
than the tile boundary is, the halo is a provable superset of every
owned UE's coverage set — each shard therefore sees exactly the same
candidate set ``B_u`` for its UEs as the monolithic network, which is
what makes per-shard matching results comparable and ``--shards 1``
bit-identical.

Tiles form an ``nx x ny`` grid with ``nx * ny == shard_count``; the
factor pair is chosen closest to square, with the larger factor along
the longer region side (prime shard counts degenerate to strips).
Every UE maps to exactly one tile: positions are binned by
``floor((x - x_min) / tile_w)`` clipped into range, so points on the
region's far edge (or outside it) land in the last tile instead of
falling through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.model.entities import BaseStation
from repro.model.geometry import Rectangle
from repro.model.network import MECNetwork

__all__ = [
    "ShardTile",
    "ShardPlan",
    "plan_tiles",
    "assign_shards",
    "halo_bs_indices",
    "partition_network",
]


@dataclass(frozen=True)
class ShardTile:
    """One tile of the partition: its bounds plus owned/halo members."""

    shard_index: int
    bounds: Rectangle
    ue_ids: tuple[int, ...]
    bs_ids: tuple[int, ...]


@dataclass(frozen=True)
class ShardPlan:
    """A full partition of one network into geometry shards."""

    shard_count: int
    nx: int
    ny: int
    tiles: tuple[ShardTile, ...]

    def __post_init__(self) -> None:
        if len(self.tiles) != self.shard_count:
            raise ConfigurationError(
                f"plan has {len(self.tiles)} tiles for "
                f"{self.shard_count} shards"
            )


def plan_tiles(region: Rectangle, shard_count: int) -> tuple[int, int, tuple[Rectangle, ...]]:
    """Tile ``region`` into ``shard_count`` rectangles.

    Returns ``(nx, ny, bounds)`` with ``bounds`` in row-major order
    (x fastest).  The factor pair ``nx * ny == shard_count`` closest to
    square is used, oriented so the larger factor splits the longer
    side — strips for prime counts, near-squares otherwise.
    """
    if shard_count <= 0:
        raise ConfigurationError(
            f"shard_count must be > 0, got {shard_count}"
        )
    small = 1
    for d in range(1, int(math.isqrt(shard_count)) + 1):
        if shard_count % d == 0:
            small = d
    large = shard_count // small
    if region.width >= region.height:
        nx, ny = large, small
    else:
        nx, ny = small, large
    tile_w = region.width / nx
    tile_h = region.height / ny
    bounds = tuple(
        Rectangle(
            region.x_min + ix * tile_w,
            region.y_min + iy * tile_h,
            region.x_min + (ix + 1) * tile_w,
            region.y_min + (iy + 1) * tile_h,
        )
        for iy in range(ny)
        for ix in range(nx)
    )
    return nx, ny, bounds


def assign_shards(
    xy: np.ndarray, region: Rectangle, nx: int, ny: int
) -> np.ndarray:
    """Shard index for each ``(x, y)`` row of ``xy`` (exactly one each).

    Binning is closed on the far edges: indices are clipped into
    ``[0, nx-1] x [0, ny-1]``, so every point — including ones exactly
    on ``x_max``/``y_max`` or nominally outside the region — is owned
    by exactly one shard (the nearest tile).
    """
    xy = np.asarray(xy, dtype=float).reshape(-1, 2)
    tile_w = region.width / nx
    tile_h = region.height / ny
    ix = np.clip(
        np.floor((xy[:, 0] - region.x_min) / tile_w).astype(np.int64), 0, nx - 1
    )
    iy = np.clip(
        np.floor((xy[:, 1] - region.y_min) / tile_h).astype(np.int64), 0, ny - 1
    )
    return iy * nx + ix


def halo_bs_indices(
    base_stations: Sequence[BaseStation],
    bounds: Rectangle,
    coverage_radius_m: float,
) -> np.ndarray:
    """Indices (deployment order) of BSs within reach of a tile.

    A BS belongs to the halo when its point-to-rectangle distance to
    ``bounds`` is at most ``coverage_radius_m``.  For any UE inside the
    tile, ``dist(UE, BS) >= dist(tile, BS)``, so a BS outside the halo
    cannot cover any owned UE — the halo is a superset of the union of
    the owned UEs' coverage sets.
    """
    if coverage_radius_m <= 0:
        raise ConfigurationError(
            f"coverage_radius_m must be > 0, got {coverage_radius_m}"
        )
    if not base_stations:
        return np.empty(0, dtype=np.intp)
    bs_xy = np.asarray(
        [bs.position.as_tuple() for bs in base_stations], dtype=float
    ).reshape(-1, 2)
    dx = np.maximum(
        np.maximum(bounds.x_min - bs_xy[:, 0], bs_xy[:, 0] - bounds.x_max), 0.0
    )
    dy = np.maximum(
        np.maximum(bounds.y_min - bs_xy[:, 1], bs_xy[:, 1] - bounds.y_max), 0.0
    )
    return np.nonzero(np.hypot(dx, dy) <= coverage_radius_m)[0]


def partition_network(network: MECNetwork, shard_count: int) -> ShardPlan:
    """Partition a materialized network into ``shard_count`` shards.

    Ownership and halos follow the module rules; UE and BS ids within a
    tile keep their network order (ascending ``ue_id`` / deployment
    order), so downstream shard networks preserve the monolithic entity
    ordering.
    """
    nx, ny, bounds = plan_tiles(network.region, shard_count)
    ues = network.user_equipments
    if ues:
        ue_xy = np.asarray(
            [ue.position.as_tuple() for ue in ues], dtype=float
        ).reshape(-1, 2)
        owner = assign_shards(ue_xy, network.region, nx, ny)
    else:
        owner = np.empty(0, dtype=np.int64)
    ue_ids_by_shard: list[list[int]] = [[] for _ in range(shard_count)]
    for ue, shard in zip(ues, owner.tolist()):
        ue_ids_by_shard[shard].append(ue.ue_id)
    tiles = []
    for index in range(shard_count):
        halo = halo_bs_indices(
            network.base_stations, bounds[index], network.coverage_radius_m
        )
        tiles.append(
            ShardTile(
                shard_index=index,
                bounds=bounds[index],
                ue_ids=tuple(ue_ids_by_shard[index]),
                bs_ids=tuple(
                    network.base_stations[i].bs_id for i in halo.tolist()
                ),
            )
        )
    return ShardPlan(
        shard_count=shard_count, nx=nx, ny=ny, tiles=tuple(tiles)
    )
