"""Chunked scenario construction for sharded runs.

:func:`repro.sim.scenario.build_scenario` materializes one monolithic
:class:`~repro.model.network.MECNetwork` plus its radio map — exactly
the allocation the sharded path exists to avoid.  This module splits
construction in two:

1. :func:`build_scenario_frame` draws everything *except* the UE
   entities — providers, BS placement and hosting, the UE position
   scatter — consuming the seed's RNG in precisely the order
   ``build_scenario`` does (providers, placement, per-BS hosting,
   position scatter);
2. :meth:`ScenarioFrame.iter_ue_chunks` then materializes UE entities
   chunk by chunk with the *same continuing generator*.

``generate_user_equipments`` draws per UE sequentially, so generating
``[0, c)`` then ``[c, 2c)`` with one generator is bit-identical to one
``[0, n)`` call — the streamed population equals the monolithic one
entity for entity (pinned by the streaming parity test).  The sharded
runner routes each chunk straight into per-shard buckets, so no step
ever holds geometry proportional to ``UE x BS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.econ.pricing import PaperPricing
from repro.econ.tariffs import validate_tariffs
from repro.errors import ConfigurationError
from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import Point, Rectangle
from repro.model.placement import make_placement, scatter_ues
from repro.model.workload import generate_user_equipments
from repro.radio.ofdma import rrb_budget
from repro.sim.config import ScenarioConfig

__all__ = ["ScenarioFrame", "build_scenario_frame"]

#: Default number of UEs materialized per chunk.
DEFAULT_CHUNK_SIZE = 10_000


@dataclass
class ScenarioFrame:
    """Everything of a scenario except the materialized UE entities.

    Holds the continuing RNG, so UE chunks must be consumed exactly
    once and in order; :meth:`iter_ue_chunks` enforces that.
    """

    config: ScenarioConfig
    seed: int
    ue_count: int
    region: Rectangle
    providers: tuple[ServiceProvider, ...]
    base_stations: tuple[BaseStation, ...]
    services: tuple[Service, ...]
    ue_positions: tuple[Point, ...]
    _rng: np.random.Generator
    _consumed: bool = False

    @property
    def pricing(self) -> PaperPricing:
        """The Eq. 9--10 pricing implied by the config."""
        return PaperPricing(
            base_price=self.config.base_price,
            cross_sp_markup=self.config.cross_sp_markup,
            distance_weight=self.config.distance_weight,
        )

    def iter_ue_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> Iterator[list[UserEquipment]]:
        """Yield UE entities in ``ue_id`` order, ``chunk_size`` at a time.

        The concatenation of all chunks is bit-identical to the UE list
        ``build_scenario`` would produce for the same triple.  One-shot:
        the generator advances the frame's RNG, so a second iteration
        would silently diverge — it raises instead.
        """
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be > 0, got {chunk_size}"
            )
        if self._consumed:
            raise ConfigurationError(
                "scenario frame already streamed; build a new frame to "
                "re-generate its UEs"
            )
        self._consumed = True
        workload = self.config.workload_model()
        for start in range(0, self.ue_count, chunk_size):
            stop = min(start + chunk_size, self.ue_count)
            yield generate_user_equipments(
                positions=self.ue_positions[start:stop],
                sp_count=self.config.sp_count,
                service_count=self.config.service_count,
                workload=workload,
                rng=self._rng,
                start_ue_id=start,
            )


def build_scenario_frame(
    config: ScenarioConfig, ue_count: int, seed: int
) -> ScenarioFrame:
    """Draw a scenario's skeleton, leaving UE entities to be streamed.

    RNG consumption mirrors :func:`repro.sim.scenario.build_scenario`
    step for step — SPs, BS placement, per-BS hosting, the one-shot UE
    position scatter — so the frame plus its streamed chunks reproduce
    the monolithic scenario's entity populations exactly.  Tariffs are
    validated here, like the monolithic builder does before returning.
    """
    rng = np.random.default_rng(seed)
    region = Rectangle.square(config.region_side_m)

    providers = tuple(
        ServiceProvider(
            sp_id=k,
            name=f"SP-{k}",
            cru_price=config.cru_price_of_sp(k),
            other_cost=config.sp_other_cost,
        )
        for k in range(config.sp_count)
    )

    placement_kwargs: dict[str, float] = {}
    if config.placement == "regular":
        placement_kwargs["inter_site_distance_m"] = config.inter_site_distance_m
    strategy = make_placement(config.placement, **placement_kwargs)
    positions = strategy.place(region, config.bs_count, rng)

    catalog = config.service_catalog()
    services = tuple(catalog.build_services())
    rrbs = rrb_budget(config.uplink_bandwidth_hz, config.rrb_bandwidth_hz)
    ownership = config.bs_ownership()
    base_stations = tuple(
        BaseStation(
            bs_id=index,
            sp_id=ownership[index],  # interleaved for spatial mixing
            position=position,
            cru_capacity=catalog.sample_hosting(rng),
            rrb_capacity=rrbs,
            uplink_bandwidth_hz=config.uplink_bandwidth_hz,
        )
        for index, position in enumerate(positions)
    )

    ue_positions = tuple(scatter_ues(region, ue_count, rng))

    pricing = PaperPricing(
        base_price=config.base_price,
        cross_sp_markup=config.cross_sp_markup,
        distance_weight=config.distance_weight,
    )
    validate_tariffs(list(providers), pricing, config.coverage_radius_m)

    return ScenarioFrame(
        config=config,
        seed=seed,
        ue_count=ue_count,
        region=region,
        providers=providers,
        base_stations=base_stations,
        services=services,
        ue_positions=ue_positions,
        _rng=rng,
    )
