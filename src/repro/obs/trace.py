"""The versioned JSONL trace format behind ``dmra trace``.

A trace file is newline-delimited JSON with a fixed, documented layout
(see ``docs/observability.md`` for the full schema):

* line 1 — the **header**: ``{"kind": "header", "schema":
  "dmra.trace/1", "meta": {...}}``.  Parsers must reject unknown
  schema identifiers.
* zero or more **metric** lines, one per counter / gauge / timer,
  emitted in sorted-name order::

      {"kind": "counter", "name": "match.proposals", "value": 1234}
      {"kind": "gauge", "name": "online.rrbs_in_flight",
       "value": 41, "min": 0, "max": 97, "count": 512}
      {"kind": "timer", "name": "online.batch", "count": 64,
       "total_s": 0.81, "min_s": 0.002, "max_s": 0.04}

* zero or more **hist** lines (``dmra.trace/2`` only), one per
  histogram in sorted-name order, carrying the exact bucket bounds,
  per-bucket counts (last entry = overflow/+Inf), sum, and count::

      {"kind": "hist", "name": "stream.event_latency_s",
       "bounds": [1e-06, 2e-06], "counts": [3, 1, 0],
       "sum": 5.1e-06, "count": 4}

  A trace with no histograms is emitted as ``dmra.trace/1``
  byte-identically to before; the reader accepts both versions.

* zero or more **span** lines in pre-order (parents before children),
  with sequential integer ids assigned in emission order starting at 1
  and ``parent`` 0 for roots::

      {"kind": "span", "id": 3, "parent": 1, "name": "match.round",
       "start_s": 0.0012, "end_s": 0.0039, "attrs": {"round": 2}}

Every line is serialized with sorted keys, so the format round-trips
exactly: ``trace_lines(parse_trace(trace_lines(t))) == trace_lines(t)``
(a dedicated test holds the sweep-produced merged trace to this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import ConfigurationError
from repro.obs.histogram import Histogram
from repro.obs.telemetry import GaugeStat, Recorder, SpanRecord, TimerStat

__all__ = [
    "SCHEMA",
    "SCHEMA_V2",
    "Trace",
    "parse_trace",
    "read_trace",
    "span_from_payload",
    "span_to_payload",
    "trace_from_recorder",
    "trace_lines",
    "write_trace",
]

#: Schema identifier; bump the suffix on any incompatible layout change.
SCHEMA = "dmra.trace/1"

#: The v2 schema adds ``hist`` records.  Traces without histograms keep
#: emitting v1 byte-identically, so every pre-existing artifact (and the
#: committed metrics-gate baseline workflow) is untouched; v2 appears
#: only when a histogram was actually recorded.
SCHEMA_V2 = "dmra.trace/2"

_KNOWN_SCHEMAS = (SCHEMA, SCHEMA_V2)


@dataclass
class Trace:
    """A fully parsed (or to-be-written) trace."""

    meta: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, GaugeStat] = field(default_factory=dict)
    timers: dict[str, TimerStat] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def all_spans(self):
        """Pre-order traversal over every span in the trace."""
        for root in self.spans:
            yield from root.walk()

    def span_count(self) -> int:
        """Total number of spans across every tree in the trace."""
        return sum(1 for _ in self.all_spans())


def trace_from_recorder(recorder: Recorder) -> Trace:
    """Snapshot a recorder's state as a :class:`Trace`."""
    return Trace(
        meta=dict(recorder.meta),
        spans=list(recorder.roots),
        counters=dict(recorder.counters),
        gauges=dict(recorder.gauges),
        timers=dict(recorder.timers),
        histograms={
            name: hist.snapshot()
            for name, hist in recorder.histograms.items()
        },
    )


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def trace_lines(trace: Trace | Recorder) -> list[str]:
    """Serialize a trace to its canonical JSONL lines (no newlines)."""
    if isinstance(trace, Recorder):
        trace = trace_from_recorder(trace)
    schema = SCHEMA_V2 if trace.histograms else SCHEMA
    lines = [_dump({"kind": "header", "schema": schema, "meta": trace.meta})]
    for name in sorted(trace.counters):
        lines.append(_dump({
            "kind": "counter", "name": name, "value": trace.counters[name],
        }))
    for name in sorted(trace.gauges):
        stat = trace.gauges[name]
        lines.append(_dump({
            "kind": "gauge", "name": name, "value": stat.value,
            "min": stat.min, "max": stat.max, "count": stat.count,
        }))
    for name in sorted(trace.timers):
        stat = trace.timers[name]
        lines.append(_dump({
            "kind": "timer", "name": name, "count": stat.count,
            "total_s": stat.total_s, "min_s": stat.min_s,
            "max_s": stat.max_s,
        }))
    for name in sorted(trace.histograms):
        hist = trace.histograms[name]
        lines.append(_dump({
            "kind": "hist", "name": name, **hist.to_payload(),
        }))
    next_id = 1

    def emit(span: SpanRecord, parent_id: int) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        lines.append(_dump({
            "kind": "span", "id": span_id, "parent": parent_id,
            "name": span.name, "start_s": span.start_s,
            "end_s": span.end_s, "attrs": span.attrs,
        }))
        for child in span.children:
            emit(child, span_id)

    for root in trace.spans:
        emit(root, 0)
    return lines


def parse_trace(lines: Iterable[str] | str) -> Trace:
    """Parse canonical JSONL lines back into a :class:`Trace`.

    Raises :class:`ConfigurationError` on a missing/unknown header
    schema, malformed JSON, unknown record kinds, or dangling span
    parent references.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    trace = Trace()
    spans_by_id: dict[int, SpanRecord] = {}
    saw_header = False
    for line_number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {line_number}: malformed JSON ({exc})"
            ) from exc
        kind = record.get("kind")
        if not saw_header:
            if kind != "header":
                raise ConfigurationError(
                    "trace does not start with a header line"
                )
            if record.get("schema") not in _KNOWN_SCHEMAS:
                raise ConfigurationError(
                    f"unsupported trace schema {record.get('schema')!r}; "
                    f"this reader understands "
                    f"{', '.join(repr(s) for s in _KNOWN_SCHEMAS)}"
                )
            trace.meta = record.get("meta", {})
            saw_header = True
            continue
        if kind == "counter":
            trace.counters[record["name"]] = record["value"]
        elif kind == "gauge":
            trace.gauges[record["name"]] = GaugeStat(
                value=record["value"], min=record["min"],
                max=record["max"], count=record["count"],
            )
        elif kind == "timer":
            trace.timers[record["name"]] = TimerStat(
                count=record["count"], total_s=record["total_s"],
                min_s=record["min_s"], max_s=record["max_s"],
            )
        elif kind == "hist":
            try:
                trace.histograms[record["name"]] = Histogram.from_payload(
                    record
                )
            except (KeyError, ValueError) as exc:
                raise ConfigurationError(
                    f"trace line {line_number}: malformed hist record "
                    f"({exc})"
                ) from exc
        elif kind == "span":
            span = SpanRecord(
                name=record["name"], start_s=record["start_s"],
                end_s=record["end_s"], attrs=record.get("attrs", {}),
            )
            spans_by_id[record["id"]] = span
            parent_id = record.get("parent", 0)
            if parent_id == 0:
                trace.spans.append(span)
            else:
                parent = spans_by_id.get(parent_id)
                if parent is None:
                    raise ConfigurationError(
                        f"trace line {line_number}: span {record['id']} "
                        f"references unknown parent {parent_id}"
                    )
                parent.children.append(span)
        else:
            raise ConfigurationError(
                f"trace line {line_number}: unknown record kind {kind!r}"
            )
    if not saw_header:
        raise ConfigurationError("trace is empty (no header line)")
    return trace


def span_to_payload(span: SpanRecord) -> dict:
    """One span subtree as a JSON-safe dict (recursive, wire-friendly).

    Used by the dist deployment to ship a node's span forest back to
    the supervisor inside a result frame; :func:`span_from_payload`
    reverses it exactly.
    """
    payload = {
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
    }
    if span.attrs:
        payload["attrs"] = span.attrs
    if span.children:
        payload["children"] = [span_to_payload(c) for c in span.children]
    return payload


def span_from_payload(payload: dict) -> SpanRecord:
    """Rebuild a span subtree from :func:`span_to_payload` output."""
    return SpanRecord(
        name=payload["name"],
        start_s=payload["start_s"],
        end_s=payload["end_s"],
        attrs=dict(payload.get("attrs", {})),
        children=[
            span_from_payload(c) for c in payload.get("children", ())
        ],
    )


def write_trace(path: str | Path, trace: Trace | Recorder) -> Path:
    """Write a trace (or live recorder) as canonical JSONL."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(trace_lines(trace)) + "\n")
    return target


def read_trace(path: str | Path) -> Trace:
    """Read and parse a JSONL trace file."""
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {source}: {exc}") from exc
    return parse_trace(text)
