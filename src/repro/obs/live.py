"""The live observability plane: ``/metrics``, ``/healthz``, ``/readyz``.

Everything else in :mod:`repro.obs` is post-mortem — traces and metrics
documents materialize after the run ends.  :class:`LiveServer` makes a
running ``dmra serve`` / ``dmra agents`` process inspectable *while it
runs*:

* ``GET /metrics`` — Prometheus text exposition snapshotted from the
  in-flight recorder.  The snapshot reads only the recorder's scalar
  aggregates (counters, gauges, histograms) — never the span event
  buffer — so scraping neither pauses the instrumented loop nor races
  its lazy span materialization.
* ``GET /healthz`` — liveness: 200 as soon as the server accepts.
* ``GET /readyz`` — readiness: 503 until the first metrics flush
  completes (set via :meth:`LiveServer.mark_ready` or the periodic
  flusher), 200 after.
* ``GET /flightz`` — the flight recorder's ring as a JSON postmortem
  document (404 when no flight recorder is attached).

The HTTP layer is a deliberately minimal HTTP/1.1 GET responder on
``asyncio.start_server`` — no framework dependency, a few kB of code,
close-delimited responses.  The server runs on its own daemon-thread
event loop, so the same class serves both the asyncio streaming service
and the synchronous dist supervisor without either embedding in the
other's loop.

Snapshot consistency: the instrumented loop mutates the recorder's
dicts while we read them.  Every read path here only iterates dicts of
scalars/aggregates and copies them (histograms via
:meth:`~repro.obs.histogram.Histogram.snapshot`); on the rare
``RuntimeError`` from a dict growing mid-iteration the scrape simply
retries.  Values may be one update stale — a scrape is a sample, not a
barrier — but after the loop quiesces a scrape equals the post-run
totals exactly, which is the acceptance contract.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

from repro.obs.metrics import (
    MetricFamily,
    MetricSample,
    MetricsDocument,
    metrics_from_trace,
    prometheus_exposition,
    write_metrics,
)
from repro.obs.telemetry import FlightRecorder, Recorder
from repro.obs.trace import Trace

__all__ = [
    "LiveServer",
    "http_get",
    "live_snapshot_document",
]


def live_snapshot_document(
    recorder: Recorder, manifest: dict | None = None
) -> MetricsDocument:
    """A metrics document from a recorder's *scalar* state, span-free.

    Reuses the trace-derivation naming (labeled counter folding,
    histogram families) by building a span-less :class:`Trace` from
    copies of the recorder's counter/gauge/timer/histogram dicts.
    Safe to call from another thread while the recorder is live; spans
    are never materialized.
    """
    for _ in range(64):
        try:
            shadow = Trace(
                meta={},
                spans=[],
                counters=dict(recorder.counters),
                gauges=dict(recorder.gauges),
                timers=dict(recorder.timers),
                histograms={
                    name: hist.snapshot()
                    for name, hist in recorder.histograms.items()
                },
            )
            break
        except RuntimeError:
            continue  # dict mutated during iteration: retry the copy
    else:  # pragma: no cover - would need a pathologically hot mutator
        raise RuntimeError("could not snapshot live recorder state")
    return metrics_from_trace(shadow, manifest=manifest)


def _flight_families(flight: FlightRecorder | None) -> list[MetricFamily]:
    if flight is None:
        return []
    return [
        MetricFamily(
            name="dmra_flight_entries",
            kind="gauge",
            help="Flight-recorder ring occupancy",
            samples=(
                MetricSample.of(len(flight), stat="held"),
                MetricSample.of(flight.total_noted, stat="noted"),
            ),
        )
    ]


class LiveServer:
    """Background HTTP endpoint over a live :class:`Recorder`.

    Start with :meth:`start`, stop with :meth:`stop` (both idempotent).
    ``listen`` is ``host:port``; port 0 binds an ephemeral port, the
    actual one is :attr:`port` after :meth:`start` returns.
    """

    def __init__(
        self,
        recorder: Recorder,
        listen: str = "127.0.0.1:0",
        manifest: dict | None = None,
        flight: FlightRecorder | None = None,
        flush_path: str | Path | None = None,
        flush_interval_s: float = 1.0,
    ) -> None:
        host, _, port_text = listen.rpartition(":")
        if not host or not port_text:
            raise ValueError(
                f"listen must be host:port, got {listen!r}"
            )
        self._host = host
        self._want_port = int(port_text)
        self._recorder = recorder
        self._manifest = manifest
        self._flight = flight
        self._flush_path = Path(flush_path) if flush_path else None
        self._flush_interval_s = max(flush_interval_s, 0.05)
        self._ready = threading.Event()
        self._started = threading.Event()
        self._stop_requested = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._start_error: BaseException | None = None
        self.port: int | None = None
        self.scrapes = 0
        self.flushes = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self, timeout_s: float = 10.0) -> "LiveServer":
        """Bind and serve on a daemon thread; returns once listening."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_thread, name="dmra-live", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("live endpoint did not start in time")
        if self._start_error is not None:
            raise RuntimeError(
                f"live endpoint failed to bind on "
                f"{self._host}:{self._want_port}: {self._start_error}"
            )
        return self

    def stop(self, final_flush: bool = True) -> None:
        """Shut the endpoint down and join its thread."""
        if self._thread is None:
            return
        self._stop_requested.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(lambda: None)  # wake the waiter
        self._thread.join(timeout=10.0)
        self._thread = None
        if final_flush and self._flush_path is not None:
            self.flush_to_disk()

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def mark_ready(self) -> None:
        """Flip ``/readyz`` to 200 (first flush / warmup completed)."""
        self._ready.set()

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    # -- snapshots ---------------------------------------------------------

    def snapshot_document(self) -> MetricsDocument:
        """The current scalar state as a metrics document."""
        doc = live_snapshot_document(self._recorder, self._manifest)
        extra = _flight_families(self._flight)
        if extra:
            doc = MetricsDocument(
                families=tuple(
                    sorted(
                        list(doc.families) + extra, key=lambda f: f.name
                    )
                ),
                manifest=doc.manifest,
            )
        return doc

    def flush_to_disk(self) -> None:
        """Write the current snapshot to the flush path and mark ready."""
        if self._flush_path is None:
            self.mark_ready()
            return
        write_metrics(self._flush_path, self.snapshot_document())
        self.flushes += 1
        self.mark_ready()

    # -- server internals --------------------------------------------------

    def _run_thread(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(loop))
        finally:
            loop.close()
            self._loop = None

    async def _serve(self, loop: asyncio.AbstractEventLoop) -> None:
        try:
            server = await asyncio.start_server(
                self._handle, self._host, self._want_port
            )
        except OSError as exc:
            self._start_error = exc
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        flusher = (
            asyncio.ensure_future(self._flush_loop())
            if self._flush_path is not None
            else None
        )
        try:
            while not self._stop_requested.is_set():
                await asyncio.sleep(0.05)
        finally:
            if flusher is not None:
                flusher.cancel()
            server.close()
            await server.wait_closed()

    async def _flush_loop(self) -> None:
        while True:
            try:
                await asyncio.to_thread(self.flush_to_disk)
            except Exception:  # noqa: BLE001 - flush must not kill serving
                pass
            await asyncio.sleep(self._flush_interval_s)

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            # Drain the remaining headers; GET requests have no body.
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            method = parts[0] if parts else ""
            if method != "GET":
                status, ctype, body = 405, "text/plain", b"method not allowed\n"
            else:
                status, ctype, body = self._route(path.partition("?")[0])
            payload = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1") + body
            writer.write(payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, path: str) -> tuple[int, str, bytes]:
        if path == "/metrics":
            self.scrapes += 1
            text = prometheus_exposition(self.snapshot_document())
            return 200, "text/plain", text.encode()
        if path == "/healthz":
            return 200, "text/plain", b"ok\n"
        if path == "/readyz":
            if self._ready.is_set():
                return 200, "text/plain", b"ready\n"
            return 503, "text/plain", b"not ready (no flush yet)\n"
        if path == "/flightz":
            if self._flight is None:
                return 404, "text/plain", b"no flight recorder attached\n"
            body = json.dumps(
                self._flight.dump(), sort_keys=True, indent=2
            ).encode()
            return 200, "application/json", body + b"\n"
        return 404, "text/plain", b"not found\n"


_REASONS = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


def http_get(url: str, timeout_s: float = 5.0) -> tuple[int, str]:
    """Tiny dependency-free HTTP GET for tests and smoke scripts.

    Returns ``(status, body)``.  Understands only what
    :class:`LiveServer` emits (close-delimited HTTP/1.1 responses).
    """
    import socket
    from urllib.parse import urlparse

    parsed = urlparse(url)
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    path = parsed.path or "/"
    deadline = time.monotonic() + timeout_s
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        chunks = []
        while True:
            sock.settimeout(max(deadline - time.monotonic(), 0.05))
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1])
    return status, body.decode()
