"""Typed domain metrics: the ``dmra.metrics/1`` document.

The trace layer (:mod:`repro.obs.trace`) records *what happened*; this
module turns a run into *answers*: which SP earned what, which BS's
CRU/RRB pools saturated, how Alg. 1 converged, what the online
simulation's occupancy looked like.  Metrics live in a small typed
model —

* :class:`MetricSample` — one ``(labels, value)`` point;
* :class:`MetricFamily` — a named, typed (counter/gauge) set of
  samples with help text, Prometheus-style;
* :class:`MetricsDocument` — all families of one run plus its
  :mod:`manifest <repro.obs.manifest>` under the versioned schema
  ``dmra.metrics/1``

— derived from a live outcome (:func:`metrics_from_outcome`,
:func:`metrics_from_online`) or from a recorded ``dmra.trace/1`` file
(:func:`metrics_from_trace`), and exported two ways: a canonical JSON
document that round-trips exactly (``write -> parse -> re-emit`` is
byte-identical, like the trace format) and Prometheus text exposition
(:func:`prometheus_exposition`) for scrape endpoints and dashboards.

``dmra trace diff`` (:mod:`repro.obs.diff`) compares two of these
documents family by family.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.histogram import Histogram
from repro.obs.trace import Trace

__all__ = [
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_V2",
    "MetricFamily",
    "MetricSample",
    "MetricsDocument",
    "histogram_family",
    "metrics_from_online",
    "metrics_from_outcome",
    "metrics_from_stream",
    "metrics_from_trace",
    "metrics_json",
    "parse_exposition",
    "parse_metrics",
    "prometheus_exposition",
    "read_metrics",
    "validate_histogram_family",
    "write_metrics",
]

#: Schema identifier; bump the suffix on any incompatible layout change.
METRICS_SCHEMA = "dmra.metrics/1"

#: The v2 schema adds the ``histogram`` family kind.  A document with
#: no histogram family serializes as v1 byte-identically to before, so
#: existing artifacts (notably the committed metrics-gate baseline)
#: stay valid; the reader accepts both.
METRICS_SCHEMA_V2 = "dmra.metrics/2"

_KNOWN_METRICS_SCHEMAS = (METRICS_SCHEMA, METRICS_SCHEMA_V2)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_KINDS = ("counter", "gauge", "histogram")

#: Flat telemetry histogram prefixes that encode an entity id as their
#: last dot-segment; trace derivation folds them into one labeled
#: histogram family (e.g. ``dist.phase_wall_s.bcast`` becomes a
#: ``phase="bcast"`` label group of ``dmra_dist_phase_wall_s``).
_LABELED_HISTOGRAM_PREFIXES = {
    "stream.event_latency_s": "event",
    "dist.phase_wall_s": "phase",
    "dist.node_msgs": "phase",
}

#: Flat telemetry counter prefixes that encode an entity id as their
#: last dot-segment; trace derivation folds them into labeled families.
_LABELED_COUNTER_PREFIXES = {
    "online.sp_profit": "sp",
    "scale.shard_rounds": "shard",
    "scale.shard_evictions": "shard",
    "stream.sp_profit": "sp",
    "stream.shard_events": "shard",
    "dist.messages": "kind",
    "dist.bytes": "kind",
    "dist.sp_requests": "sp",
    "dist.sp_grants": "sp",
    "dist.sp_retries": "sp",
    "dist.faults": "event",
}


@dataclass(frozen=True)
class MetricSample:
    """One measured point: a label set and a float value."""

    labels: tuple[tuple[str, str], ...]
    value: float

    @staticmethod
    def of(value: float, **labels: object) -> "MetricSample":
        """Build a sample with sorted, stringified labels."""
        return MetricSample(
            labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
            value=float(value),
        )

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


@dataclass(frozen=True)
class MetricFamily:
    """A named set of samples sharing a type and meaning."""

    name: str
    kind: str
    help: str
    samples: tuple[MetricSample, ...]
    unit: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ConfigurationError(
                f"invalid metric family name {self.name!r}"
            )
        if self.kind not in _VALID_KINDS:
            raise ConfigurationError(
                f"family {self.name}: kind must be one of {_VALID_KINDS}, "
                f"got {self.kind!r}"
            )

    def sample(self, **labels: object) -> float:
        """The value at an exact label set; raises when absent."""
        wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
        for sample in self.samples:
            if sample.labels == wanted:
                return sample.value
        raise ConfigurationError(
            f"family {self.name} has no sample with labels {dict(wanted)}"
        )


@dataclass(frozen=True)
class MetricsDocument:
    """Every metric family of one run, plus the run's manifest."""

    families: tuple[MetricFamily, ...]
    manifest: dict | None = None

    def family(self, name: str) -> MetricFamily:
        """The family with the given name; raises when absent."""
        for fam in self.families:
            if fam.name == name:
                return fam
        raise ConfigurationError(f"no metric family named {name!r}")

    def family_names(self) -> tuple[str, ...]:
        """All family names, in document order."""
        return tuple(fam.name for fam in self.families)

    def has_family(self, name: str) -> bool:
        """Whether a family with the given name exists."""
        return any(fam.name == name for fam in self.families)


# ----------------------------------------------------------------------
# Canonical JSON serialization (exact round-trip)
# ----------------------------------------------------------------------


def metrics_json(doc: MetricsDocument) -> str:
    """Serialize a document to its canonical JSON text.

    Families sort by name, samples by label set; keys sort and
    separators are compact, so the encoding is unique for a given
    document and ``metrics_json(parse_metrics(metrics_json(d)))``
    reproduces the text byte for byte.
    """
    schema = (
        METRICS_SCHEMA_V2
        if any(f.kind == "histogram" for f in doc.families)
        else METRICS_SCHEMA
    )
    payload = {
        "schema": schema,
        "manifest": doc.manifest,
        "families": [
            {
                "name": fam.name,
                "kind": fam.kind,
                "help": fam.help,
                "unit": fam.unit,
                "samples": [
                    {"labels": dict(sample.labels), "value": sample.value}
                    for sample in sorted(fam.samples, key=lambda s: s.labels)
                ],
            }
            for fam in sorted(doc.families, key=lambda f: f.name)
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def parse_metrics(text: str) -> MetricsDocument:
    """Parse canonical JSON text back into a :class:`MetricsDocument`.

    Raises :class:`ConfigurationError` on malformed JSON, a
    missing/unknown schema, invalid family kinds/names, or non-numeric
    sample values.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"metrics document: malformed JSON ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(
            "metrics document must be a JSON object"
        )
    schema = payload.get("schema")
    if schema not in _KNOWN_METRICS_SCHEMAS:
        raise ConfigurationError(
            f"unsupported metrics schema {schema!r}; this reader "
            f"understands "
            f"{', '.join(repr(s) for s in _KNOWN_METRICS_SCHEMAS)}"
        )
    families = []
    for raw in payload.get("families", []):
        try:
            samples = tuple(
                MetricSample(
                    labels=tuple(sorted(
                        (str(k), str(v))
                        for k, v in raw_sample["labels"].items()
                    )),
                    value=float(raw_sample["value"]),
                )
                for raw_sample in raw["samples"]
            )
            families.append(MetricFamily(
                name=raw["name"],
                kind=raw["kind"],
                help=raw.get("help", ""),
                unit=raw.get("unit", ""),
                samples=samples,
            ))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(
                f"metrics document: malformed family entry ({exc!r})"
            ) from exc
    manifest = payload.get("manifest")
    if manifest is not None and not isinstance(manifest, dict):
        raise ConfigurationError("metrics manifest must be an object")
    return MetricsDocument(families=tuple(families), manifest=manifest)


def write_metrics(path: str | Path, doc: MetricsDocument) -> Path:
    """Write a document as canonical JSON (one line, trailing newline)."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(metrics_json(doc) + "\n")
    return target


def read_metrics(path: str | Path) -> MetricsDocument:
    """Read and parse a metrics JSON file."""
    source = Path(path)
    try:
        text = source.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {source}: {exc}") from exc
    return parse_metrics(text)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help_text(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_sample(name: str, labels, value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(val)}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _le_sort_key(le: str) -> float:
    return float("inf") if le == "+Inf" else float(le)


def _histogram_groups(fam: MetricFamily) -> dict:
    """Histogram samples regrouped by their extra (non-le/stat) labels.

    Returns ``{extra_labels: {"buckets": [(le, value)...],
    "sum": float|None, "count": float|None}}`` with buckets sorted by
    numeric ``le`` (``+Inf`` last), groups sorted by label set.
    """
    groups: dict = {}
    for sample in fam.samples:
        labels = dict(sample.labels)
        le = labels.pop("le", None)
        stat = labels.pop("stat", None)
        extra = tuple(sorted(labels.items()))
        group = groups.setdefault(
            extra, {"buckets": [], "sum": None, "count": None}
        )
        if le is not None:
            group["buckets"].append((le, sample.value))
        elif stat in ("sum", "count"):
            group[stat] = sample.value
        else:
            raise ConfigurationError(
                f"histogram family {fam.name}: sample needs an 'le' "
                f"bucket label or stat=sum/count, got "
                f"{dict(sample.labels)}"
            )
    for group in groups.values():
        group["buckets"].sort(key=lambda b: _le_sort_key(b[0]))
    return dict(sorted(groups.items()))


def prometheus_exposition(doc: MetricsDocument) -> str:
    """Render a document in the Prometheus text exposition format.

    One ``# HELP`` / ``# TYPE`` pair per family (HELP first, escaped),
    then one line per sample with its sorted label set.  Histogram
    families render as the conventional ``<name>_bucket`` (cumulative,
    sorted by numeric ``le`` ending at ``+Inf``), ``<name>_sum``, and
    ``<name>_count`` series per label group.  Suitable for a textfile
    collector or a scrape endpoint; :func:`parse_exposition` reads it
    back.
    """
    lines: list[str] = []
    for fam in sorted(doc.families, key=lambda f: f.name):
        if fam.help:
            lines.append(
                f"# HELP {fam.name} {_escape_help_text(fam.help)}"
            )
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        if fam.kind == "histogram":
            for extra, group in _histogram_groups(fam).items():
                for le, value in group["buckets"]:
                    labels = tuple(sorted(extra + (("le", le),)))
                    lines.append(
                        _render_sample(f"{fam.name}_bucket", labels, value)
                    )
                if group["sum"] is not None:
                    lines.append(_render_sample(
                        f"{fam.name}_sum", extra, group["sum"]
                    ))
                if group["count"] is not None:
                    lines.append(_render_sample(
                        f"{fam.name}_count", extra, group["count"]
                    ))
            continue
        for sample in sorted(fam.samples, key=lambda s: s.labels):
            lines.append(
                _render_sample(fam.name, sample.labels, sample.value)
            )
    return "\n".join(lines) + ("\n" if lines else "")


_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)'
)
_UNESCAPE = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _unescape_label_value(value: str) -> str:
    return re.sub(
        r"\\.", lambda m: _UNESCAPE.get(m.group(0), m.group(0)), value
    )


def _parse_sample_line(raw: str, line_number: int) -> tuple[str, tuple, float]:
    """``name{k="v"} 1.5`` -> ``(name, ((k, v),), 1.5)``."""
    brace = raw.find("{")
    if brace == -1:
        try:
            name, value = raw.split()
        except ValueError:
            raise ConfigurationError(
                f"exposition line {line_number}: malformed sample {raw!r}"
            ) from None
        return name, (), float(value)
    name = raw[:brace]
    close = raw.rfind("}")
    if close == -1:
        raise ConfigurationError(
            f"exposition line {line_number}: unterminated label set"
        )
    label_text, value_text = raw[brace + 1:close], raw[close + 1:].strip()
    labels = []
    pos = 0
    while pos < len(label_text):
        match = _LABEL_RE.match(label_text, pos)
        if match is None:
            raise ConfigurationError(
                f"exposition line {line_number}: malformed label set "
                f"{label_text!r}"
            )
        labels.append((match.group(1), _unescape_label_value(match.group(2))))
        pos = match.end()
    try:
        value = float(value_text)
    except ValueError:
        raise ConfigurationError(
            f"exposition line {line_number}: non-numeric value "
            f"{value_text!r}"
        ) from None
    return name, tuple(sorted(labels)), value


def parse_exposition(text: str) -> MetricsDocument:
    """Parse Prometheus text exposition back into a document.

    The inverse of :func:`prometheus_exposition` for documents this
    module renders: HELP text is unescaped, histogram ``_bucket`` /
    ``_sum`` / ``_count`` series fold back into one ``histogram``
    family (buckets keep their ``le`` label; sum and count become
    ``stat``-labeled samples).  Units and the manifest do not survive
    the text format and come back empty/None.  Every sample must be
    covered by a preceding ``# TYPE`` declaration.
    """
    helps: dict[str, str] = {}
    kinds: dict[str, str] = {}
    samples: dict[str, list[MetricSample]] = {}
    order: list[str] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith("# HELP "):
            name, _, help_text = raw[len("# HELP "):].partition(" ")
            helps[name] = _unescape_label_value(help_text)
            continue
        if raw.startswith("# TYPE "):
            name, _, kind = raw[len("# TYPE "):].partition(" ")
            kind = kind.strip()
            if kind not in _VALID_KINDS:
                raise ConfigurationError(
                    f"exposition line {line_number}: unsupported type "
                    f"{kind!r} for {name}"
                )
            kinds[name] = kind
            if name not in order:
                order.append(name)
            samples.setdefault(name, [])
            continue
        if raw.startswith("#"):
            continue  # comments
        name, labels, value = _parse_sample_line(raw, line_number)
        family = name
        if name not in kinds:
            for suffix, stat in (
                ("_bucket", None), ("_sum", "sum"), ("_count", "count"),
            ):
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and kinds.get(base) == "histogram":
                    family = base
                    if stat is not None:
                        labels = tuple(sorted(labels + (("stat", stat),)))
                    break
            else:
                raise ConfigurationError(
                    f"exposition line {line_number}: sample {name!r} has "
                    f"no # TYPE declaration"
                )
        samples.setdefault(family, []).append(
            MetricSample(labels=labels, value=value)
        )
    families = tuple(
        MetricFamily(
            name=name, kind=kinds[name], help=helps.get(name, ""),
            samples=tuple(samples.get(name, ())),
        )
        for name in order
    )
    return MetricsDocument(families=families, manifest=None)


# ----------------------------------------------------------------------
# Histogram families
# ----------------------------------------------------------------------


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def histogram_family(
    name: str,
    help: str,
    hists: Histogram | dict,
    unit: str = "",
) -> MetricFamily:
    """Build a ``histogram`` family from telemetry histograms.

    ``hists`` is either one unlabeled :class:`Histogram` or a mapping
    ``{(label_name, label_value): Histogram}`` — in practice callers
    pass ``{("phase", "bcast"): h, ...}``.  The family's samples are
    the cumulative ``le`` buckets (ending at ``+Inf`` == count) plus
    ``stat=sum`` / ``stat=count`` samples per label group, exactly the
    shape the text exposition renders as ``_bucket`` / ``_sum`` /
    ``_count``.
    """
    if isinstance(hists, Histogram):
        items: list[tuple[tuple, Histogram]] = [((), hists)]
    else:
        items = [((key,), h) for key, h in sorted(hists.items())]
    samples: list[MetricSample] = []
    for extra, hist in items:
        extra_labels = dict(extra)
        for bound, cumulative in hist.cumulative():
            samples.append(
                MetricSample.of(
                    cumulative, le=_format_le(bound), **extra_labels
                )
            )
        samples.append(MetricSample.of(hist.sum, stat="sum", **extra_labels))
        samples.append(
            MetricSample.of(hist.count, stat="count", **extra_labels)
        )
    return MetricFamily(
        name=name, kind="histogram", help=help,
        samples=tuple(samples), unit=unit,
    )


def validate_histogram_family(fam: MetricFamily) -> None:
    """Check the Prometheus histogram invariants; raises on violation.

    Per label group: buckets are cumulative (non-decreasing in ``le``
    order), a ``+Inf`` bucket exists and equals the ``stat=count``
    sample, both ``stat=sum`` and ``stat=count`` are present, and an
    empty histogram has zero sum.
    """
    if fam.kind != "histogram":
        raise ConfigurationError(
            f"family {fam.name} is {fam.kind!r}, not histogram"
        )
    groups = _histogram_groups(fam)
    if not groups:
        raise ConfigurationError(
            f"histogram family {fam.name} has no samples"
        )
    for extra, group in groups.items():
        where = f"{fam.name}{dict(extra) if extra else ''}"
        buckets = group["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            raise ConfigurationError(
                f"{where}: missing +Inf bucket"
            )
        running = None
        for le, value in buckets:
            if running is not None and value < running:
                raise ConfigurationError(
                    f"{where}: bucket le={le} not cumulative "
                    f"({value} < {running})"
                )
            running = value
        if group["sum"] is None or group["count"] is None:
            raise ConfigurationError(
                f"{where}: missing stat=sum or stat=count sample"
            )
        if buckets[-1][1] != group["count"]:
            raise ConfigurationError(
                f"{where}: +Inf bucket ({buckets[-1][1]}) != count "
                f"({group['count']})"
            )
        if group["count"] == 0 and group["sum"] != 0:
            raise ConfigurationError(
                f"{where}: empty histogram with nonzero sum"
            )


# ----------------------------------------------------------------------
# Derivation: live allocation outcome
# ----------------------------------------------------------------------


@dataclass
class _Builder:
    """Accumulates families in derivation order, then freezes."""

    families: list[MetricFamily] = field(default_factory=list)

    def add(
        self,
        name: str,
        kind: str,
        help: str,
        samples: list[MetricSample],
        unit: str = "",
    ) -> None:
        self.families.append(MetricFamily(
            name=name, kind=kind, help=help,
            samples=tuple(samples), unit=unit,
        ))

    def scalar(self, name: str, kind: str, help: str, value: float,
               unit: str = "") -> None:
        self.add(name, kind, help, [MetricSample.of(value)], unit=unit)

    def document(self, manifest: dict | None) -> MetricsDocument:
        return MetricsDocument(
            families=tuple(
                sorted(self.families, key=lambda f: f.name)
            ),
            manifest=manifest,
        )


def metrics_from_outcome(
    network,
    assignment,
    pricing,
    manifest: dict | None = None,
    wall_time_s: float | None = None,
) -> MetricsDocument:
    """Derive the domain metrics of one static allocation.

    Covers the paper's reported quantities (per-SP profit and
    forwarded traffic — Figs. 2--7) plus the saturation picture: per-BS
    and per-service CRU/RRB utilization, edge/cloud split, and the
    Alg. 1 round count.
    """
    from repro.sim.metrics import (
        compute_metrics,
        per_bs_utilization,
        per_service_cru_utilization,
        per_sp_forwarded_traffic,
    )

    metrics = compute_metrics(network, assignment, pricing)
    build = _Builder()
    build.scalar(
        "dmra_total_profit", "gauge",
        "Total SP profit of the allocation (Def. 1 TPM objective)",
        metrics.total_profit,
    )
    build.add(
        "dmra_sp_profit", "gauge", "Per-SP profit",
        [
            MetricSample.of(profit, sp=sp_id)
            for sp_id, profit in sorted(metrics.profit_by_sp.items())
        ],
    )
    forwarded = per_sp_forwarded_traffic(network, assignment)
    build.add(
        "dmra_sp_forwarded_traffic_bps", "gauge",
        "Per-SP traffic forwarded to the remote cloud",
        [
            MetricSample.of(bps, sp=sp_id)
            for sp_id, bps in sorted(forwarded.items())
        ],
        unit="bps",
    )
    build.scalar(
        "dmra_edge_served", "gauge", "UEs served at the edge",
        metrics.edge_served,
    )
    build.scalar(
        "dmra_cloud_forwarded", "gauge", "UEs forwarded to the cloud",
        metrics.cloud_forwarded,
    )
    build.scalar(
        "dmra_forwarded_traffic_bps", "gauge",
        "Total traffic forwarded to the remote cloud",
        metrics.forwarded_traffic_bps, unit="bps",
    )
    build.scalar(
        "dmra_same_sp_fraction", "gauge",
        "Fraction of edge-served UEs on their subscribed SP's BSs",
        metrics.same_sp_fraction,
    )
    utilization = per_bs_utilization(network, assignment)
    build.add(
        "dmra_bs_cru_utilization", "gauge",
        "Per-BS CRU pool utilization",
        [
            MetricSample.of(cru, bs=bs_id)
            for bs_id, (cru, _rrb) in sorted(utilization.items())
        ],
    )
    build.add(
        "dmra_bs_rrb_utilization", "gauge",
        "Per-BS RRB pool utilization",
        [
            MetricSample.of(rrb, bs=bs_id)
            for bs_id, (_cru, rrb) in sorted(utilization.items())
        ],
    )
    build.add(
        "dmra_service_cru_utilization", "gauge",
        "Per-service CRU utilization across all hosting BSs",
        [
            MetricSample.of(util, service=service_id)
            for service_id, util in sorted(
                per_service_cru_utilization(network, assignment).items()
            )
        ],
    )
    build.scalar(
        "dmra_match_rounds", "gauge",
        "Productive Alg. 1 rounds until convergence",
        metrics.rounds,
    )
    if wall_time_s is not None:
        build.scalar(
            "dmra_wall_seconds", "gauge",
            "Allocator wall time (timing; ignored by diffs by default)",
            wall_time_s, unit="seconds",
        )
    return build.document(manifest)


# ----------------------------------------------------------------------
# Derivation: optimality-gap certificates (repro.bound)
# ----------------------------------------------------------------------


def metrics_from_certificates(
    certificates,
    baseline_profits: dict | None = None,
    manifest: dict | None = None,
) -> MetricsDocument:
    """Derive gap-certification families from :mod:`repro.bound` output.

    One sample per bound method (``lp`` / ``lagrangian``) for the upper
    bound, the certified gap fraction, and the iteration count; plus one
    sample per strategic baseline allocator's achieved profit.  These
    are the families the ``gap-gate`` CI job diffs against its committed
    baseline — a gap that widens is a solution-quality regression even
    when every unit test still passes.
    """
    certificates = list(certificates)
    if not certificates:
        raise ConfigurationError(
            "metrics_from_certificates needs at least one certificate"
        )
    build = _Builder()
    build.add(
        "dmra_bound_upper", "gauge",
        "Certified upper bound on the TPM objective (Def. 1), per method",
        [
            MetricSample.of(cert.upper_bound, method=cert.method)
            for cert in certificates
        ],
    )
    build.add(
        "dmra_gap_fraction", "gauge",
        "Certified optimality gap: (upper - incumbent) / upper, per method",
        [
            MetricSample.of(cert.gap_fraction, method=cert.method)
            for cert in certificates
        ],
    )
    build.add(
        "dmra_bound_iterations", "gauge",
        "Bound-solver iterations (subgradient steps; 1 for the LP)",
        [
            MetricSample.of(cert.iterations, method=cert.method)
            for cert in certificates
        ],
    )
    build.add(
        "dmra_bound_converged", "gauge",
        "Whether the bound solver converged (1) or hit its budget (0)",
        [
            MetricSample.of(1.0 if cert.converged else 0.0, method=cert.method)
            for cert in certificates
        ],
    )
    build.add(
        "dmra_wall_bound_seconds", "gauge",
        "Bound-solver wall time (timing; ignored by diffs by default)",
        [
            MetricSample.of(cert.wall_time_s, method=cert.method)
            for cert in certificates
        ],
        unit="seconds",
    )
    build.scalar(
        "dmra_incumbent_profit", "gauge",
        "The feasible profit the gap is certified against",
        certificates[0].incumbent_profit,
    )
    if baseline_profits:
        build.add(
            "dmra_baseline_profit", "gauge",
            "Achieved profit of each comparison allocator",
            [
                MetricSample.of(profit, allocator=name)
                for name, profit in sorted(baseline_profits.items())
            ],
        )
    return build.document(manifest)


# ----------------------------------------------------------------------
# Derivation: online simulation outcome
# ----------------------------------------------------------------------


def metrics_from_online(
    outcome, manifest: dict | None = None
) -> MetricsDocument:
    """Derive operator metrics from one online-simulation outcome.

    Blocking probability, profit throughput, per-SP admitted profit,
    and the occupancy series the load-aware evaluations plot:
    time-averaged and peak edge/cloud occupancy and RRB utilization.
    """
    build = _Builder()
    build.scalar(
        "dmra_online_arrivals_total", "counter", "Tasks that arrived",
        outcome.arrivals,
    )
    build.scalar(
        "dmra_online_admitted_edge_total", "counter",
        "Tasks admitted at the edge", outcome.admitted_edge,
    )
    build.scalar(
        "dmra_online_admitted_cloud_total", "counter",
        "Tasks the edge could not absorb", outcome.admitted_cloud,
    )
    build.scalar(
        "dmra_online_blocking_probability", "gauge",
        "Fraction of tasks forwarded to the cloud",
        outcome.blocking_probability,
    )
    build.scalar(
        "dmra_online_profit_rate_per_s", "gauge",
        "Admitted profit per simulated second",
        outcome.profit_rate_per_s,
    )
    build.add(
        "dmra_online_sp_profit", "gauge",
        "Per-SP admitted profit over the horizon",
        [
            MetricSample.of(profit, sp=sp_id)
            for sp_id, profit in sorted(outcome.profit_by_sp.items())
        ],
    )
    horizon = outcome.horizon_s
    for series, base, help_text in (
        (outcome.edge_active, "dmra_online_edge_active",
         "Concurrent edge-served tasks"),
        (outcome.cloud_active, "dmra_online_cloud_active",
         "Concurrent cloud-forwarded tasks"),
        (outcome.rrb_utilization, "dmra_online_rrb_utilization",
         "Aggregate RRB pool occupancy"),
    ):
        build.add(
            base, "gauge", f"{help_text} (occupancy series summary)",
            [
                MetricSample.of(series.time_average(horizon), stat="mean"),
                MetricSample.of(series.peak, stat="peak"),
                MetricSample.of(series.last_value, stat="last"),
            ],
        )
    return build.document(manifest)


# ----------------------------------------------------------------------
# Derivation: streaming replay outcome
# ----------------------------------------------------------------------


def metrics_from_stream(
    outcome, manifest: dict | None = None
) -> MetricsDocument:
    """Derive operator metrics from one streaming replay outcome.

    Every family here is an *outcome* fact — counters, profits,
    occupancy — that the equivalence invariant makes identical between
    the incremental engine and the from-scratch reference, so the CI
    gate can ``dmra trace diff`` two of these documents across modes.
    The only mode-sensitive quantities (wall-clock throughput) live
    under the ``dmra_wall_`` prefix, which diffs ignore by default.
    """
    build = _Builder()
    build.scalar(
        "dmra_stream_events_total", "counter",
        "Tape events processed (arrivals + departures + moves)",
        outcome.events_processed,
    )
    build.scalar(
        "dmra_stream_arrivals_total", "counter", "Tasks that arrived",
        outcome.arrivals,
    )
    build.scalar(
        "dmra_stream_departures_total", "counter", "Tasks that departed",
        outcome.departures,
    )
    build.scalar(
        "dmra_stream_moves_total", "counter",
        "Mobility deltas applied", outcome.moves,
    )
    build.scalar(
        "dmra_stream_cancelled_total", "counter",
        "Arrivals departed before their first re-match",
        outcome.cancelled,
    )
    build.scalar(
        "dmra_stream_admitted_edge_total", "counter",
        "Tasks first admitted at the edge", outcome.admitted_edge,
    )
    build.scalar(
        "dmra_stream_admitted_cloud_total", "counter",
        "Tasks the edge could not absorb on arrival",
        outcome.admitted_cloud,
    )
    build.scalar(
        "dmra_stream_readmitted_total", "counter",
        "Cloud or displaced tasks later (re-)admitted to the edge",
        outcome.readmitted,
    )
    build.scalar(
        "dmra_stream_displaced_total", "counter",
        "Edge/cloud tasks displaced by a mobility delta",
        outcome.displaced,
    )
    build.scalar(
        "dmra_stream_blocking_probability", "gauge",
        "Fraction of admitted tasks forwarded to the cloud",
        outcome.blocking_probability,
    )
    build.scalar(
        "dmra_stream_profit_rate_per_s", "gauge",
        "Admitted profit per simulated second",
        outcome.profit_rate_per_s,
    )
    build.add(
        "dmra_stream_sp_profit", "gauge",
        "Per-SP admitted profit over the horizon",
        [
            MetricSample.of(profit, sp=sp_id)
            for sp_id, profit in sorted(outcome.profit_by_sp.items())
        ],
    )
    build.add(
        "dmra_stream_shard_events", "counter",
        "Tape events routed to each shard",
        [
            MetricSample.of(count, shard=shard_id)
            for shard_id, count in enumerate(outcome.shard_events)
        ],
    )
    build.scalar(
        "dmra_stream_peak_edge_active", "gauge",
        "Peak concurrent edge-served tasks", outcome.peak_edge_active,
    )
    build.scalar(
        "dmra_stream_peak_active", "gauge",
        "Peak concurrent active tasks (edge + cloud)",
        outcome.peak_active,
    )
    horizon = outcome.horizon_s
    for series, base, help_text in (
        (outcome.edge_active, "dmra_stream_edge_active",
         "Concurrent edge-served tasks"),
        (outcome.cloud_active, "dmra_stream_cloud_active",
         "Concurrent cloud-forwarded tasks"),
        (outcome.rrb_utilization, "dmra_stream_rrb_utilization",
         "Aggregate RRB pool occupancy"),
    ):
        build.add(
            base, "gauge", f"{help_text} (occupancy series summary)",
            [
                MetricSample.of(series.time_average(horizon), stat="mean"),
                MetricSample.of(series.peak, stat="peak"),
                MetricSample.of(series.last_value, stat="last"),
            ],
        )
    # Wall-clock throughput: mode-dependent by construction, so it
    # lives under the diff-ignored dmra_wall_ prefix.
    build.scalar(
        "dmra_wall_stream_events_per_s", "gauge",
        "Sustained events per wall second (timing; diffs ignore)",
        outcome.events_per_s,
    )
    return build.document(manifest)


# ----------------------------------------------------------------------
# Derivation: recorded trace
# ----------------------------------------------------------------------


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = f"m_{cleaned}"
    return cleaned


def _split_labeled_counter(name: str) -> tuple[str, str, str] | None:
    """``online.sp_profit.3`` -> ``(online.sp_profit, sp, 3)``, or None."""
    prefix, _, tail = name.rpartition(".")
    label = _LABELED_COUNTER_PREFIXES.get(prefix)
    if label is not None and tail:
        return prefix, label, tail
    return None


def metrics_from_trace(
    trace: Trace, manifest: dict | None = None
) -> MetricsDocument:
    """Derive a metrics document from a recorded ``dmra.trace/1`` trace.

    * counters become ``*_total`` counter families (flat names with a
      trailing entity id — e.g. ``online.sp_profit.3`` — fold into one
      labeled family);
    * gauges become gauge families with ``stat`` label
      (last/min/max/samples);
    * timers become ``dmra_timer_seconds_total`` /
      ``dmra_timer_events_total`` (ignored by diffs by default —
      wall-clock does not transfer across runs);
    * ``match.round`` spans aggregate into per-round convergence series
      (proposals, acceptances, evictions, cloud fallbacks by round
      number), and ``match`` spans into the convergence-round
      distribution.

    ``manifest`` defaults to the one embedded in the trace header meta.
    """
    if manifest is None:
        embedded = trace.meta.get("manifest")
        manifest = embedded if isinstance(embedded, dict) else None
    build = _Builder()

    labeled: dict[str, list[MetricSample]] = {}
    for name in sorted(trace.counters):
        value = trace.counters[name]
        split = _split_labeled_counter(name)
        if split is not None:
            prefix, label, entity = split
            labeled.setdefault(prefix, []).append(
                MetricSample.of(value, **{label: entity})
            )
            continue
        build.scalar(
            f"dmra_{_sanitize(name)}_total", "counter",
            f"Telemetry counter {name}", value,
        )
    for prefix in sorted(labeled):
        build.add(
            f"dmra_{_sanitize(prefix)}_total", "counter",
            f"Telemetry counter family {prefix}.<id>", labeled[prefix],
        )

    for name in sorted(trace.gauges):
        stat = trace.gauges[name]
        build.add(
            f"dmra_{_sanitize(name)}", "gauge",
            f"Telemetry gauge {name}",
            [
                MetricSample.of(stat.value, stat="last"),
                MetricSample.of(stat.min, stat="min"),
                MetricSample.of(stat.max, stat="max"),
                MetricSample.of(stat.count, stat="samples"),
            ],
        )

    if trace.timers:
        build.add(
            "dmra_timer_seconds_total", "counter",
            "Total time in each telemetry timer (timing; diffs ignore)",
            [
                MetricSample.of(trace.timers[name].total_s, timer=name)
                for name in sorted(trace.timers)
            ],
            unit="seconds",
        )
        build.add(
            "dmra_timer_events_total", "counter",
            "Events measured by each telemetry timer",
            [
                MetricSample.of(trace.timers[name].count, timer=name)
                for name in sorted(trace.timers)
            ],
        )

    if trace.histograms:
        labeled_hists: dict[str, dict[tuple[str, str], Histogram]] = {}
        for name in sorted(trace.histograms):
            hist = trace.histograms[name]
            prefix, _, tail = name.rpartition(".")
            label = _LABELED_HISTOGRAM_PREFIXES.get(prefix)
            if label is not None and tail:
                labeled_hists.setdefault(prefix, {})[(label, tail)] = hist
                continue
            build.families.append(histogram_family(
                f"dmra_{_sanitize(name)}",
                f"Telemetry histogram {name}", hist,
            ))
        for prefix in sorted(labeled_hists):
            build.families.append(histogram_family(
                f"dmra_{_sanitize(prefix)}",
                f"Telemetry histogram family {prefix}.<id>",
                labeled_hists[prefix],
            ))

    round_fields = {
        "proposals": "dmra_match_round_proposals",
        "accepted": "dmra_match_round_accepted",
        "evictions": "dmra_match_round_evictions",
        "newly_cloud": "dmra_match_round_cloud_fallbacks",
        "fu_retired": "dmra_match_round_fu_retired",
    }
    per_round: dict[str, dict[int, float]] = {
        attr: {} for attr in round_fields
    }
    rounds_per_match: list[float] = []
    for span in trace.all_spans():
        if span.name == "match":
            rounds = span.attrs.get("rounds")
            if rounds is not None:
                rounds_per_match.append(float(rounds))
        elif span.name == "match.round":
            round_number = span.attrs.get("round")
            if round_number is None:
                continue
            for attr, series in per_round.items():
                value = span.attrs.get(attr)
                if value is not None:
                    series[int(round_number)] = (
                        series.get(int(round_number), 0.0) + value
                    )
    for attr, family_name in round_fields.items():
        series = per_round[attr]
        if series:
            build.add(
                family_name, "gauge",
                f"Alg. 1 {attr} by round number (summed over engine runs)",
                [
                    MetricSample.of(value, round=round_number)
                    for round_number, value in sorted(series.items())
                ],
            )
    if rounds_per_match:
        build.add(
            "dmra_match_convergence_rounds", "gauge",
            "Productive Alg. 1 rounds per engine run",
            [
                MetricSample.of(max(rounds_per_match), stat="max"),
                MetricSample.of(min(rounds_per_match), stat="min"),
                MetricSample.of(
                    sum(rounds_per_match) / len(rounds_per_match),
                    stat="mean",
                ),
                MetricSample.of(len(rounds_per_match), stat="runs"),
            ],
        )
    return build.document(manifest)
