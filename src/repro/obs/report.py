"""Human-readable rendering of a JSONL trace (the ``dmra trace`` report).

Renders the span tree with wall times and attributes, then the metric
tables (counters, timers, gauges, histograms).  Used by ``dmra trace
<file>`` / ``dmra trace report`` and importable for notebooks/tests via
:func:`render_trace_report`; ``dmra trace report --top N`` adds the
hottest-spans table from :func:`render_top_spans`.
"""

from __future__ import annotations

from repro.obs.telemetry import SpanRecord
from repro.obs.trace import Trace

__all__ = ["render_top_spans", "render_trace_report"]


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def _render_span(
    span: SpanRecord, depth: int, min_ms: float, lines: list[str]
) -> int:
    """Append one span (and children) to ``lines``; returns spans hidden."""
    hidden = 0
    duration_ms = span.duration_s * 1e3
    if duration_ms < min_ms and depth > 0:
        return sum(1 for _ in span.walk())
    indent = "  " * depth
    label = f"{indent}{span.name}"
    lines.append(f"{label:<44} {duration_ms:>10.2f} ms{_format_attrs(span.attrs)}")
    skipped_here = 0
    for child in span.children:
        skipped_here += _render_span(child, depth + 1, min_ms, lines)
    if skipped_here:
        lines.append(
            f"{'  ' * (depth + 1)}... ({skipped_here} span"
            f"{'s' if skipped_here != 1 else ''} below {min_ms:g} ms)"
        )
    return hidden


def _summarize_meta_value(value) -> object:
    """A header-line-sized rendering of one meta value.

    The embedded run manifest is a large nested dict; the report shows
    its identity fields (digest, seeds) and leaves the full document to
    the artifact itself.
    """
    if isinstance(value, dict) and str(value.get("schema", "")).startswith(
        "dmra.manifest/"
    ):
        return (
            f"[digest={value.get('config_digest')} "
            f"seeds={value.get('seeds')}]"
        )
    return value


def render_trace_report(trace: Trace, min_ms: float = 0.0) -> str:
    """Render a parsed trace as the ``dmra trace`` text report.

    ``min_ms`` hides (non-root) spans shorter than the threshold,
    replacing each hidden subtree with a one-line count.
    """
    lines: list[str] = []
    meta = " ".join(
        f"{key}={_summarize_meta_value(trace.meta[key])}"
        for key in sorted(trace.meta)
    )
    lines.append(f"trace {('(' + meta + ')') if meta else '(no metadata)'}")
    lines.append(f"spans: {trace.span_count()}")
    lines.append("")
    if trace.spans:
        header = f"{'span':<44} {'wall':>13}"
        lines.append(header)
        lines.append("-" * len(header))
        for root in trace.spans:
            _render_span(root, 0, min_ms, lines)
        lines.append("")
    if trace.counters:
        lines.append(f"{'counter':<40} {'value':>12}")
        lines.append("-" * 53)
        for name in sorted(trace.counters):
            value = trace.counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name:<40} {rendered:>12}")
        lines.append("")
    if trace.timers:
        header = (
            f"{'timer':<28} {'count':>7} {'total ms':>10} "
            f"{'mean ms':>9} {'max ms':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(trace.timers):
            stat = trace.timers[name]
            lines.append(
                f"{name:<28} {stat.count:>7} {stat.total_s * 1e3:>10.2f} "
                f"{stat.mean_s * 1e3:>9.3f} {stat.max_s * 1e3:>9.2f}"
            )
        lines.append("")
    if trace.gauges:
        header = (
            f"{'gauge':<28} {'last':>10} {'min':>10} {'max':>10} "
            f"{'samples':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(trace.gauges):
            stat = trace.gauges[name]
            lines.append(
                f"{name:<28} {stat.value:>10.4g} {stat.min:>10.4g} "
                f"{stat.max:>10.4g} {stat.count:>8}"
            )
        lines.append("")
    if trace.histograms:
        header = (
            f"{'histogram':<36} {'count':>8} {'mean':>10} "
            f"{'p50':>10} {'p95':>10} {'max<=':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(trace.histograms):
            hist = trace.histograms[name]
            mean = hist.sum / hist.count if hist.count else 0.0
            lines.append(
                f"{name:<36} {hist.count:>8} {mean:>10.4g} "
                f"{_quantile_bound(hist, 0.5):>10} "
                f"{_quantile_bound(hist, 0.95):>10} "
                f"{_max_bound(hist):>10}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _quantile_bound(hist, q: float) -> str:
    """The bucket upper bound covering quantile ``q`` (conservative)."""
    if hist.count == 0:
        return "-"
    target = q * hist.count
    running = 0
    for bound, c in zip(hist.bounds, hist.counts):
        running += c
        if running >= target:
            return f"{bound:.4g}"
    return "+Inf"


def _max_bound(hist) -> str:
    """The upper bound of the highest non-empty bucket."""
    if hist.count == 0:
        return "-"
    if hist.counts[-1]:
        return "+Inf"
    for bound, c in zip(reversed(hist.bounds), reversed(hist.counts[:-1])):
        if c:
            return f"{bound:.4g}"
    return "+Inf"


def render_top_spans(trace: Trace, top: int = 10) -> str:
    """The hottest-spans table: names ranked by cumulative *self* time.

    Self time is a span's duration minus the durations of its direct
    children, aggregated over every span sharing a name — the quantity
    that actually identifies the hot code, since a parent's wall time
    double-counts everything nested inside it.
    """
    total_s: dict[str, float] = {}
    self_s: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in trace.all_spans():
        child_s = sum(c.duration_s for c in span.children)
        self_time = max(span.duration_s - child_s, 0.0)
        total_s[span.name] = total_s.get(span.name, 0.0) + span.duration_s
        self_s[span.name] = self_s.get(span.name, 0.0) + self_time
        counts[span.name] = counts.get(span.name, 0) + 1
    ranked = sorted(self_s, key=lambda n: (-self_s[n], n))[:max(top, 0)]
    lines = [f"top {len(ranked)} spans by cumulative self time"]
    header = (
        f"{'span':<36} {'calls':>7} {'self ms':>11} "
        f"{'total ms':>11} {'mean self ms':>13}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in ranked:
        n = counts[name]
        lines.append(
            f"{name:<36} {n:>7} {self_s[name] * 1e3:>11.2f} "
            f"{total_s[name] * 1e3:>11.2f} "
            f"{self_s[name] / n * 1e3:>13.3f}"
        )
    return "\n".join(lines) + "\n"
