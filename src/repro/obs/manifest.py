"""Run manifests: the identity card attached to every trace/metrics file.

A manifest answers "what exactly produced this artifact?" — the full
scenario configuration and its digest, the seed set, the package
version, the command, wall-clock timestamps, and host facts.  Two runs
are *comparable* when their config digests and seed sets agree;
``dmra trace diff`` aligns runs by exactly this (see
:mod:`repro.obs.diff`).

The manifest is a plain JSON-serializable dict under the versioned
schema ``dmra.manifest/1``, embedded as the ``manifest`` key of a trace
header's ``meta`` and of a ``dmra.metrics/1`` document.  Wall-clock and
host facts come from *injected* providers (``clock``/``host``
arguments) so tests and reproducible pipelines can pin them; they are
informational and never participate in alignment.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import asdict, is_dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "config_digest",
    "config_to_dict",
    "default_host_info",
    "manifests_comparable",
    "validate_manifest",
]

#: Schema identifier; bump the suffix on any incompatible layout change.
MANIFEST_SCHEMA = "dmra.manifest/1"


def config_to_dict(config) -> dict:
    """A :class:`~repro.sim.config.ScenarioConfig` as a canonical dict.

    Tuples become lists (JSON has no tuples) so the dict round-trips
    through serialization unchanged; any dataclass with JSON-native
    field values works.
    """
    if not is_dataclass(config):
        raise ConfigurationError(
            f"config must be a dataclass, got {type(config).__name__}"
        )
    return json.loads(json.dumps(asdict(config)))


def config_digest(config) -> str:
    """Short stable digest of a scenario config.

    SHA-256 over the canonical JSON encoding (sorted keys, compact
    separators) of the config's field dict, truncated to 16 hex chars —
    enough to tell two configurations apart at a glance while staying
    readable in reports.
    """
    payload = json.dumps(
        config_to_dict(config), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def default_host_info() -> dict:
    """Host facts recorded for provenance (never used for alignment)."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    config=None,
    seeds: Sequence[int] = (),
    command: str = "",
    extra: Mapping | None = None,
    clock: Callable[[], float] = time.time,
    host: Callable[[], dict] = default_host_info,
) -> dict:
    """Assemble a ``dmra.manifest/1`` dict for one run.

    ``config`` is the scenario config (or ``None`` for commands that do
    not build scenarios — the digest is then ``null`` and such runs
    align only by seeds).  ``clock`` and ``host`` are injectable for
    deterministic tests; the defaults read the real wall clock and
    host.
    """
    from repro import __version__  # deferred: repro/__init__ imports obs

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "config_digest": None if config is None else config_digest(config),
        "config": None if config is None else config_to_dict(config),
        "seeds": [int(seed) for seed in seeds],
        "command": command,
        "package": "repro",
        "version": __version__,
        "created_unix_s": float(clock()),
        "host": dict(host()),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def validate_manifest(manifest) -> dict:
    """Check a parsed manifest's schema and shape; returns it unchanged."""
    if not isinstance(manifest, Mapping):
        raise ConfigurationError(
            f"manifest must be a mapping, got {type(manifest).__name__}"
        )
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ConfigurationError(
            f"unsupported manifest schema {schema!r}; this reader "
            f"understands {MANIFEST_SCHEMA!r}"
        )
    if not isinstance(manifest.get("seeds", []), list):
        raise ConfigurationError("manifest seeds must be a list")
    return dict(manifest)


def manifests_comparable(a: Mapping | None, b: Mapping | None) -> tuple[bool, list[str]]:
    """Whether two manifests describe comparable runs, plus the caveats.

    Comparable means same config digest and seed set.  Missing
    manifests (old traces) are flagged but do not block a diff — the
    caller decides; differing digests come with the list of config
    fields that changed (readable context for a deliberate A/B like a
    ``rho`` perturbation).
    """
    notes: list[str] = []
    if a is None or b is None:
        notes.append("manifest missing on one or both runs")
        return False, notes
    if a.get("config_digest") != b.get("config_digest"):
        changed = _changed_config_fields(a.get("config"), b.get("config"))
        detail = f" (changed: {', '.join(changed)})" if changed else ""
        notes.append(
            f"config digests differ: {a.get('config_digest')} vs "
            f"{b.get('config_digest')}{detail}"
        )
    if a.get("seeds") != b.get("seeds"):
        notes.append(
            f"seed sets differ: {a.get('seeds')} vs {b.get('seeds')}"
        )
    if a.get("version") != b.get("version"):
        notes.append(
            f"package versions differ: {a.get('version')} vs "
            f"{b.get('version')}"
        )
    blocking = any(
        note.startswith(("config digests differ", "seed sets differ"))
        for note in notes
    )
    return not blocking, notes


def _changed_config_fields(a, b) -> list[str]:
    """Names of top-level config fields whose values differ (``a`` vs ``b``)."""
    if not isinstance(a, Mapping) or not isinstance(b, Mapping):
        return []
    changed = []
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            changed.append(f"{key}: {a.get(key)!r} -> {b.get(key)!r}")
    return changed
