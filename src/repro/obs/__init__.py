"""Observability: structured telemetry, spans, and JSONL traces.

The subsystem every perf/robustness investigation reads its evidence
from.  Default-off with a zero-overhead null backend; see
``docs/observability.md`` for the trace schema and usage::

    from repro.obs import telemetry_session, write_trace

    with telemetry_session() as recorder:
        run_allocation(scenario, allocator)
    write_trace("run.jsonl", recorder)   # then: dmra trace run.jsonl
"""

from repro.obs.diff import (
    DiffReport,
    DiffTolerances,
    MetricDelta,
    diff_documents,
    render_diff_report,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    manifests_comparable,
    validate_manifest,
)
from repro.obs.histogram import (
    DEFAULT_DEPTH_BOUNDS,
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    log_bounds,
)
from repro.obs.live import LiveServer, http_get, live_snapshot_document
from repro.obs.metrics import (
    METRICS_SCHEMA,
    METRICS_SCHEMA_V2,
    MetricFamily,
    MetricSample,
    MetricsDocument,
    histogram_family,
    metrics_from_certificates,
    metrics_from_online,
    metrics_from_outcome,
    metrics_from_stream,
    metrics_from_trace,
    metrics_json,
    parse_exposition,
    parse_metrics,
    prometheus_exposition,
    read_metrics,
    validate_histogram_family,
    write_metrics,
)
from repro.obs.report import render_top_spans, render_trace_report
from repro.obs.telemetry import (
    NULL,
    FlightRecorder,
    GaugeStat,
    NullTelemetry,
    Recorder,
    SpanRecord,
    TimerStat,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.obs.trace import (
    SCHEMA,
    SCHEMA_V2,
    Trace,
    parse_trace,
    read_trace,
    span_from_payload,
    span_to_payload,
    trace_from_recorder,
    trace_lines,
    write_trace,
)

__all__ = [
    "DEFAULT_DEPTH_BOUNDS",
    "DEFAULT_LATENCY_BOUNDS",
    "DiffReport",
    "DiffTolerances",
    "FlightRecorder",
    "GaugeStat",
    "Histogram",
    "LiveServer",
    "MANIFEST_SCHEMA",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_V2",
    "MetricDelta",
    "MetricFamily",
    "MetricSample",
    "MetricsDocument",
    "NULL",
    "NullTelemetry",
    "Recorder",
    "SCHEMA",
    "SCHEMA_V2",
    "SpanRecord",
    "TimerStat",
    "Trace",
    "build_manifest",
    "config_digest",
    "diff_documents",
    "get_telemetry",
    "histogram_family",
    "http_get",
    "live_snapshot_document",
    "log_bounds",
    "manifests_comparable",
    "metrics_from_certificates",
    "metrics_from_online",
    "metrics_from_outcome",
    "metrics_from_stream",
    "metrics_from_trace",
    "metrics_json",
    "parse_exposition",
    "parse_metrics",
    "parse_trace",
    "prometheus_exposition",
    "read_metrics",
    "read_trace",
    "render_diff_report",
    "render_top_spans",
    "render_trace_report",
    "set_telemetry",
    "span_from_payload",
    "span_to_payload",
    "telemetry_session",
    "trace_from_recorder",
    "trace_lines",
    "validate_histogram_family",
    "validate_manifest",
    "write_metrics",
    "write_trace",
]
