"""Observability: structured telemetry, spans, and JSONL traces.

The subsystem every perf/robustness investigation reads its evidence
from.  Default-off with a zero-overhead null backend; see
``docs/observability.md`` for the trace schema and usage::

    from repro.obs import telemetry_session, write_trace

    with telemetry_session() as recorder:
        run_allocation(scenario, allocator)
    write_trace("run.jsonl", recorder)   # then: dmra trace run.jsonl
"""

from repro.obs.report import render_trace_report
from repro.obs.telemetry import (
    NULL,
    GaugeStat,
    NullTelemetry,
    Recorder,
    SpanRecord,
    TimerStat,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.obs.trace import (
    SCHEMA,
    Trace,
    parse_trace,
    read_trace,
    trace_from_recorder,
    trace_lines,
    write_trace,
)

__all__ = [
    "GaugeStat",
    "NULL",
    "NullTelemetry",
    "Recorder",
    "SCHEMA",
    "SpanRecord",
    "TimerStat",
    "Trace",
    "get_telemetry",
    "parse_trace",
    "read_trace",
    "render_trace_report",
    "set_telemetry",
    "telemetry_session",
    "trace_from_recorder",
    "trace_lines",
    "write_trace",
]
