"""Structured telemetry: counters, gauges, timers, and nested spans.

The instrumented hot paths (matching engine, radio-map builders, the
online event loop, failure repair, sweeps) all report through one
process-wide backend obtained via :func:`get_telemetry`.  Two backends
exist:

* :class:`NullTelemetry` — the **default**.  Every operation is a no-op
  on a shared singleton: no allocation, no clock read, no branching
  beyond one attribute call.  Instrumentation left in a hot loop costs
  one method dispatch when telemetry is off, which is the subsystem's
  zero-overhead guarantee (pinned by ``make bench-smoke``'s
  ``telemetry`` section).
* :class:`Recorder` — an in-memory collector.  Spans form a tree
  (``span("match")`` inside ``span("sweep.cell")`` nests), counters
  accumulate sums, gauges keep last/min/max, timers aggregate named
  durations, and histograms (:mod:`repro.obs.histogram`) bucket
  distributions such as per-event latency.  A recorder serializes to
  the versioned JSONL trace format (:mod:`repro.obs.trace`) rendered
  by ``dmra trace``.

Recording is buffered: ``span()`` and its ``__exit__`` append flat
event tuples to one per-recorder list and defer all tree/dict
construction (:class:`SpanRecord` nodes, attribute dicts, child lists)
to flush time — the first access of :attr:`Recorder.roots`, typically
when the trace is written.  An enabled span on the hot path therefore
costs two clock reads, two tuple allocations, and two list appends;
``make bench-smoke`` pins the resulting engine overhead
(``telemetry.recording_overhead_pct``).

Backends are installed process-wide with :func:`set_telemetry` or,
preferably, scoped with the :func:`telemetry_session` context manager.
Recorders are single-threaded by design; parallel sweep workers each
record into their own recorder (sharing the parent's epoch via
:meth:`Recorder.child`) and the parent grafts the results into one
merged trace with :meth:`Recorder.absorb`.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.obs.histogram import Histogram

__all__ = [
    "FlightRecorder",
    "GaugeStat",
    "NullTelemetry",
    "Recorder",
    "SpanRecord",
    "TimerStat",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
]


@dataclass
class SpanRecord:
    """One finished (or still open) span in a recorder's tree.

    Times are seconds relative to the recorder's epoch, so spans from a
    worker recorder created via :meth:`Recorder.child` land directly on
    the parent's timeline.
    """

    name: str
    start_s: float
    end_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def walk(self) -> Iterator["SpanRecord"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class GaugeStat:
    """Aggregated samples of one gauge: last value plus its envelope."""

    value: float
    min: float
    max: float
    count: int = 1

    def update(self, value: float) -> None:
        """Fold one more sample into the aggregate."""
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.count += 1


@dataclass
class TimerStat:
    """Aggregated durations of one named timer."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one more measured duration into the aggregate."""
        self.min_s = seconds if self.count == 0 else min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        self.count += 1
        self.total_s += seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _NullSpan:
    """Shared no-op span/timer handle returned by :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The default backend: everything is a no-op, nothing is recorded."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """No-op span: returns the shared null handle."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        """No-op counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """No-op gauge sample."""

    def timer(self, name: str) -> _NullSpan:
        """No-op timer: returns the shared null handle."""
        return _NULL_SPAN

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] | None = None,
    ) -> None:
        """No-op histogram observation."""


#: The shared null backend; ``get_telemetry()`` returns this by default.
NULL = NullTelemetry()


class _ActiveSpan:
    """Context-manager handle for one open span on a recorder.

    Holds only the recorder and the span's serial number; every
    operation appends an event tuple — no tree node exists until the
    recorder flushes.
    """

    __slots__ = ("_recorder", "_serial")

    def __init__(self, recorder: "Recorder", serial: int) -> None:
        self._recorder = recorder
        self._serial = serial

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        recorder._events.append((
            _EV_END,
            self._serial,
            recorder._clock(),
            None if exc_type is None else exc_type.__name__,
        ))
        return False

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes to the span (JSON-serializable values)."""
        self._recorder._events.append((_EV_ATTRS, self._serial, attrs))
        return self


class _ActiveTimer:
    """Context-manager handle aggregating one duration into a timer."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_ActiveTimer":
        self._start = self._recorder._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder.record_timer(
            self._name, self._recorder._clock() - self._start
        )
        return False

    def set(self, **attrs) -> "_ActiveTimer":  # signature parity with spans
        return self


# Event tags for the recorder's buffered event list.  Each entry is a
# flat tuple: (tag, ...) — see Recorder._materialize for the layouts.
_EV_OPEN = 0
_EV_END = 1
_EV_ATTRS = 2
_EV_GRAFT = 3
_EV_GRAFT_AT = 4


class Recorder:
    """In-memory telemetry collector (spans, counters, gauges, timers).

    Span events buffer into ``_events`` (flat tuples holding absolute
    ``perf_counter`` readings); the :class:`SpanRecord` tree is built
    lazily by the :attr:`roots` property and cached until new events
    arrive.  Counters, gauges, and timers aggregate eagerly — they are
    O(1) dict updates with no deferred work to win.
    """

    enabled = True

    def __init__(
        self,
        meta: dict | None = None,
        epoch_s: float | None = None,
    ) -> None:
        self._clock = time.perf_counter
        self._epoch = self._clock() if epoch_s is None else epoch_s
        self.meta: dict = dict(meta or {})
        self._events: list[tuple] = []
        self._next_serial = 1
        self._built_roots: list[SpanRecord] = []
        self._built_events = 0
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, GaugeStat] = {}
        self.timers: dict[str, TimerStat] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def now_s(self) -> float:
        """Seconds since this recorder's epoch."""
        return self._clock() - self._epoch

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span nested under the currently open one (if any)."""
        serial = self._next_serial
        self._next_serial = serial + 1
        self._events.append((
            _EV_OPEN, serial, name, self._clock(), attrs or None,
        ))
        return _ActiveSpan(self, serial)

    @property
    def roots(self) -> list[SpanRecord]:
        """The span forest, materialized from the event buffer.

        Rebuilt (and re-cached) whenever events were appended since the
        last flush; still-open spans appear with ``end_s == 0.0``.
        """
        if self._built_events != len(self._events):
            self._materialize()
        return self._built_roots

    def _materialize(self) -> None:
        """Replay the event buffer into a fresh :class:`SpanRecord` tree."""
        epoch = self._epoch
        roots: list[SpanRecord] = []
        stack: list[tuple[int, SpanRecord]] = []
        by_serial: dict[int, SpanRecord] = {}
        anchored: list[tuple[str, list[SpanRecord]]] = []
        for event in self._events:
            tag = event[0]
            if tag == _EV_OPEN:
                _, serial, name, at, attrs = event
                record = SpanRecord(
                    name=name,
                    start_s=at - epoch,
                    attrs={} if attrs is None else dict(attrs),
                )
                by_serial[serial] = record
                (stack[-1][1].children if stack else roots).append(record)
                stack.append((serial, record))
            elif tag == _EV_END:
                _, serial, at, error = event
                end_s = at - epoch
                record = by_serial.get(serial)
                if record is not None and error is not None:
                    record.attrs.setdefault("error", error)
                # Pop through any children left open (exception unwound
                # past their __exit__); close them at the same instant.
                while stack:
                    top_serial, top = stack.pop()
                    top.end_s = end_s
                    if top_serial == serial:
                        break
            elif tag == _EV_ATTRS:
                _, serial, attrs = event
                record = by_serial.get(serial)
                if record is not None:
                    record.attrs.update(attrs)
            elif tag == _EV_GRAFT:  # absorbed recorder's roots
                target = stack[-1][1].children if stack else roots
                target.extend(event[1])
            else:  # _EV_GRAFT_AT: spans anchored to a span_ref attribute
                anchored.append((event[1], event[2]))
        if anchored:
            # Resolve anchors only after the full replay: the span
            # carrying the matching ``span_ref`` attribute may have
            # been recorded after the graft event was appended.
            by_ref: dict[str, SpanRecord] = {}
            for root in roots:
                for record in root.walk():
                    ref = record.attrs.get("span_ref")
                    if ref is not None and ref not in by_ref:
                        by_ref[ref] = record
            for ref, spans in anchored:
                target = by_ref.get(ref)
                (target.children if target is not None else roots).extend(
                    spans
                )
        self._built_roots = roots
        self._built_events = len(self._events)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a named monotonically accumulating counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of a named gauge."""
        stat = self.gauges.get(name)
        if stat is None:
            self.gauges[name] = GaugeStat(value=value, min=value, max=value)
        else:
            stat.update(value)

    def timer(self, name: str) -> _ActiveTimer:
        """Context manager timing its body into a named aggregate."""
        return _ActiveTimer(self, name)

    def record_timer(self, name: str, seconds: float) -> None:
        """Directly add one duration to a named timer aggregate."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.add(seconds)

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] | None = None,
    ) -> None:
        """Fold one observation into a named histogram.

        ``bounds`` picks the bucket ladder when the histogram is first
        created (default: the latency ladder); it is ignored on every
        later observation — bounds are fixed for a metric's lifetime.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds=bounds)
        hist.observe(value)

    # ------------------------------------------------------------------
    # Cross-recorder composition (parallel sweep workers)
    # ------------------------------------------------------------------

    def child(self) -> "Recorder":
        """A fresh recorder sharing this one's epoch.

        Sweep cells record into children (one per cell, possibly in a
        forked worker — ``time.perf_counter`` is fork-consistent on
        Linux) so their span times stay on the parent timeline and
        :meth:`absorb` is a straight graft.
        """
        return Recorder(epoch_s=self._epoch)

    def absorb(self, other: "Recorder") -> None:
        """Merge another recorder into this one.

        The other recorder's root spans become children of the span
        currently open here (or roots), and its counters, gauges,
        timers, and histograms fold into this recorder's aggregates.
        """
        self._events.append((_EV_GRAFT, list(other.roots)))
        self.merge_stats(other)

    def graft_at(self, span_ref: str, spans: list[SpanRecord]) -> None:
        """Graft foreign spans under the span tagged ``span_ref``.

        The anchor is the first recorded span whose attributes contain
        ``span_ref == span_ref`` (set via ``span.set(span_ref=...)``);
        if no span carries the tag the grafted spans surface as roots
        rather than being dropped.  Used by the dist supervisor to hang
        each node's per-phase span forest under the supervisor-side
        phase span it causally belongs to.
        """
        self._events.append((_EV_GRAFT_AT, span_ref, list(spans)))

    def merge_stats(self, other: "Recorder") -> None:
        """Fold another recorder's scalar aggregates (counters, gauges,
        timers, histograms) into this one, without touching spans."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, stat in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = GaugeStat(
                    value=stat.value, min=stat.min, max=stat.max,
                    count=stat.count,
                )
            else:
                mine.value = stat.value
                mine.min = min(mine.min, stat.min)
                mine.max = max(mine.max, stat.max)
                mine.count += stat.count
        for name, stat in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = TimerStat(
                    count=stat.count, total_s=stat.total_s,
                    min_s=stat.min_s, max_s=stat.max_s,
                )
            elif stat.count:
                mine.min_s = (
                    stat.min_s if mine.count == 0
                    else min(mine.min_s, stat.min_s)
                )
                mine.max_s = max(mine.max_s, stat.max_s)
                mine.count += stat.count
                mine.total_s += stat.total_s
        for name, hist in other.histograms.items():
            mine_h = self.histograms.get(name)
            if mine_h is None:
                self.histograms[name] = hist.snapshot()
            else:
                mine_h.merge(hist)

    def all_spans(self) -> Iterator[SpanRecord]:
        """Pre-order traversal over every recorded span."""
        for root in self.roots:
            yield from root.walk()


class FlightRecorder:
    """Bounded ring buffer of recent telemetry notes for postmortems.

    Always-on and nearly free: ``note()`` costs one tuple allocation
    and one deque append (old entries fall off the far end), no clock
    formatting, no I/O.  On a crash — a ``--faults crash`` control
    frame, an unhandled exception in a node body, or an explicit dump
    request — :meth:`dump` renders the last N entries into plain
    dicts, newest last, so the final moments before the failure are
    readable without any trace having been configured.

    Each entry is ``(seq, t_s, kind, fields)`` where ``t_s`` is seconds
    on the monotonic clock relative to the ring's construction.
    """

    __slots__ = ("_ring", "_clock", "_epoch", "_seq")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._ring: deque = deque(maxlen=capacity)
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def total_noted(self) -> int:
        """How many notes were ever taken (>= ``len`` once wrapped)."""
        return self._seq

    def note(self, kind: str, /, **fields) -> None:
        """Append one entry; evicts the oldest when the ring is full."""
        self._seq += 1
        self._ring.append(
            (self._seq, self._clock() - self._epoch, kind, fields or None)
        )

    def dump(self) -> dict:
        """The ring as a JSON-safe postmortem document, oldest first."""
        return {
            "schema": "dmra.flight/1",
            "capacity": self.capacity,
            "total_noted": self._seq,
            "entries": [
                {
                    "seq": seq,
                    "t_s": round(t_s, 6),
                    "kind": kind,
                    **(fields or {}),
                }
                for seq, t_s, kind, fields in self._ring
            ],
        }

    def dump_to(self, path) -> None:
        """Write :meth:`dump` as canonical JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.dump(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------

_ACTIVE: NullTelemetry | Recorder = NULL


def get_telemetry() -> NullTelemetry | Recorder:
    """The currently installed backend (the null backend by default)."""
    return _ACTIVE


def set_telemetry(
    backend: NullTelemetry | Recorder,
) -> NullTelemetry | Recorder:
    """Install a backend process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    return previous


@contextmanager
def telemetry_session(backend: Recorder | None = None):
    """Scope a backend: install it, yield it, restore the previous one.

    ``backend=None`` creates a fresh :class:`Recorder`.
    """
    recorder = Recorder() if backend is None else backend
    previous = set_telemetry(recorder)
    try:
        yield recorder
    finally:
        set_telemetry(previous)
