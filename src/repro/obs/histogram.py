"""Fixed log-bucket histogram primitive for the telemetry backends.

A :class:`Histogram` aggregates scalar observations into a fixed set
of upper-bound buckets plus one overflow (``+Inf``) bucket, tracking
the exact sum and count alongside — precisely the shape a Prometheus
histogram family (``_bucket``/``_sum``/``_count``) exposes.

Design constraints, in order:

* **Exactly serializable.**  Bucket bounds and counts are plain
  numbers round-tripping bit-identically through JSON (``repr`` of a
  float parses back to the same float), so a histogram written into a
  trace or metrics document and read back compares equal.  This is
  what lets ``dmra trace diff`` and the live-scrape-equals-trace
  acceptance check work on equality rather than tolerance.
* **Cheap to observe.**  One :func:`bisect.bisect_left` over a small
  sorted bounds tuple plus two scalar updates; no allocation on the
  hot path.
* **Mergeable.**  Recorders absorbed across processes (dist node
  bodies, sweep workers) fold histograms by bucket-wise addition,
  which is only sound when bounds agree — :meth:`Histogram.merge`
  enforces that.

Bounds are chosen per metric at first observation and never change.
:func:`log_bounds` builds the canonical geometric ladder; the default
ladders below cover sub-microsecond event handling up to multi-second
round phases without tuning.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_DEPTH_BOUNDS",
    "Histogram",
    "log_bounds",
    "merge_histogram_maps",
]


def log_bounds(
    lo: float, hi: float, growth: float = 2.0
) -> tuple[float, ...]:
    """A geometric ladder of bucket upper bounds from ``lo`` to >= ``hi``.

    ``log_bounds(1e-6, 1.0)`` yields 1 µs, 2 µs, 4 µs, ... up to the
    first bound at or above one second.  Bounds are finite; the
    implicit overflow bucket catches everything above the last bound.
    """
    if lo <= 0 or hi < lo:
        raise ConfigurationError(
            f"need 0 < lo <= hi, got lo={lo} hi={hi}"
        )
    if growth <= 1.0:
        raise ConfigurationError(f"growth must be > 1, got {growth}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


#: Canonical ladder for wall-time observations in seconds: 1 µs .. ~8 s.
DEFAULT_LATENCY_BOUNDS = log_bounds(1e-6, 8.0)

#: Canonical ladder for queue depths / small integer magnitudes: 1 .. 1024.
DEFAULT_DEPTH_BOUNDS = log_bounds(1.0, 1024.0)


class Histogram:
    """Fixed-bound histogram: per-bucket counts plus exact sum/count.

    ``counts`` has ``len(bounds) + 1`` entries — one per finite upper
    bound (``value <= bounds[i]`` lands in bucket ``i``) and a final
    overflow bucket for values above every bound (the ``+Inf`` bucket
    in Prometheus terms).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        bounds = tuple(
            DEFAULT_LATENCY_BOUNDS if bounds is None else bounds
        )
        if not bounds:
            raise ConfigurationError(
                "histogram needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"bounds must strictly increase: {bounds}"
            )
        self.bounds: tuple[float, ...] = bounds
        self.counts: list[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise addition; bounds must match exactly."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative buckets ``(le, count<=le)``,
        ending with ``(inf, total count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    # -- exact serialization ------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-safe dict round-tripping exactly via :meth:`from_payload`."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_payload` output."""
        try:
            hist = cls(bounds=payload["bounds"])
            counts = [int(c) for c in payload["counts"]]
            total = int(payload["count"])
            total_sum = float(payload["sum"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed histogram payload: {exc}"
            ) from exc
        if len(counts) != len(hist.counts):
            raise ConfigurationError(
                f"payload has {len(counts)} counts for "
                f"{len(hist.bounds)} bounds"
            )
        hist.counts = counts
        hist.sum = total_sum
        hist.count = total
        return hist

    def snapshot(self) -> "Histogram":
        """An independent copy (for lock-free scrapes of a live recorder)."""
        copy = Histogram(bounds=self.bounds)
        copy.counts = list(self.counts)
        copy.sum = self.sum
        copy.count = self.count
        return copy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.sum == other.sum
            and self.count == other.count
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.sum!r}, "
            f"buckets={len(self.bounds)})"
        )


def merge_histogram_maps(
    into: dict[str, Histogram], frm: Iterable[tuple[str, Histogram]]
) -> None:
    """Fold ``(name, histogram)`` pairs into ``into`` by merge-or-copy."""
    for name, hist in frm:
        mine = into.get(name)
        if mine is None:
            into[name] = hist.snapshot()
        else:
            mine.merge(hist)
