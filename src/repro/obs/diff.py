"""Metric-level diffing of two runs: the regression gate.

``dmra trace diff A B`` compares two ``dmra.metrics/1`` documents (or
two ``dmra.trace/1`` files, deriving metrics first): it aligns the runs
by :mod:`manifest <repro.obs.manifest>` (same config digest + seed
set = comparable; a deliberate A/B like a ``rho`` perturbation is
reported with the changed fields), then walks the union of metric
families and samples, flagging every value whose change exceeds the
configured absolute *and* relative tolerances.  Timing families
(``dmra_timer_*``, ``dmra_wall_*``) are ignored by default — wall-clock
does not transfer across hosts or runs; domain metrics are
deterministic given (config, seed) and diff exactly.

Exit semantics: regressions (or structural mismatches) make
:func:`diff_documents` return a report with ``ok == False``, which the
CLI maps to a nonzero exit code — the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.manifest import manifests_comparable
from repro.obs.metrics import MetricsDocument

__all__ = [
    "DEFAULT_IGNORE_PREFIXES",
    "DiffReport",
    "DiffTolerances",
    "MetricDelta",
    "diff_documents",
    "render_diff_report",
]

#: Families whose values are wall-clock measurements, not domain
#: outcomes: never gate on them by default.  The latency / phase-wall
#: histogram families are timing too; queue-depth families are *not*
#: listed — depth is an outcome of the workload and diffs normally.
DEFAULT_IGNORE_PREFIXES = (
    "dmra_timer_",
    "dmra_wall_",
    "dmra_stream_event_latency",
    "dmra_dist_phase_wall",
    "dmra_dist_round_wall",
)


@dataclass(frozen=True)
class DiffTolerances:
    """How much change is acceptable before a delta is a regression.

    A delta passes when it is within ``abs_tol`` *or* within
    ``rel_tol`` of the baseline magnitude; per-family overrides win
    over the defaults.  Families matching ``ignore_prefixes`` are
    reported informationally but never gate.
    """

    abs_tol: float = 1e-9
    rel_tol: float = 0.0
    per_family: dict = field(default_factory=dict)
    ignore_prefixes: tuple[str, ...] = DEFAULT_IGNORE_PREFIXES

    def ignored(self, family: str) -> bool:
        """Whether the family is informational only (never gates)."""
        return family.startswith(self.ignore_prefixes)

    def within(self, family: str, baseline: float, candidate: float) -> bool:
        """Whether a value change is inside the family's tolerances."""
        abs_tol, rel_tol = self.abs_tol, self.rel_tol
        override = self.per_family.get(family)
        if override is not None:
            abs_tol = override.get("abs", abs_tol)
            rel_tol = override.get("rel", rel_tol)
        delta = abs(candidate - baseline)
        return delta <= abs_tol or delta <= rel_tol * abs(baseline)


@dataclass(frozen=True)
class MetricDelta:
    """One sample's change between baseline and candidate."""

    family: str
    labels: tuple[tuple[str, str], ...]
    baseline: float | None
    candidate: float | None
    regression: bool

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    def describe(self) -> str:
        """One human-readable line: family, labels, values, delta."""
        rendered = (
            "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"
            if self.labels else ""
        )
        name = f"{self.family}{rendered}"
        if self.baseline is None:
            return f"{name}: only in candidate ({self.candidate:g})"
        if self.candidate is None:
            return f"{name}: only in baseline ({self.baseline:g})"
        return (
            f"{name}: {self.baseline:g} -> {self.candidate:g} "
            f"(delta {self.delta:+g})"
        )


@dataclass(frozen=True)
class DiffReport:
    """Everything a diff found, plus the verdict."""

    comparable: bool
    manifest_notes: tuple[str, ...]
    regressions: tuple[MetricDelta, ...]
    changes: tuple[MetricDelta, ...]
    ignored_changes: tuple[MetricDelta, ...]
    families_compared: int

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_documents(
    baseline: MetricsDocument,
    candidate: MetricsDocument,
    tolerances: DiffTolerances | None = None,
    require_comparable: bool = True,
) -> DiffReport:
    """Compare two metrics documents family by family.

    ``require_comparable`` makes manifest misalignment (different
    config digest or seeds) itself a gating condition — the CI
    regression gate wants that; an exploratory A/B diff passes
    ``False`` and reads the deltas alongside the manifest notes.
    """
    tolerances = tolerances or DiffTolerances()
    comparable, notes = manifests_comparable(
        baseline.manifest, candidate.manifest
    )

    # On misaligned runs in exploratory mode (require_comparable=False,
    # e.g. a deliberate rho A/B) deltas are *expected*: report them as
    # changes, not regressions.  Aligned runs gate on every delta.
    deltas_gate = comparable or require_comparable

    regressions: list[MetricDelta] = []
    changes: list[MetricDelta] = []
    ignored: list[MetricDelta] = []
    names = sorted(
        set(baseline.family_names()) | set(candidate.family_names())
    )
    for name in names:
        is_ignored = tolerances.ignored(name)
        base_samples = (
            {s.labels: s.value for s in baseline.family(name).samples}
            if baseline.has_family(name) else {}
        )
        cand_samples = (
            {s.labels: s.value for s in candidate.family(name).samples}
            if candidate.has_family(name) else {}
        )
        for labels in sorted(set(base_samples) | set(cand_samples)):
            base_value = base_samples.get(labels)
            cand_value = cand_samples.get(labels)
            if (
                base_value is not None
                and cand_value is not None
                and tolerances.within(name, base_value, cand_value)
            ):
                continue
            gating = not is_ignored and deltas_gate
            delta = MetricDelta(
                family=name, labels=labels,
                baseline=base_value, candidate=cand_value,
                regression=gating,
            )
            if is_ignored:
                ignored.append(delta)
            elif gating:
                regressions.append(delta)
            else:
                changes.append(delta)

    if require_comparable and not comparable:
        # Misaligned runs gate even when every value happens to agree:
        # identity, not values, failed.
        regressions.append(MetricDelta(
            family="manifest_alignment", labels=(),
            baseline=None, candidate=None, regression=True,
        ))
    return DiffReport(
        comparable=comparable,
        manifest_notes=tuple(notes),
        regressions=tuple(regressions),
        changes=tuple(changes),
        ignored_changes=tuple(ignored),
        families_compared=len(names),
    )


def render_diff_report(
    report: DiffReport,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> str:
    """Human-readable diff summary (what the CLI prints)."""
    lines = [f"metrics diff: {baseline_name} vs {candidate_name}"]
    if report.manifest_notes:
        lines.append("manifest:")
        lines.extend(f"  - {note}" for note in report.manifest_notes)
    else:
        lines.append("manifest: aligned (same config digest and seeds)")
    lines.append(f"families compared: {report.families_compared}")
    if report.regressions:
        lines.append(f"REGRESSIONS ({len(report.regressions)}):")
        for delta in report.regressions:
            if delta.family == "manifest_alignment":
                lines.append(
                    "  ! runs are not comparable (see manifest notes)"
                )
            else:
                lines.append(f"  ! {delta.describe()}")
    if report.changes:
        lines.append(f"changes ({len(report.changes)}):")
        lines.extend(f"  ~ {delta.describe()}" for delta in report.changes)
    if report.ignored_changes:
        lines.append(
            f"ignored (timing) changes: {len(report.ignored_changes)}"
        )
    lines.append("verdict: " + ("OK" if report.ok else "REGRESSION"))
    return "\n".join(lines)
