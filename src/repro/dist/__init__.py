"""True decentralized deployment of the DMRA agent layer.

Promotes the UE/BS/SP agents of :mod:`repro.core.agents` to real node
bodies — threads or forked OS processes — exchanging serialized wire
messages over a pluggable transport, with fault injection and
per-message accounting.  See ``docs/decentralized.md``.
"""

from repro.dist.faults import (
    FAULT_SCENARIOS,
    CrashEvent,
    FaultPlan,
    FaultyChannel,
    scenario_plan,
)
from repro.dist.supervisor import DistributedDMRAAllocator
from repro.dist.transport import TRANSPORTS, make_transport

__all__ = [
    "FAULT_SCENARIOS",
    "TRANSPORTS",
    "CrashEvent",
    "DistributedDMRAAllocator",
    "FaultPlan",
    "FaultyChannel",
    "make_transport",
    "scenario_plan",
]
