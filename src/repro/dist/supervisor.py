"""The deployment supervisor: lockstep round protocol + accounting.

:class:`DistributedDMRAAllocator` is a drop-in
:class:`~repro.core.allocator.Allocator` that runs DMRA across real node
bodies — one per BS, one per SP, one per UE shard — over a pluggable
transport.  The supervisor is *not* a coordinator in the algorithmic
sense: it never sees resource state or makes allocation decisions; it
only sequences rounds and counts messages, the role a shared clock (or
the paper's implicit round synchrony) plays in Alg. 1.

## Round protocol

Every round runs five phases, each a tick/done exchange with one node
group::

    bcast (BS) -> propose (UE) -> relay_req (SP) -> decide (BS)
                                                 -> relay_grant (SP)

Barriers are **count-based**: every done-ack reports how many data
frames the node sent to each destination; the supervisor accumulates
them and stamps the total into the destination's next tick, which the
destination consumes before acting.  This makes the protocol exact
under arbitrary cross-channel reordering and fault-injected delays — no
transport ordering guarantee beyond per-sender FIFO is assumed.

## Termination

The run ends at the first round where (a) no UE sent a service request,
(b) no SP holds a retry-pending request, (c) no fault injector holds a
delayed frame, and (d) every scheduled BS crash has recovered.  Because
fault plans have a finite horizon, such a round provably arrives (the
``max_rounds`` backstop guards the claim).  ``Assignment.rounds``
counts productive rounds — rounds in which at least one service request
was sent — matching the in-process allocator's semantics.
"""

from __future__ import annotations

import time
import uuid
from collections import Counter, defaultdict
from pathlib import Path

from repro.compute.cru import Grant
from repro.core.agents import BSAgent, SPAgent, build_ue_agents
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.messages import from_wire
from repro.dist.faults import FaultPlan
from repro.dist.nodes import (
    BSNodeHandler,
    NodeRuntime,
    SPNodeHandler,
    UEHostHandler,
    ue_host_name,
)
from repro.dist.transport import TRANSPORTS, make_transport, with_trace_context
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError, ConfigurationError
from repro.model.network import MECNetwork
from repro.obs import get_telemetry
from repro.obs.histogram import Histogram
from repro.obs.trace import span_from_payload
from repro.radio.channel import RadioMap

__all__ = ["DistributedDMRAAllocator"]

_PHASES = ("bcast", "propose", "relay_req", "decide", "relay_grant")


class DistributedDMRAAllocator(Allocator):
    """DMRA over real processes (or threads) and a message transport."""

    def __init__(
        self,
        transport: str = "inproc",
        pricing: PricingPolicy | None = None,
        rho: float = 10.0,
        max_rounds: int = 1000,
        ue_hosts: int = 2,
        fault_plan: FaultPlan | None = None,
        recv_timeout: float = 60.0,
        flight_dir: str | Path | None = None,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport {transport!r}; choose one of "
                f"{', '.join(TRANSPORTS)}"
            )
        if ue_hosts < 1:
            raise ConfigurationError(f"ue_hosts must be >= 1, got {ue_hosts}")
        if max_rounds <= 0:
            raise ConfigurationError(f"max_rounds must be > 0, got {max_rounds}")
        self.transport_kind = transport
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.rho = rho
        self.max_rounds = max_rounds
        self.ue_hosts = ue_hosts
        self.fault_plan = fault_plan
        self.recv_timeout = recv_timeout
        #: When set, node flight-recorder postmortems (crash rings) are
        #: written here as JSON files, one per crashed node.
        self.flight_dir = Path(flight_dir) if flight_dir else None
        self.name = f"dmra-dist-{transport}"
        #: Accounting of the most recent run (also emitted as telemetry).
        self.last_report: dict = {}

    # ------------------------------------------------------------------

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        telemetry = get_telemetry()
        plan = self.fault_plan
        bs_names = tuple(f"bs:{bs.bs_id}" for bs in network.base_stations)
        sp_names = tuple(f"sp:{sp.sp_id}" for sp in network.providers)
        host_names = tuple(f"ue:{i}" for i in range(self.ue_hosts))
        names = ("sup",) + bs_names + sp_names + host_names

        # Topology the nodes need up front (inherited through fork or
        # shared memory — never sent over the wire).
        ue_agents = build_ue_agents(network, radio_map, self.pricing, self.rho)
        hosts_of_bs: dict[int, set[str]] = defaultdict(set)
        for ue_id, agent in ue_agents.items():
            for bs_id in agent.candidate_bs_ids:
                hosts_of_bs[bs_id].add(ue_host_name(ue_id, self.ue_hosts))

        # Cross-process trace context: nodes get the trace id and the
        # supervisor recorder's epoch, so their own recorders (created
        # inside the node body — fork keeps perf_counter consistent on
        # Linux) emit spans directly on the supervisor's timeline.
        trace_ctx = None
        if telemetry.enabled:
            trace_ctx = {
                "trace_id": uuid.uuid4().hex,
                "epoch_s": getattr(telemetry, "_epoch", None),
            }

        transport = make_transport(self.transport_kind, names)
        with telemetry.span(
            "dist.allocate",
            transport=self.transport_kind,
            ue_hosts=self.ue_hosts,
            faulty=plan is not None,
            **(
                {"trace_id": trace_ctx["trace_id"]}
                if trace_ctx is not None else {}
            ),
        ) as span:
            sup = transport.channel("sup")
            try:
                self._spawn_nodes(
                    transport, network, ue_agents, hosts_of_bs, plan,
                    trace_ctx,
                )
                outcome = self._run_rounds(
                    sup, bs_names, sp_names, host_names, plan, trace_ctx
                )
                results = self._collect(
                    sup, bs_names + sp_names + host_names
                )
            finally:
                try:
                    for name in bs_names + sp_names + host_names:
                        sup.send(name, {"t": "stop"})
                except Exception:  # pragma: no cover - teardown best effort
                    pass
                transport.shutdown()
                sup.close()

        assignment = self._assemble(results, outcome)
        self._record(telemetry, span, results, outcome, assignment)
        return assignment

    # ------------------------------------------------------------------

    def _spawn_nodes(
        self, transport, network, ue_agents, hosts_of_bs, plan, trace_ctx
    ):
        always_broadcast = plan is not None
        for bs in network.base_stations:
            handler = BSNodeHandler(
                BSAgent(bs),
                bcast_dsts=tuple(sorted(hosts_of_bs.get(bs.bs_id, ()))),
                always_broadcast=always_broadcast,
            )
            transport.spawn(
                f"bs:{bs.bs_id}",
                _node_body(handler, plan, self.recv_timeout, trace_ctx),
            )
        for sp in network.providers:
            handler = SPNodeHandler(SPAgent(sp.sp_id), ue_hosts=self.ue_hosts)
            transport.spawn(
                f"sp:{sp.sp_id}",
                _node_body(handler, plan, self.recv_timeout, trace_ctx),
            )
        for i in range(self.ue_hosts):
            shard = {
                ue_id: agent
                for ue_id, agent in ue_agents.items()
                if ue_id % self.ue_hosts == i
            }
            handler = UEHostHandler(shard, resend_releases=plan is not None)
            transport.spawn(
                f"ue:{i}",
                _node_body(handler, plan, self.recv_timeout, trace_ctx),
            )

    # ------------------------------------------------------------------

    def _run_rounds(self, sup, bs_names, sp_names, host_names, plan, trace_ctx):
        groups = {
            "bcast": bs_names,
            "propose": host_names,
            "relay_req": sp_names,
            "decide": bs_names,
            "relay_grant": sp_names,
        }
        expected: Counter = Counter()
        done_buf: dict[tuple[str, str], dict] = {}
        crash_schedule = {} if plan is None else {
            c.at_round: c for c in plan.crashes
        }
        last_crash_clear = 0 if plan is None else plan.last_crash_clear_round

        tel = get_telemetry()
        tracing = tel.enabled
        clock = time.perf_counter

        round_no = 0
        productive = 0
        total_rounds = 0
        kind_totals: Counter = Counter()
        while True:
            round_no += 1
            if round_no > self.max_rounds:
                raise AllocationError(
                    f"distributed matching did not terminate within "
                    f"{self.max_rounds} rounds"
                )
            crash = crash_schedule.get(round_no)
            if crash is not None:
                sup.send(
                    f"bs:{crash.bs_id}",
                    {"t": "crash", "down": crash.down_rounds},
                )

            held: dict[str, int] = {}
            pending: dict[str, int] = {}
            round_kinds: Counter = Counter()
            round_start = clock() if tracing else 0.0
            with tel.span("dist.round", round=round_no):
                for phase in _PHASES:
                    group = groups[phase]
                    # span_ref anchors the per-node span forests the
                    # harvest grafts back under this phase span.
                    phase_ref = f"r{round_no}.{phase}"
                    phase_start = clock() if tracing else 0.0
                    with tel.span(
                        "dist.phase", phase=phase, round=round_no,
                    ) as phase_span:
                        if tracing:
                            phase_span.set(span_ref=phase_ref)
                        tick = {
                            "t": "tick",
                            "phase": phase,
                            "round": round_no,
                            "expect": 0,
                        }
                        if trace_ctx is not None:
                            with_trace_context(
                                tick, trace_ctx["trace_id"], phase_ref
                            )
                        for node in group:
                            sup.send(
                                node,
                                {**tick, "expect": expected.pop(node, 0)},
                            )
                        for node in group:
                            done = self._await(sup, done_buf, "done", node)
                            for dst, n in done["counts"].items():
                                expected[dst] += n
                            round_kinds.update(done["sent_kinds"])
                            held[node] = done["held"]
                            if "pending" in done["extra"]:
                                pending[node] = done["extra"]["pending"]
                    if tracing:
                        tel.observe(
                            f"dist.phase_wall_s.{phase}",
                            clock() - phase_start,
                        )
            if tracing:
                tel.observe("dist.round_wall_s", clock() - round_start)

            total_rounds = round_no
            kind_totals.update(round_kinds)
            if round_kinds.get("req", 0) > 0:
                productive += 1
                continue
            if (
                sum(held.values()) == 0
                and sum(pending.values()) == 0
                and round_no >= last_crash_clear
            ):
                break
        return {
            "rounds": productive,
            "total_rounds": total_rounds,
            "kind_totals": dict(kind_totals),
        }

    def _await(self, sup, buf, frame_type, src) -> dict:
        key = (frame_type, src)
        while key not in buf:
            frame = sup.recv(timeout=self.recv_timeout)
            if frame is None:
                raise AllocationError(
                    f"supervisor: node {src!r} sent no {frame_type!r} frame "
                    f"within {self.recv_timeout}s"
                )
            buf[(frame["t"], frame["src"])] = frame
        return buf.pop(key)

    def _collect(self, sup, names) -> dict[str, dict]:
        buf: dict[tuple[str, str], dict] = {}
        for name in names:
            sup.send(name, {"t": "collect"})
        return {
            name: self._await(sup, buf, "result", name) for name in names
        }

    # ------------------------------------------------------------------

    def _assemble(self, results, outcome) -> Assignment:
        # The UEs' own view first: which BS each believes serves it.
        associated: dict[int, int] = {}
        cloud = set()
        for name, result in results.items():
            if not name.startswith("ue:"):
                continue
            cloud.update(result["state"]["cloud"])
            for ue_id, bs_id in result["state"]["associated"].items():
                associated[int(ue_id)] = bs_id
        # A BS ledger entry counts only when the UE agrees it is served
        # there.  Under lost grants a UE can be booked at two BSs (it
        # re-proposed elsewhere while the first grant was in flight);
        # exporting both would double-serve the UE.  The extra booking
        # is a *stranded* reservation — resources held for nobody, the
        # real cost of an unacknowledged grant — and is reported as
        # such.  Under a reliable transport every ledger entry matches
        # the UE view and this filter passes everything through.
        grants = []
        granted_ues = set()
        stranded = 0
        for name, result in results.items():
            if not name.startswith("bs:"):
                continue
            for wire_grant in result["state"]["grants"]:
                message = from_wire(wire_grant)
                if associated.get(message.ue_id) != message.bs_id:
                    stranded += 1
                    continue
                grants.append(
                    Grant(
                        bs_id=message.bs_id,
                        ue_id=message.ue_id,
                        service_id=message.service_id,
                        crus=message.crus,
                        rrbs=message.rrbs,
                    )
                )
                granted_ues.add(message.ue_id)
        # A UE can believe it is associated while no BS ledger backs it
        # (its grant predates a crash it never learned about).
        # Reconcile to cloud: the task is genuinely unserved.
        orphans = {
            ue_id for ue_id in associated if ue_id not in granted_ues
        }
        outcome["orphans"] = len(orphans)
        outcome["stranded"] = stranded
        return Assignment(
            grants=tuple(grants),
            cloud_ue_ids=frozenset(cloud | orphans),
            rounds=outcome["rounds"],
        )

    def _record(self, telemetry, span, results, outcome, assignment) -> None:
        msgs: Counter = Counter()
        bytes_: Counter = Counter()
        faults: Counter = Counter()
        sp_stats: dict[int, dict] = {}
        postmortems: dict[str, list] = {}
        regrants = 0
        releases = 0
        for name, result in results.items():
            msgs.update(result["msgs"])
            bytes_.update(result["bytes"])
            faults.update(result["faults"])
            if name.startswith("sp:"):
                sp_stats[result["state"]["sp_id"]] = result["state"]
            if name.startswith("bs:"):
                regrants += result["state"]["regrants"]
                releases += result["state"]["releases"]
                faults["crashes"] += result["state"]["epoch"]
            if result.get("flight"):
                postmortems[name] = result["flight"]
        faults["stranded"] += outcome["stranded"]
        self._merge_node_telemetry(telemetry, results)
        self._write_postmortems(postmortems)

        for kind, n in sorted(msgs.items()):
            telemetry.count(f"dist.messages.{kind}", n)
        for kind, n in sorted(bytes_.items()):
            telemetry.count(f"dist.bytes.{kind}", n)
        for sp_id, stats in sorted(sp_stats.items()):
            telemetry.count(f"dist.sp_requests.{sp_id}", stats["requests_relayed"])
            telemetry.count(f"dist.sp_grants.{sp_id}", stats["grants_relayed"])
            telemetry.count(f"dist.sp_retries.{sp_id}", stats["retransmits"])
        for event, n in sorted(faults.items()):
            if n:
                telemetry.count(f"dist.faults.{event}", n)
        if regrants:
            telemetry.count("dist.faults.regrants", regrants)
        if releases:
            # Honored ReleaseNotices: bookings freed instead of stranded.
            telemetry.count("dist.faults.releases", releases)
        telemetry.gauge("dist.rounds", outcome["rounds"])
        telemetry.gauge("dist.total_rounds", outcome["total_rounds"])
        span.set(
            rounds=outcome["rounds"],
            total_rounds=outcome["total_rounds"],
            messages=sum(msgs.values()),
            bytes=sum(bytes_.values()),
            grants=len(assignment.grants),
            cloud=len(assignment.cloud_ue_ids),
            orphans=outcome["orphans"],
        )
        self.last_report = {
            "rounds": outcome["rounds"],
            "total_rounds": outcome["total_rounds"],
            "messages": dict(msgs),
            "bytes": dict(bytes_),
            "faults": dict(faults),
            "regrants": regrants,
            "releases": releases,
            "orphans": outcome["orphans"],
            "stranded": outcome["stranded"],
            "sp": sp_stats,
            "postmortems": postmortems,
        }

    def _merge_node_telemetry(self, telemetry, results) -> None:
        """Graft per-node span forests and fold node histograms.

        Each node root span carries a ``parent_ref`` attribute naming
        the supervisor-side phase span (``span_ref``) it causally
        belongs to; the graft makes the merged trace one rooted tree
        with cross-process parent edges.
        """
        if not telemetry.enabled:
            return
        for name in sorted(results):
            result = results[name]
            for payload in result.get("spans", ()):
                root = span_from_payload(payload)
                ref = root.attrs.get("parent_ref")
                if ref is not None:
                    telemetry.graft_at(ref, [root])
                else:  # pragma: no cover - nodes always tag their roots
                    telemetry.graft_at("", [root])
            for hist_name, payload in sorted(
                result.get("hists", {}).items()
            ):
                incoming = Histogram.from_payload(payload)
                mine = telemetry.histograms.get(hist_name)
                if mine is None:
                    telemetry.histograms[hist_name] = incoming
                else:
                    mine.merge(incoming)

    def _write_postmortems(self, postmortems: dict[str, list]) -> None:
        if not postmortems or self.flight_dir is None:
            return
        import json

        self.flight_dir.mkdir(parents=True, exist_ok=True)
        for name, dumps in sorted(postmortems.items()):
            target = self.flight_dir / f"flight_{name.replace(':', '_')}.json"
            target.write_text(
                json.dumps(dumps, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )


def _node_body(handler, plan, recv_timeout, trace_ctx=None):
    """Bind a node's runtime loop for Transport.spawn (fork/thread)."""

    def body(channel):
        NodeRuntime(
            channel, handler, plan=plan, recv_timeout=recv_timeout,
            trace=trace_ctx,
        ).run()

    return body
