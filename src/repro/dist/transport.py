"""Pluggable transports for the multi-process agent deployment.

A transport owns the mailboxes of a fixed set of named nodes and knows
how to launch node bodies — as threads (in-proc) or as forked OS
processes (multiprocessing pipes, TCP).  Node code is written once
against the tiny :class:`Channel` interface: ``send(dst, frame)``,
``recv(timeout)``.  Frames are JSON objects; every transport moves them
as encoded bytes, so byte-level overhead accounting is uniform and the
serialization path is exercised even by the in-proc transport.

The three implementations trade realism for speed:

* ``inproc`` — every node is a thread; mailboxes are ``queue.Queue``.
  Fast, single-process, still forces all state through serialized
  messages.
* ``mp`` — every node is a forked OS process; mailboxes are
  ``multiprocessing`` pipes, one receive end per node, with a lock
  serializing the many writers of each send end.
* ``tcp`` — every node is a forked OS process that dials a router
  socket in the supervisor process; the router forwards length-prefixed
  frames by destination name.  The slowest and the closest to a real
  deployment.

Delivery guarantee (all transports): frames from one sender to one
receiver arrive in order and uncorrupted; there is no global ordering
across senders.  The supervisor's round protocol is built on
count-based barriers and never relies on cross-sender ordering.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
from typing import Callable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "TRANSPORTS",
    "Channel",
    "Transport",
    "make_transport",
    "trace_context_of",
    "with_trace_context",
]

#: Transport names selectable via ``dmra agents --transport``.
TRANSPORTS = ("inproc", "mp", "tcp")

_LEN = struct.Struct(">I")

#: Wire key carrying distributed-trace context on control frames.
TRACE_KEY = "trace"


def with_trace_context(
    frame: dict, trace_id: str, parent_span_ref: str
) -> dict:
    """Stamp ``(trace_id, parent_span_id)`` context onto a wire frame.

    The context rides as a plain two-element list under
    :data:`TRACE_KEY`, so it survives every transport's JSON encoding
    unchanged and costs nothing when absent.
    """
    frame[TRACE_KEY] = [trace_id, parent_span_ref]
    return frame


def trace_context_of(frame: Mapping) -> tuple[str, str] | None:
    """The ``(trace_id, parent_span_ref)`` context of a frame, if any."""
    ctx = frame.get(TRACE_KEY)
    if isinstance(ctx, (list, tuple)) and len(ctx) == 2:
        return str(ctx[0]), str(ctx[1])
    return None


def encode_frame(frame: Mapping) -> bytes:
    """Serialize a frame to compact JSON bytes (the wire form)."""
    return json.dumps(frame, separators=(",", ":")).encode()


def decode_frame(data: bytes) -> dict:
    """Inverse of :func:`encode_frame`."""
    return json.loads(data.decode())


class Channel:
    """One node's endpoint: send frames to any node, receive its own.

    Subclasses implement ``_send_bytes`` / ``_recv_bytes``; the byte
    accounting lives here so every transport reports comparable
    numbers.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def send(self, dst: str, frame: Mapping) -> int:
        """Send a frame; returns the encoded size in bytes."""
        data = encode_frame(frame)
        self._send_bytes(dst, data)
        return len(data)

    def recv(self, timeout: float | None = None) -> dict | None:
        """Receive the next frame addressed to this node; ``None`` on
        timeout."""
        data = self._recv_bytes(timeout)
        return None if data is None else decode_frame(data)

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release the endpoint (sockets override; queues need nothing)."""

    def _send_bytes(self, dst: str, data: bytes) -> None:
        raise NotImplementedError

    def _recv_bytes(self, timeout: float | None) -> bytes | None:
        raise NotImplementedError


class Transport:
    """Owns mailboxes for ``names`` and launches node bodies.

    Lifecycle: construct with the full node-name set, ``spawn`` each
    node body (the body receives its :class:`Channel`), use
    ``channel(name)`` for nodes hosted by the calling thread (the
    supervisor), then ``shutdown()``.
    """

    name = "abstract"

    def __init__(self, names: tuple[str, ...]) -> None:
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.names = names

    def channel(self, name: str) -> Channel:
        """An endpoint bound to ``name``'s mailbox, for the caller's use."""
        raise NotImplementedError

    def spawn(self, name: str, body: Callable[[Channel], None]) -> None:
        """Launch a node body bound to ``name``'s mailbox."""
        raise NotImplementedError

    def shutdown(self, timeout: float = 10.0) -> None:
        """Join every spawned node; forcefully terminate stragglers."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# inproc: threads + queue.Queue
# ----------------------------------------------------------------------


class _QueueChannel(Channel):
    def __init__(self, name: str, queues: dict[str, "queue.Queue[bytes]"]):
        super().__init__(name)
        self._queues = queues

    def _send_bytes(self, dst: str, data: bytes) -> None:
        try:
            self._queues[dst].put(data)
        except KeyError:
            raise ConfigurationError(f"unknown node {dst!r}") from None

    def _recv_bytes(self, timeout: float | None) -> bytes | None:
        try:
            return self._queues[self.name].get(timeout=timeout)
        except queue.Empty:
            return None


class InProcTransport(Transport):
    """All nodes are threads of the calling process."""

    name = "inproc"

    def __init__(self, names: tuple[str, ...]) -> None:
        super().__init__(names)
        self._queues: dict[str, queue.Queue[bytes]] = {
            name: queue.Queue() for name in names
        }
        self._threads: list[threading.Thread] = []

    def channel(self, name: str) -> Channel:
        """See :meth:`Transport.channel`."""
        return _QueueChannel(name, self._queues)

    def spawn(self, name: str, body: Callable[[Channel], None]) -> None:
        channel = self.channel(name)
        thread = threading.Thread(
            target=body, args=(channel,), name=f"dist-{name}", daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def shutdown(self, timeout: float = 10.0) -> None:
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()


# ----------------------------------------------------------------------
# mp: forked processes + per-node pipes
# ----------------------------------------------------------------------


class _PipeChannel(Channel):
    """Writers share each node's pipe send-end behind a lock; only the
    owning node reads its receive end."""

    def __init__(self, name, senders, locks, receiver):
        super().__init__(name)
        self._senders = senders
        self._locks = locks
        self._receiver = receiver

    def _send_bytes(self, dst: str, data: bytes) -> None:
        try:
            sender, lock = self._senders[dst], self._locks[dst]
        except KeyError:
            raise ConfigurationError(f"unknown node {dst!r}") from None
        with lock:
            sender.send_bytes(data)

    def _recv_bytes(self, timeout: float | None) -> bytes | None:
        if timeout is not None and not self._receiver.poll(timeout):
            return None
        return self._receiver.recv_bytes()


class MPTransport(Transport):
    """Every node is a forked OS process; mailboxes are pipes.

    Fork (not spawn) start method: node bodies are closures over the
    scenario, which fork inherits for free.  One ``Lock`` per mailbox
    serializes its many writers.
    """

    name = "mp"

    def __init__(self, names: tuple[str, ...]) -> None:
        super().__init__(names)
        self._ctx = _fork_context()
        self._receivers = {}
        self._senders = {}
        self._locks = {}
        for name in names:
            receiver, sender = self._ctx.Pipe(duplex=False)
            self._receivers[name] = receiver
            self._senders[name] = sender
            self._locks[name] = self._ctx.Lock()
        self._processes = []

    def channel(self, name: str) -> Channel:
        """See :meth:`Transport.channel`."""
        return _PipeChannel(
            name, self._senders, self._locks, self._receivers[name]
        )

    def spawn(self, name: str, body: Callable[[Channel], None]) -> None:
        channel = self.channel(name)
        process = self._ctx.Process(
            target=body, args=(channel,), name=f"dist-{name}", daemon=True
        )
        process.start()
        self._processes.append(process)

    def shutdown(self, timeout: float = 10.0) -> None:
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - crash cleanup
                process.terminate()
                process.join(timeout=1.0)
        self._processes.clear()


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        raise ConfigurationError(
            "the mp/tcp transports need the fork start method; "
            "use --transport inproc on this platform"
        ) from None


# ----------------------------------------------------------------------
# tcp: forked processes + a router socket in the supervisor process
# ----------------------------------------------------------------------


def _send_framed(sock: socket.socket, data: bytes, lock) -> None:
    with lock:
        sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_framed(sock: socket.socket) -> bytes | None:
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    return _recv_exact(sock, length)


class _TCPChannel(Channel):
    """A node's client connection to the router.

    Outbound frames gain a one-line envelope (``{"d": dst, "p": data}``
    … serialized as a routing prefix) — here simply: the channel wraps
    the payload with its destination so the router can forward it.
    Inbound frames arrive payload-only.
    """

    def __init__(self, name: str, port: int) -> None:
        super().__init__(name)
        self._sock = socket.create_connection(("127.0.0.1", port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        # Hello frame: tells the router which mailbox this conn owns.
        _send_framed(self._sock, ("H" + name).encode(), self._lock)

    def _send_bytes(self, dst: str, data: bytes) -> None:
        _send_framed(self._sock, b"M" + dst.encode() + b"\x00" + data, self._lock)

    def _recv_bytes(self, timeout: float | None) -> bytes | None:
        self._sock.settimeout(timeout)
        try:
            return _recv_framed(self._sock)
        except TimeoutError:
            return None

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class TCPTransport(Transport):
    """Forked node processes dialing a router thread over loopback TCP.

    The router accepts one connection per node (identified by a hello
    frame), then forwards ``M<dst>\\x00<payload>`` frames to the
    destination's connection.  Frames destined for a node that has not
    connected yet are buffered.
    """

    name = "tcp"

    def __init__(self, names: tuple[str, ...]) -> None:
        super().__init__(names)
        self._ctx = _fork_context()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._conns: dict[str, socket.socket] = {}
        self._conn_locks: dict[str, threading.Lock] = {}
        self._backlog: dict[str, list[bytes]] = {}
        self._state_lock = threading.Lock()
        self._reader_threads: list[threading.Thread] = []
        self._processes = []
        self._expected = len(names)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-router-accept", daemon=True
        )
        self._accept_thread.start()

    # -- router internals ------------------------------------------------

    def _accept_loop(self) -> None:
        accepted = 0
        while accepted < self._expected:
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed during shutdown
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello = _recv_framed(conn)
            if hello is None or not hello.startswith(b"H"):
                conn.close()
                continue
            name = hello[1:].decode()
            with self._state_lock:
                self._conns[name] = conn
                self._conn_locks[name] = threading.Lock()
                pending = self._backlog.pop(name, [])
            for data in pending:
                _send_framed(conn, data, self._conn_locks[name])
            reader = threading.Thread(
                target=self._reader_loop,
                args=(name, conn),
                name=f"dist-router-{name}",
                daemon=True,
            )
            reader.start()
            self._reader_threads.append(reader)
            accepted += 1

    def _reader_loop(self, name: str, conn: socket.socket) -> None:
        while True:
            try:
                frame = _recv_framed(conn)
            except OSError:
                return
            if frame is None:
                return
            if not frame.startswith(b"M"):
                continue
            sep = frame.index(b"\x00")
            dst = frame[1:sep].decode()
            self._route(dst, frame[sep + 1 :])

    def _route(self, dst: str, data: bytes) -> None:
        with self._state_lock:
            conn = self._conns.get(dst)
            if conn is None:
                self._backlog.setdefault(dst, []).append(data)
                return
            lock = self._conn_locks[dst]
        try:
            _send_framed(conn, data, lock)
        except OSError:  # pragma: no cover - receiver went away
            pass

    # -- Transport interface ---------------------------------------------

    def channel(self, name: str) -> Channel:
        """See :meth:`Transport.channel` (dials the router)."""
        return _TCPChannel(name, self.port)

    def spawn(self, name: str, body: Callable[[Channel], None]) -> None:
        port = self.port

        def _process_body() -> None:
            body(_TCPChannel(name, port))

        process = self._ctx.Process(
            target=_process_body, name=f"dist-{name}", daemon=True
        )
        process.start()
        self._processes.append(process)

    def shutdown(self, timeout: float = 10.0) -> None:
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - crash cleanup
                process.terminate()
                process.join(timeout=1.0)
        self._processes.clear()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._state_lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._conns.clear()


def make_transport(kind: str, names: tuple[str, ...]) -> Transport:
    """Build the transport named by ``--transport``."""
    if kind == "inproc":
        return InProcTransport(names)
    if kind == "mp":
        return MPTransport(names)
    if kind == "tcp":
        return TCPTransport(names)
    raise ConfigurationError(
        f"unknown transport {kind!r}; choose one of {', '.join(TRANSPORTS)}"
    )
