"""Deterministic fault injection for the distributed deployment.

Faults are injected at the *sender* side, inside each node, by wrapping
the node's transport channel in a :class:`FaultyChannel`.  Only the
data plane (agent messages) is perturbed — the supervisor's control
frames (ticks, done-acks) are never dropped or delayed, mirroring a
deployment where the orchestration plane is reliable but the agent
gossip is not.

Determinism: each node derives its RNG from ``plan.seed`` XOR a CRC of
its own name, so a scenario replays bit-identically regardless of
transport, process interleaving, or wall-clock timing.

Faults are active only while ``round <= plan.horizon_rounds``: any
finite execution window sees finitely many faults, which is what makes
*guaranteed* termination provable rather than merely almost-sure — the
system provably quiesces once the fault window closes and held messages
drain.  BS crashes are scheduled separately (:attr:`FaultPlan.crashes`)
and executed by the supervisor via control frames; the channel wrapper
never sees them.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_SCENARIOS",
    "CrashEvent",
    "FaultPlan",
    "FaultyChannel",
    "scenario_plan",
]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """BS ``bs_id`` crashes at the start of ``at_round`` and stays down
    for ``down_rounds`` full rounds, losing its ledger (epoch bump)."""

    bs_id: int
    at_round: int
    down_rounds: int = 2


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What to inject, where, and for how long."""

    seed: int = 0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_rounds: int = 2
    #: Restrict drop/delay to these wire kinds; ``None`` = all kinds.
    kinds: tuple[str, ...] | None = None
    #: Probabilistic faults fire only in rounds <= horizon_rounds.
    horizon_rounds: int = 12
    crashes: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        for name, p in (("drop_prob", self.drop_prob), ("delay_prob", self.delay_prob)):
            if not 0.0 <= p < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {p}")
        if self.delay_rounds < 1:
            raise ConfigurationError(
                f"delay_rounds must be >= 1, got {self.delay_rounds}"
            )
        if self.horizon_rounds < 0:
            raise ConfigurationError(
                f"horizon_rounds must be >= 0, got {self.horizon_rounds}"
            )

    @property
    def last_crash_clear_round(self) -> int:
        """First round by which every scheduled crash has recovered."""
        return max(
            (c.at_round + c.down_rounds for c in self.crashes), default=0
        )


#: Named scenarios selectable via ``dmra agents --faults``.
FAULT_SCENARIOS = ("none", "drop", "delay", "stale", "crash")


def scenario_plan(
    name: str, seed: int = 0, crash_bs_id: int = 0
) -> FaultPlan | None:
    """The canonical fault plan for a named CLI/test scenario."""
    if name == "none":
        return None
    if name == "drop":
        return FaultPlan(seed=seed, drop_prob=0.25)
    if name == "delay":
        return FaultPlan(seed=seed, delay_prob=0.35, delay_rounds=2)
    if name == "stale":
        # Only resource broadcasts lag: UEs keep proposing on outdated
        # capacity views, the regime of the staleness ablation.
        return FaultPlan(
            seed=seed, delay_prob=0.5, delay_rounds=3, kinds=("bcast",)
        )
    if name == "crash":
        return FaultPlan(
            seed=seed,
            crashes=(CrashEvent(bs_id=crash_bs_id, at_round=3, down_rounds=2),),
        )
    raise ConfigurationError(
        f"unknown fault scenario {name!r}; choose one of "
        f"{', '.join(FAULT_SCENARIOS)}"
    )


@dataclass
class FaultStats:
    dropped: int = 0
    delayed: int = 0
    released: int = 0

    def as_dict(self) -> dict[str, int]:
        """The tallies as a plain dict (for done-acks and reports)."""
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "released": self.released,
        }


class FaultyChannel:
    """Sender-side channel wrapper injecting drops and delays.

    Wraps the transport channel a node runtime uses for *data* frames.
    Held (delayed) frames are flushed the next time the node is active
    in a round at or past their release round, and are counted in that
    phase's sent tally — the count-based barrier therefore stays exact
    under arbitrary delays.
    """

    def __init__(self, channel, plan: FaultPlan | None, node_name: str) -> None:
        self._channel = channel
        self._plan = plan
        self._rng = random.Random(
            0 if plan is None else plan.seed ^ zlib.crc32(node_name.encode())
        )
        self._held: list[tuple[int, str, dict]] = []  # (release, dst, frame)
        self.stats = FaultStats()

    @property
    def held_count(self) -> int:
        return len(self._held)

    def send_data(
        self, dst: str, frame: dict, round_no: int
    ) -> list[tuple[str, str, int]]:
        """Send a data frame through the fault plan.

        Returns the ``(dst, kind, bytes)`` records of frames actually
        put on the wire — empty when the frame was dropped or is being
        held for later release.  The caller folds these records into its
        done-ack so the supervisor's count-based barrier stays exact.
        """
        plan = self._plan
        kind = frame.get("msg", {}).get("k", "?")
        if plan is not None and round_no <= plan.horizon_rounds:
            eligible = plan.kinds is None or kind in plan.kinds
            if eligible and plan.drop_prob and self._rng.random() < plan.drop_prob:
                self.stats.dropped += 1
                return []
            if eligible and plan.delay_prob and self._rng.random() < plan.delay_prob:
                self.stats.delayed += 1
                self._held.append((round_no + plan.delay_rounds, dst, frame))
                return []
        return [(dst, kind, self._channel.send(dst, frame))]

    def flush(self, round_no: int) -> list[tuple[str, str, int]]:
        """Release held frames whose delay has elapsed; returns their
        ``(dst, kind, bytes)`` send records."""
        if not self._held:
            return []
        due = [h for h in self._held if h[0] <= round_no]
        if not due:
            return []
        self._held = [h for h in self._held if h[0] > round_no]
        records = []
        for _, dst, frame in due:
            kind = frame.get("msg", {}).get("k", "?")
            records.append((dst, kind, self._channel.send(dst, frame)))
            self.stats.released += 1
        return records
