"""Node bodies of the distributed deployment: one per BS, SP, UE shard.

Each node runs :class:`NodeRuntime.run` — a loop over control frames
from the supervisor — and delegates phase work to a handler that wraps
the transport-agnostic agents of :mod:`repro.core.agents`.  Nothing
here assumes a particular transport; the runtime sees only a channel.

## Frame protocol

Control plane (reliable, never fault-injected):

* ``{"t": "tick", "phase": p, "round": r, "expect": n}`` — run phase
  ``p``; exactly ``n`` data frames addressed to this node are in flight
  and must be consumed first (the count-based barrier).
* ``{"t": "done", "src", "round", "phase", "counts": {dst: n},
  "sent_kinds": {kind: n}, "held": h, "extra": {...}}`` — phase
  complete; ``counts`` feeds the next barriers, ``held`` reports frames
  the fault injector still delays.
* ``{"t": "crash", "down": k}`` — BS only: wipe the ledger (epoch
  bump), discard everything for ``k`` rounds.
* ``{"t": "collect"}`` / ``{"t": "result", ...}`` — final state and
  accounting harvest.
* ``{"t": "stop"}`` — exit.

Data plane: ``{"t": "msg", "src": name, "msg": to_wire(message)}``,
routed sender → destination, subject to fault injection.
"""

from __future__ import annotations

from collections import Counter

from repro.core.agents import BSAgent, SPAgent, UEAgent
from repro.core.messages import (
    AssociationGrant,
    CloudFallbackNotice,
    ReleaseNotice,
    ResourceBroadcast,
    ServiceRequest,
    from_wire,
    to_wire,
)
from repro.dist.faults import FaultPlan, FaultyChannel
from repro.dist.transport import Channel, trace_context_of
from repro.errors import AllocationError
from repro.obs.histogram import DEFAULT_DEPTH_BOUNDS as _MSG_BOUNDS
from repro.obs.telemetry import FlightRecorder, Recorder
from repro.obs.trace import span_to_payload

__all__ = [
    "NodeRuntime",
    "BSNodeHandler",
    "SPNodeHandler",
    "UEHostHandler",
    "ue_host_name",
]


def ue_host_name(ue_id: int, ue_hosts: int) -> str:
    """The node hosting a UE: shard by ``ue_id`` modulo host count."""
    return f"ue:{ue_id % ue_hosts}"


class NodeRuntime:
    """Drives one node: barrier-consume data frames, run the handler,
    report counts."""

    def __init__(
        self,
        channel: Channel,
        handler,
        plan: FaultPlan | None = None,
        recv_timeout: float = 60.0,
        trace: dict | None = None,
    ) -> None:
        self.channel = channel
        self.handler = handler
        self.faulty = FaultyChannel(channel, plan, channel.name)
        self.recv_timeout = recv_timeout
        self._data_buf: list[dict] = []
        self.msgs_sent: Counter = Counter()  # kind -> frames
        self.bytes_sent: Counter = Counter()  # kind -> bytes
        # Mutable per-phase tallies, rebound in _run_phase.
        self._phase_counts: Counter = Counter()
        self._phase_kinds: Counter = Counter()
        self._round = 0
        # Cross-process tracing: when the supervisor runs a recorder it
        # ships {trace_id, epoch_s} at spawn; this node then records
        # its phase spans into its *own* recorder, on the supervisor's
        # timeline (perf_counter is fork-consistent on Linux), and the
        # harvest grafts them under the supervisor's phase spans.
        self.trace_id = None if trace is None else trace.get("trace_id")
        epoch_s = None if trace is None else trace.get("epoch_s")
        self.recorder = (
            Recorder(epoch_s=epoch_s)
            if self.trace_id is not None and epoch_s is not None
            else None
        )
        # Always-on bounded postmortem ring: one tuple append per
        # phase, dumped on crash frames.
        self.flight = FlightRecorder(capacity=128)
        self._postmortems: list[dict] = []

    # -- sending (handlers call this via the bound method) ---------------

    def send_message(self, dst: str, message) -> None:
        """Send one agent message through the fault injector."""
        frame = {"t": "msg", "src": self.channel.name, "msg": to_wire(message)}
        self._tally(self.faulty.send_data(dst, frame, self._round))

    def _tally(self, records: list[tuple[str, str, int]]) -> None:
        for dst, kind, nbytes in records:
            self._phase_counts[dst] += 1
            self._phase_kinds[kind] += 1
            self.msgs_sent[kind] += 1
            self.bytes_sent[kind] += nbytes

    # -- main loop --------------------------------------------------------

    def run(self) -> None:
        """The node's main loop: dispatch control frames until stop."""
        while True:
            frame = self._next_control()
            kind = frame["t"]
            if kind == "stop":
                self.channel.close()
                return
            if kind == "crash":
                # Snapshot the ring *before* the handler wipes state:
                # the postmortem must show the moments leading up to
                # the crash, not the recovery.
                self.flight.note("crash", down=frame["down"])
                self._postmortems.append(self.flight.dump())
                self.handler.on_crash(frame["down"])
            elif kind == "collect":
                self.channel.send("sup", self._result_frame())
            elif kind == "tick":
                self._run_phase(frame)
            else:
                raise AllocationError(
                    f"node {self.channel.name}: unexpected control frame "
                    f"{kind!r}"
                )

    def _next_control(self) -> dict:
        while True:
            frame = self.channel.recv(timeout=self.recv_timeout)
            if frame is None:
                raise AllocationError(
                    f"node {self.channel.name}: no control frame within "
                    f"{self.recv_timeout}s (supervisor gone?)"
                )
            if frame["t"] == "msg":
                self._data_buf.append(frame)
                continue
            return frame

    def _run_phase(self, tick: dict) -> None:
        phase, expect = tick["phase"], tick["expect"]
        self._round = tick["round"]
        self.flight.note(
            "tick", phase=phase, round=self._round, expect=expect
        )
        if self.recorder is not None:
            _, parent_ref = trace_context_of(tick) or (
                None, f"r{self._round}.{phase}",
            )
            with self.recorder.span(
                f"node.{phase}",
                node=self.channel.name,
                round=self._round,
                trace_id=self.trace_id,
                parent_ref=parent_ref,
            ):
                self._phase_body(phase, expect)
        else:
            self._phase_body(phase, expect)

    def _phase_body(self, phase: str, expect: int) -> None:
        while len(self._data_buf) < expect:
            frame = self.channel.recv(timeout=self.recv_timeout)
            if frame is None:
                raise AllocationError(
                    f"node {self.channel.name}: expected {expect} data "
                    f"frames for phase {phase!r}, got {len(self._data_buf)}"
                )
            if frame["t"] != "msg":
                raise AllocationError(
                    f"node {self.channel.name}: control frame "
                    f"{frame['t']!r} arrived mid-barrier"
                )
            self._data_buf.append(frame)
        batch = self._data_buf[:expect]
        del self._data_buf[:expect]
        # Canonicalize the batch order: cross-sender interleaving is
        # scheduler-dependent, and the fault injector's RNG draws map to
        # sends in processing order — without this sort the same plan
        # would drop *different* messages run to run.  The sort is
        # stable, so the per-sender FIFO order (the one guarantee the
        # transports make) is preserved within each sender.
        batch.sort(key=lambda f: f["src"])
        messages = [from_wire(f["msg"]) for f in batch]

        self._phase_counts = Counter()
        self._phase_kinds = Counter()
        self.handler.on_tick(phase, self._round, messages, self.send_message)
        self._tally(self.faulty.flush(self._round))
        if self.recorder is not None:
            self.recorder.observe(
                f"dist.node_msgs.{phase}",
                sum(self._phase_counts.values()),
                bounds=_MSG_BOUNDS,
            )
        self.channel.send(
            "sup",
            {
                "t": "done",
                "src": self.channel.name,
                "round": self._round,
                "phase": phase,
                "counts": dict(self._phase_counts),
                "sent_kinds": dict(self._phase_kinds),
                "held": self.faulty.held_count,
                "extra": self.handler.done_extra(),
            },
        )

    def _result_frame(self) -> dict:
        frame = {
            "t": "result",
            "src": self.channel.name,
            "state": self.handler.state(),
            "msgs": dict(self.msgs_sent),
            "bytes": dict(self.bytes_sent),
            "faults": self.faulty.stats.as_dict(),
        }
        if self.recorder is not None:
            frame["spans"] = [
                span_to_payload(root) for root in self.recorder.roots
            ]
            frame["hists"] = {
                name: hist.to_payload()
                for name, hist in sorted(self.recorder.histograms.items())
            }
        if self._postmortems:
            frame["flight"] = list(self._postmortems)
        return frame


class BSNodeHandler:
    """One base station process: broadcast + decide phases."""

    def __init__(
        self,
        agent: BSAgent,
        bcast_dsts: tuple[str, ...],
        always_broadcast: bool,
    ) -> None:
        self.agent = agent
        self.bcast_dsts = bcast_dsts
        # Under fault injection a skipped re-broadcast could never be
        # retried, starving UEs of the state they need to converge; a
        # reliable transport keeps the skip-unchanged optimization.
        self.always_broadcast = always_broadcast
        self._last_sent: ResourceBroadcast | None = None
        self._ue_sp: dict[int, int] = {}
        self._down = 0
        self.regrants = 0
        self.releases = 0

    def on_crash(self, down_rounds: int) -> None:
        """Wipe the ledger (epoch bump) and go dark for ``down_rounds``."""
        self.agent.reset()
        self._last_sent = None
        self._down = down_rounds

    def on_tick(self, phase, round_no, messages, send) -> None:
        """Ingest requests; broadcast in ``bcast``, grant in ``decide``."""
        if phase not in ("bcast", "decide"):
            raise AllocationError(f"BS node: unexpected phase {phase!r}")
        # Requests normally arrive in the decide barrier, but a request
        # held by a fault injector can be released into the bcast one;
        # ingest in either phase (they wait in the mailbox until the
        # round's decide step).
        if self._down == 0:
            for request in messages:
                if isinstance(request, ReleaseNotice):
                    # A UE walked away from a proposal (or declined a
                    # duplicate grant): free the booking so it is not
                    # stranded at assembly.  Unknown UE / stale epoch
                    # notices are no-ops inside release().
                    if self.agent.release(request.ue_id, request.epoch):
                        self.releases += 1
                    continue
                if not isinstance(request, ServiceRequest):
                    continue
                self._ue_sp[request.ue_id] = request.sp_id
                existing = self.agent.grant_for(request.ue_id)
                if existing is not None:
                    # Duplicate/retried request from a UE we already
                    # serve: resend the grant instead of double-booking
                    # the ledger.
                    self.regrants += 1
                    send(f"sp:{request.sp_id}", existing)
                    continue
                self.agent.deliver(request)
        if phase == "bcast":
            if self._down > 0:
                return
            broadcast = self.agent.broadcast()
            if not self.always_broadcast and broadcast.same_resources(
                self._last_sent
            ):
                return
            self._last_sent = broadcast
            for dst in self.bcast_dsts:
                send(dst, broadcast)
            return
        if self._down > 0:
            # Down: the round's requests were discarded above; grant
            # nothing.  The down counter decrements once per round,
            # here, because decide is the round's last BS phase.
            self._down -= 1
            return
        for grant in self.agent.process_round():
            send(f"sp:{self._ue_sp[grant.ue_id]}", grant)

    def done_extra(self) -> dict:
        """Ack payload: rounds of outage remaining."""
        return {"down": self._down}

    def state(self) -> dict:
        """Harvest payload: booked grants, epoch, regrant count."""
        return {
            "grants": [to_wire(g) for g in map(self._as_message, self.agent.ledger.grants.values())],
            "epoch": self.agent.epoch,
            "regrants": self.regrants,
            "releases": self.releases,
        }

    def _as_message(self, grant) -> AssociationGrant:
        return AssociationGrant(
            bs_id=grant.bs_id,
            ue_id=grant.ue_id,
            service_id=grant.service_id,
            crus=grant.crus,
            rrbs=grant.rrbs,
            epoch=self.agent.epoch,
        )


class SPNodeHandler:
    """One service provider process: the relay layer, with round-based
    retry/timeout/backoff for requests that vanish between SP and BS."""

    def __init__(
        self,
        agent: SPAgent,
        ue_hosts: int,
        retry_timeout_rounds: int = 2,
        max_retries: int = 4,
    ) -> None:
        self.agent = agent
        self.ue_hosts = ue_hosts
        self.retry_timeout_rounds = retry_timeout_rounds
        self.max_retries = max_retries
        # ue_id -> [request, last_relay_round, sp_initiated_retries]
        self._pending: dict[int, list] = {}
        self.retransmits = 0
        self.releases_relayed = 0

    def on_tick(self, phase, round_no, messages, send) -> None:
        """Relay whatever arrived; sweep the retry table in relay_req."""
        if phase not in ("relay_req", "relay_grant"):
            raise AllocationError(f"SP node: unexpected phase {phase!r}")
        # Dispatch on message type, not phase: under injected delays a
        # late-released grant can land in a relay_req barrier (and a
        # late request in a relay_grant one) — both are still relayed.
        for message in messages:
            if isinstance(message, CloudFallbackNotice):
                # The UE gave up; nothing left to retry for it.
                self.agent.forward_to_cloud(message)
                self._pending.pop(message.ue_id, None)
            elif isinstance(message, ReleaseNotice):
                # The UE walked away from that BS: relay the release and
                # stop retrying the matching request, if any.
                self.releases_relayed += 1
                entry = self._pending.get(message.ue_id)
                if (
                    entry is not None
                    and entry[0].target_bs_id == message.bs_id
                ):
                    del self._pending[message.ue_id]
                send(f"bs:{message.bs_id}", message)
            elif isinstance(message, AssociationGrant):
                relayed = self.agent.relay_grant(message)
                self._pending.pop(relayed.ue_id, None)
                send(ue_host_name(relayed.ue_id, self.ue_hosts), relayed)
            elif isinstance(message, ServiceRequest):
                request = self.agent.relay_request(message)
                entry = self._pending.get(request.ue_id)
                if entry is None or entry[0].target_bs_id != request.target_bs_id:
                    self._pending[request.ue_id] = [request, round_no, 0]
                else:
                    entry[0], entry[1] = request, round_no
                send(f"bs:{request.target_bs_id}", request)
        if phase == "relay_req":
            self._retry_sweep(round_no, send)

    def _retry_sweep(self, round_no: int, send) -> None:
        """SP-initiated retransmission: a relayed request with no grant
        and no fresh re-proposal for ``timeout * 2^retries`` rounds is
        resent; after ``max_retries`` the entry is abandoned (the UE's
        own re-proposal loop remains the end-to-end backstop)."""
        exhausted = []
        for ue_id, entry in self._pending.items():
            request, last_round, retries = entry
            if retries >= self.max_retries:
                exhausted.append(ue_id)
                continue
            backoff = self.retry_timeout_rounds * (2**retries)
            if round_no - last_round >= backoff:
                self.retransmits += 1
                entry[1], entry[2] = round_no, retries + 1
                self.agent.requests_relayed += 1
                send(f"bs:{request.target_bs_id}", request)
        for ue_id in exhausted:
            del self._pending[ue_id]

    def done_extra(self) -> dict:
        """Ack payload: requests still awaiting a grant (termination gate)."""
        return {"pending": len(self._pending)}

    def state(self) -> dict:
        """Harvest payload: relay counters and cloud-forwarded UEs."""
        return {
            "sp_id": self.agent.sp_id,
            "requests_relayed": self.agent.requests_relayed,
            "grants_relayed": self.agent.grants_relayed,
            "cloud_forwards": self.agent.cloud_forwards,
            "cloud_ue_ids": sorted(self.agent.cloud_ue_ids),
            "retransmits": self.retransmits,
            "releases_relayed": self.releases_relayed,
        }


class UEHostHandler:
    """One UE shard process: observe broadcasts, propose, track grants."""

    def __init__(
        self, agents: dict[int, UEAgent], resend_releases: bool = False
    ) -> None:
        self.agents = agents
        self._order = sorted(agents)
        # Release notices have no ack; under fault injection a dropped
        # one would strand the booking it frees, so the host keeps every
        # notice and re-sends the book each round (the BS ignores
        # duplicates).  A reliable transport sends each notice once.
        self.resend_releases = resend_releases
        self._release_book: dict[tuple[int, int, int], ReleaseNotice] = {}

    def on_tick(self, phase, round_no, messages, send) -> None:
        """Apply grants, then broadcasts, then run every UE's proposal."""
        if phase != "propose":
            raise AllocationError(f"UE host: unexpected phase {phase!r}")
        # Grants first: a grant voided by a crash (stale epoch) must be
        # applied before the epoch-bumped broadcast that disassociates
        # the UE, or the void association would survive the batch.
        for message in messages:
            if isinstance(message, AssociationGrant):
                self.agents[message.ue_id].receive_grant(message)
        for message in messages:
            if isinstance(message, ResourceBroadcast):
                for agent in self.agents.values():
                    if message.bs_id in agent.candidate_bs_ids or (
                        agent.associated_bs == message.bs_id
                    ):
                        agent.observe(message)
        for ue_id in self._order:
            proposal = self.agents[ue_id].propose()
            if proposal is not None:
                send(f"sp:{proposal.sp_id}", proposal)
        fresh: list[tuple[int, int, int]] = []
        for ue_id in self._order:
            for notice in self.agents[ue_id].drain_releases():
                key = (notice.ue_id, notice.bs_id, notice.epoch)
                if key not in self._release_book:
                    self._release_book[key] = notice
                    fresh.append(key)
        # Rescind releases for BSs the UE has since re-proposed to: a
        # re-sent notice arriving after the new grant would free the
        # legitimate booking and orphan the association.
        rescinded = [
            key
            for key in self._release_book
            if not self.agents[key[0]].still_released(key[1])
        ]
        for key in rescinded:
            del self._release_book[key]
            if key in fresh:
                fresh.remove(key)
        if self.resend_releases:
            for key in sorted(self._release_book):
                notice = self._release_book[key]
                send(f"sp:{notice.sp_id}", notice)
        else:
            for key in fresh:
                notice = self._release_book[key]
                send(f"sp:{notice.sp_id}", notice)

    def done_extra(self) -> dict:
        """Ack payload: UE hosts report nothing extra."""
        return {}

    def state(self) -> dict:
        """Harvest payload: each UE's association (or cloud fallback)."""
        return {
            "associated": {
                str(ue_id): agent.associated_bs
                for ue_id, agent in self.agents.items()
                if agent.associated_bs is not None
            },
            "cloud": sorted(
                ue_id
                for ue_id, agent in self.agents.items()
                if agent.associated_bs is None
            ),
        }
