"""repro: a reproduction of DMRA (ICDCS 2019).

Decentralized resource allocation for multi-SP mobile edge computing:
the DMRA matching scheme, the DCSP and NonCo baselines, the full radio /
compute / economic substrates they run on, and a simulation harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import DMRAAllocator, ScenarioConfig, build_scenario, run_allocation

    scenario = build_scenario(ScenarioConfig.paper(), ue_count=600, seed=1)
    outcome = run_allocation(scenario, DMRAAllocator(pricing=scenario.pricing))
    print(outcome.metrics.total_profit)
"""

from repro.baselines import (
    CloudOnlyAllocator,
    DCSPAllocator,
    GreedyProfitAllocator,
    NonCoAllocator,
    OptimalILPAllocator,
    RandomAllocator,
)
from repro.core import Allocator, Assignment, DMRAAllocator
from repro.econ import PaperPricing, compute_profit
from repro.model import MECNetwork
from repro.sim import (
    AllocationOutcome,
    OutcomeMetrics,
    Scenario,
    ScenarioConfig,
    build_scenario,
    run_allocation,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationOutcome",
    "Allocator",
    "Assignment",
    "CloudOnlyAllocator",
    "DCSPAllocator",
    "DMRAAllocator",
    "GreedyProfitAllocator",
    "MECNetwork",
    "NonCoAllocator",
    "OptimalILPAllocator",
    "OutcomeMetrics",
    "PaperPricing",
    "RandomAllocator",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "compute_profit",
    "run_allocation",
    "__version__",
]
