"""Uplink interference models.

The paper uses an SINR ``lambda_{u,i}`` whose interference term "increases
with the distance between UE u and BS i" but never specifies a co-channel
model (DESIGN.md §5, substitution 1).  We therefore provide:

* :class:`NoInterference` — noise-limited SNR (the default; path loss
  already yields the monotone distance/RRB relation the paper relies on);
* :class:`ConstantInterference` — a fixed interference floor in dBm,
  modelling a uniformly loaded neighbouring deployment;
* :class:`LoadInterference` — interference proportional to the aggregate
  received power of a sampled set of concurrent uplink transmitters,
  computed from actual UE positions through the same path-loss model.

All models return interference power in **milliwatts** at the BS receiver.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.pathloss import PathLossModel
from repro.radio.units import db_to_linear, dbm_to_mw

__all__ = [
    "InterferenceModel",
    "NoInterference",
    "ConstantInterference",
    "LoadInterference",
    "interference_mw_array",
]


class InterferenceModel(Protocol):
    """Maps a (UE, BS) link context to interference power in mW."""

    def interference_mw(
        self,
        distance_m: float,
        other_distances_m: Sequence[float],
        tx_power_dbm: float,
    ) -> float:
        """Interference at the BS for a link of length ``distance_m``.

        ``other_distances_m`` are the distances from *other* concurrently
        transmitting UEs to the same BS; models may ignore them.
        """
        ...


def interference_mw_array(
    model: InterferenceModel,
    distances_m: np.ndarray,
    tx_power_dbm: np.ndarray,
) -> np.ndarray:
    """Batched map-building interference under any model.

    Radio-map construction evaluates each link in isolation (no
    concurrent-transmitter context, i.e. ``other_distances_m = ()`` in
    the scalar path).  Models may provide a native
    ``interference_mw_array(distances_m, tx_power_dbm)``; otherwise the
    scalar method is applied element-wise with an empty context.
    """
    native = getattr(model, "interference_mw_array", None)
    if native is not None:
        return native(distances_m, tx_power_dbm)
    distances = np.asarray(distances_m, dtype=float)
    tx = np.broadcast_to(
        np.asarray(tx_power_dbm, dtype=float), distances.shape
    )
    flat = np.array(
        [
            model.interference_mw(float(d), (), float(p))
            for d, p in zip(distances.ravel(), tx.ravel())
        ],
        dtype=float,
    )
    return flat.reshape(distances.shape)


class NoInterference:
    """Noise-limited regime: zero interference."""

    def interference_mw(
        self,
        distance_m: float,
        other_distances_m: Sequence[float],
        tx_power_dbm: float,
    ) -> float:
        """Always zero."""
        return 0.0

    def interference_mw_array(
        self, distances_m: np.ndarray, tx_power_dbm: np.ndarray
    ) -> np.ndarray:
        """Zeros, shaped like the distance vector."""
        return np.zeros_like(np.asarray(distances_m, dtype=float))


class ConstantInterference:
    """A flat interference floor, e.g. from an always-on neighbour system."""

    def __init__(self, floor_dbm: float = -110.0) -> None:
        self.floor_dbm = floor_dbm

    def interference_mw(
        self,
        distance_m: float,
        other_distances_m: Sequence[float],
        tx_power_dbm: float,
    ) -> float:
        """The configured floor, independent of the link."""
        return dbm_to_mw(self.floor_dbm)

    def interference_mw_array(
        self, distances_m: np.ndarray, tx_power_dbm: np.ndarray
    ) -> np.ndarray:
        """The flat floor broadcast over the distance vector."""
        distances = np.asarray(distances_m, dtype=float)
        return np.full(distances.shape, dbm_to_mw(self.floor_dbm))


class LoadInterference:
    """Interference from a fraction of concurrent co-channel uplinks.

    Each other UE is assumed to transmit at ``tx_power_dbm`` and to collide
    on the same RRB with probability ``activity_factor`` (OFDMA schedules
    different UEs of one cell onto orthogonal RRBs, so only cross-cell
    reuse collides; the activity factor captures that reuse probability).
    """

    def __init__(
        self, pathloss: PathLossModel, activity_factor: float = 0.1
    ) -> None:
        if not 0.0 <= activity_factor <= 1.0:
            raise ConfigurationError(
                f"activity_factor must be in [0, 1], got {activity_factor}"
            )
        self.pathloss = pathloss
        self.activity_factor = activity_factor

    def interference_mw(
        self,
        distance_m: float,
        other_distances_m: Sequence[float],
        tx_power_dbm: float,
    ) -> float:
        """Aggregate received power of concurrent uplinks, scaled by
        the reuse-collision probability."""
        if self.activity_factor == 0.0 or not other_distances_m:
            return 0.0
        tx_mw = dbm_to_mw(tx_power_dbm)
        total = 0.0
        for other_distance in other_distances_m:
            loss_linear = db_to_linear(self.pathloss.loss_db(other_distance))
            total += tx_mw / loss_linear
        return self.activity_factor * total

    def interference_mw_array(
        self, distances_m: np.ndarray, tx_power_dbm: np.ndarray
    ) -> np.ndarray:
        """Zeros: map construction carries no concurrent-uplink context,
        matching the scalar path's empty ``other_distances_m``."""
        return np.zeros_like(np.asarray(distances_m, dtype=float))
