"""Radio substrate: path loss, SINR, OFDMA RRB math, and the radio map."""

from repro.radio.channel import (
    LinkMetrics,
    RadioMap,
    build_radio_map,
    build_radio_map_reference,
    register_array_rate_model,
)
from repro.radio.interference import (
    ConstantInterference,
    InterferenceModel,
    LoadInterference,
    NoInterference,
    interference_mw_array,
)
from repro.radio.mcs import (
    MCS_TABLE,
    McsEntry,
    mcs_for_sinr,
    mcs_rate_bps,
    mcs_rate_bps_array,
)
from repro.radio.ofdma import (
    per_rrb_rate_bps,
    per_rrb_rate_bps_array,
    rrb_budget,
    rrbs_required,
    rrbs_required_array,
)
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    PaperPathLoss,
    PathLossModel,
    ShadowedPathLoss,
    loss_db_array,
)
from repro.radio.sinr import (
    LinkBudget,
    noise_power_mw,
    received_power_mw,
    thermal_noise_dbm,
)
from repro.radio.units import (
    db_to_linear,
    dbm_to_mw,
    khz,
    linear_to_db,
    mbps,
    mhz,
    mw_to_dbm,
)

__all__ = [
    "ConstantInterference",
    "FreeSpacePathLoss",
    "InterferenceModel",
    "LinkBudget",
    "LinkMetrics",
    "LoadInterference",
    "MCS_TABLE",
    "McsEntry",
    "NoInterference",
    "PaperPathLoss",
    "PathLossModel",
    "RadioMap",
    "ShadowedPathLoss",
    "build_radio_map",
    "build_radio_map_reference",
    "register_array_rate_model",
    "interference_mw_array",
    "loss_db_array",
    "mcs_rate_bps_array",
    "per_rrb_rate_bps_array",
    "rrbs_required_array",
    "db_to_linear",
    "dbm_to_mw",
    "khz",
    "linear_to_db",
    "mbps",
    "mcs_for_sinr",
    "mcs_rate_bps",
    "mhz",
    "mw_to_dbm",
    "noise_power_mw",
    "thermal_noise_dbm",
    "per_rrb_rate_bps",
    "received_power_mw",
    "rrb_budget",
    "rrbs_required",
]
