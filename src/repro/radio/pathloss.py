"""Path-loss models.

The paper's uplink follows the distance-dependent model (Eq. 18)::

    PL(dB) = 140.7 + 36.7 * log10(d_km)

which is the 3GPP non-line-of-sight macro model commonly used in LTE
uplink studies.  :class:`PaperPathLoss` implements it; a free-space model
and a log-normal-shadowing wrapper are provided for sensitivity studies.

All models take distances in **meters** (the model layer's unit) and
return attenuation in dB.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "PathLossModel",
    "PaperPathLoss",
    "FreeSpacePathLoss",
    "ShadowedPathLoss",
    "loss_db_array",
]


class PathLossModel(Protocol):
    """Anything that maps a distance in meters to a loss in dB.

    Models may additionally provide ``loss_db_array(distances_m)``
    evaluating the same formula over a NumPy vector; the batched
    radio-map builder uses it when present and falls back to an
    element-wise loop otherwise (see :func:`loss_db_array`).
    """

    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at the given distance."""
        ...


def loss_db_array(model: PathLossModel, distances_m: np.ndarray) -> np.ndarray:
    """Batched path loss under any model.

    Dispatches to the model's native ``loss_db_array`` when it has one;
    otherwise applies the scalar ``loss_db`` element-wise (slow but
    correct for custom models), preserving array order so stateful
    models such as :class:`ShadowedPathLoss` draw in a stable sequence.
    """
    native = getattr(model, "loss_db_array", None)
    if native is not None:
        return native(distances_m)
    distances = np.asarray(distances_m, dtype=float)
    flat = np.array(
        [model.loss_db(float(d)) for d in distances.ravel()], dtype=float
    )
    return flat.reshape(distances.shape)


class PaperPathLoss:
    """The paper's Eq. 18: ``140.7 + 36.7 log10(d_km)`` dB.

    A ``min_distance_m`` floor avoids the formula's singularity at d = 0
    (physically, a UE is never at zero distance from the antenna).
    """

    def __init__(
        self,
        fixed_db: float = 140.7,
        slope_db_per_decade: float = 36.7,
        min_distance_m: float = 1.0,
    ) -> None:
        if min_distance_m <= 0:
            raise ConfigurationError(
                f"min_distance_m must be > 0, got {min_distance_m}"
            )
        self.fixed_db = fixed_db
        self.slope_db_per_decade = slope_db_per_decade
        self.min_distance_m = min_distance_m

    def loss_db(self, distance_m: float) -> float:
        """Eq. 18 attenuation, floored at ``min_distance_m``."""
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance_m}")
        d_km = max(distance_m, self.min_distance_m) / 1000.0
        return self.fixed_db + self.slope_db_per_decade * math.log10(d_km)

    def loss_db_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized Eq. 18 over a distance vector (same float64 ops)."""
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ConfigurationError("distances must be >= 0 everywhere")
        d_km = np.maximum(distances, self.min_distance_m) / 1000.0
        return self.fixed_db + self.slope_db_per_decade * np.log10(d_km)


class FreeSpacePathLoss:
    """Free-space path loss at a given carrier frequency (for ablations)."""

    def __init__(
        self, carrier_frequency_hz: float = 2.0e9, min_distance_m: float = 1.0
    ) -> None:
        if carrier_frequency_hz <= 0:
            raise ConfigurationError(
                f"carrier frequency must be > 0, got {carrier_frequency_hz}"
            )
        if min_distance_m <= 0:
            raise ConfigurationError(
                f"min_distance_m must be > 0, got {min_distance_m}"
            )
        self.carrier_frequency_hz = carrier_frequency_hz
        self.min_distance_m = min_distance_m

    def loss_db(self, distance_m: float) -> float:
        """Free-space attenuation at the configured carrier."""
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance_m}")
        d = max(distance_m, self.min_distance_m)
        # FSPL(dB) = 20 log10(d_m) + 20 log10(f_Hz) - 147.55
        return (
            20.0 * math.log10(d)
            + 20.0 * math.log10(self.carrier_frequency_hz)
            - 147.55
        )

    def loss_db_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized free-space attenuation over a distance vector."""
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ConfigurationError("distances must be >= 0 everywhere")
        d = np.maximum(distances, self.min_distance_m)
        return (
            20.0 * np.log10(d)
            + 20.0 * math.log10(self.carrier_frequency_hz)
            - 147.55
        )


class ShadowedPathLoss:
    """Adds frozen log-normal shadowing on top of a base model.

    Shadowing is sampled per link lazily and cached, so repeated queries
    for the same (quantized) distance within one scenario are consistent.
    A dedicated RNG keeps shadowing reproducible and independent from the
    scenario's other random draws.
    """

    def __init__(
        self,
        base: PathLossModel,
        sigma_db: float = 8.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sigma_db < 0:
            raise ConfigurationError(f"sigma_db must be >= 0, got {sigma_db}")
        self.base = base
        self.sigma_db = sigma_db
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._cache: dict[int, float] = {}

    def loss_db(self, distance_m: float) -> float:
        """Base loss plus this link's frozen shadowing draw."""
        key = int(round(distance_m * 1000.0))  # mm resolution
        shadow = self._cache.get(key)
        if shadow is None:
            shadow = float(self._rng.normal(0.0, self.sigma_db))
            self._cache[key] = shadow
        return self.base.loss_db(distance_m) + shadow
