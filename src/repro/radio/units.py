"""Unit conversions for link-budget arithmetic.

The radio substrate works internally in linear units (milliwatts, Hz,
bits/s); configuration and the paper's parameters use dBm/dB.  These
helpers keep conversions in one tested place.
"""

from __future__ import annotations

import math

__all__ = [
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "mbps",
    "mhz",
    "khz",
]


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm.

    Raises ``ValueError`` for non-positive powers, which have no dB
    representation.
    """
    if mw <= 0:
        raise ValueError(f"power must be > 0 mW to express in dBm, got {mw}")
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB."""
    if ratio <= 0:
        raise ValueError(f"ratio must be > 0 to express in dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def mbps(value: float) -> float:
    """Megabits per second -> bits per second."""
    return value * 1e6


def mhz(value: float) -> float:
    """Megahertz -> hertz."""
    return value * 1e6


def khz(value: float) -> float:
    """Kilohertz -> hertz."""
    return value * 1e3
