"""Discrete modulation-and-coding (MCS) rate mapping.

The paper's Eq. 2 uses the Shannon bound; real LTE links quantize to a
modulation-and-coding scheme chosen from the measured SINR.  This
module provides the standard 15-level CQI table (QPSK 78/1024 up to
64-QAM 948/1024) so sensitivity runs can ask: *do the paper's
conclusions survive rate quantization?*  (They do — see the
``ext``-style test in the suite — because the high-SNR regime pins
almost every link at the top MCS either way.)

Spectral efficiencies are the 3GPP TS 36.213 Table 7.2.3-1 values in
bits/s/Hz; the SINR thresholds are the conventional ~10%-BLER switching
points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "MCS_TABLE",
    "McsEntry",
    "mcs_for_sinr",
    "mcs_rate_bps",
    "mcs_rate_bps_array",
]


@dataclass(frozen=True, slots=True)
class McsEntry:
    """One CQI level: minimum SINR and achieved spectral efficiency."""

    cqi: int
    min_sinr_db: float
    modulation: str
    efficiency_bps_hz: float


#: CQI 1..15; a link below CQI 1's threshold carries no data.
MCS_TABLE: tuple[McsEntry, ...] = (
    McsEntry(1, -6.7, "QPSK", 0.1523),
    McsEntry(2, -4.7, "QPSK", 0.2344),
    McsEntry(3, -2.3, "QPSK", 0.3770),
    McsEntry(4, 0.2, "QPSK", 0.6016),
    McsEntry(5, 2.4, "QPSK", 0.8770),
    McsEntry(6, 4.3, "QPSK", 1.1758),
    McsEntry(7, 5.9, "16QAM", 1.4766),
    McsEntry(8, 8.1, "16QAM", 1.9141),
    McsEntry(9, 10.3, "16QAM", 2.4063),
    McsEntry(10, 11.7, "64QAM", 2.7305),
    McsEntry(11, 14.1, "64QAM", 3.3223),
    McsEntry(12, 16.3, "64QAM", 3.9023),
    McsEntry(13, 18.7, "64QAM", 4.5234),
    McsEntry(14, 21.0, "64QAM", 5.1152),
    McsEntry(15, 22.7, "64QAM", 5.5547),
)


def mcs_for_sinr(sinr_linear: float) -> McsEntry | None:
    """The highest CQI whose threshold the SINR meets; ``None`` below CQI 1."""
    if sinr_linear < 0:
        raise ConfigurationError(f"SINR must be >= 0, got {sinr_linear}")
    if sinr_linear == 0:
        return None
    sinr_db = 10.0 * math.log10(sinr_linear)
    chosen: McsEntry | None = None
    for entry in MCS_TABLE:
        if sinr_db >= entry.min_sinr_db:
            chosen = entry
        else:
            break
    return chosen


def mcs_rate_bps(rrb_bandwidth_hz: float, sinr_linear: float) -> float:
    """Per-RRB rate under the MCS table (the quantized Eq. 2).

    Always at most the Shannon rate for the same SINR, equal to zero
    below the lowest CQI threshold.
    """
    if rrb_bandwidth_hz <= 0:
        raise ConfigurationError(
            f"rrb_bandwidth_hz must be > 0, got {rrb_bandwidth_hz}"
        )
    entry = mcs_for_sinr(sinr_linear)
    if entry is None:
        return 0.0
    return rrb_bandwidth_hz * entry.efficiency_bps_hz


#: CQI switching thresholds / efficiencies as arrays for batched lookup.
_MIN_SINR_DB = np.array([entry.min_sinr_db for entry in MCS_TABLE])
_EFFICIENCY_BPS_HZ = np.array([entry.efficiency_bps_hz for entry in MCS_TABLE])


def mcs_rate_bps_array(
    rrb_bandwidth_hz: float, sinr_linear: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`mcs_rate_bps`: CQI lookup over an SINR vector.

    ``searchsorted`` over the threshold table picks the same "highest CQI
    whose threshold the SINR meets" the scalar walk does; links below
    CQI 1 (or with zero SINR) carry nothing.
    """
    if rrb_bandwidth_hz <= 0:
        raise ConfigurationError(
            f"rrb_bandwidth_hz must be > 0, got {rrb_bandwidth_hz}"
        )
    sinr = np.asarray(sinr_linear, dtype=float)
    if np.any(sinr < 0):
        raise ConfigurationError("SINR must be >= 0 everywhere")
    rates = np.zeros_like(sinr)
    audible = sinr > 0
    sinr_db = 10.0 * np.log10(sinr[audible])
    level = np.searchsorted(_MIN_SINR_DB, sinr_db, side="right") - 1
    usable = level >= 0
    found = np.zeros_like(sinr_db)
    found[usable] = rrb_bandwidth_hz * _EFFICIENCY_BPS_HZ[level[usable]]
    rates[audible] = found
    return rates
