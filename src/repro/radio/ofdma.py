"""OFDMA radio-resource-block (RRB) arithmetic.

Implements Eqs. 2--4 of the paper:

* per-RRB achievable rate  ``e_{u,i} = W_sub * log2(1 + lambda_{u,i})``;
* RRB demand               ``n_{u,i} = ceil(w_u / e_{u,i})``;
* per-BS RRB budget        ``N_i = floor(W_i / W_sub)``.

Each scalar function has an array twin (``*_array``) evaluating the same
formula over whole NumPy vectors; the batched radio-map builder uses the
twins, and the parity suite pins them against the scalar originals.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, InfeasibleLinkError

__all__ = [
    "per_rrb_rate_bps",
    "per_rrb_rate_bps_array",
    "rrbs_required",
    "rrbs_required_array",
    "rrb_budget",
]


def per_rrb_rate_bps(rrb_bandwidth_hz: float, sinr_linear: float) -> float:
    """Shannon rate of one RRB at the given linear SINR (Eq. 2)."""
    if rrb_bandwidth_hz <= 0:
        raise ConfigurationError(
            f"rrb_bandwidth_hz must be > 0, got {rrb_bandwidth_hz}"
        )
    if sinr_linear < 0:
        raise ConfigurationError(f"SINR must be >= 0, got {sinr_linear}")
    return rrb_bandwidth_hz * math.log2(1.0 + sinr_linear)


def per_rrb_rate_bps_array(
    rrb_bandwidth_hz: float, sinr_linear: np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 2: Shannon rate for a whole vector of linear SINRs.

    Element-for-element identical to :func:`per_rrb_rate_bps` (both sides
    evaluate ``W_sub * log2(1 + sinr)`` in float64 through libm).
    """
    if rrb_bandwidth_hz <= 0:
        raise ConfigurationError(
            f"rrb_bandwidth_hz must be > 0, got {rrb_bandwidth_hz}"
        )
    sinr = np.asarray(sinr_linear, dtype=float)
    if np.any(sinr < 0):
        raise ConfigurationError("SINR must be >= 0 everywhere")
    return rrb_bandwidth_hz * np.log2(1.0 + sinr)


def rrbs_required(rate_demand_bps: float, per_rrb_bps: float) -> int:
    """Number of RRBs needed to reach ``rate_demand_bps`` (Eq. 3).

    Raises :class:`InfeasibleLinkError` when the link carries no data at
    all (``per_rrb_bps == 0``): no finite number of RRBs can help then.
    """
    if rate_demand_bps <= 0:
        raise ConfigurationError(
            f"rate demand must be > 0, got {rate_demand_bps}"
        )
    if per_rrb_bps <= 0:
        raise InfeasibleLinkError(
            "per-RRB rate is zero; the link cannot carry the demanded rate"
        )
    return math.ceil(rate_demand_bps / per_rrb_bps)


def rrbs_required_array(
    rate_demand_bps: np.ndarray,
    per_rrb_bps: np.ndarray,
    infeasible_value: np.ndarray | int,
) -> np.ndarray:
    """Vectorized Eq. 3: ``ceil(w_u / e_{u,i})`` over whole link vectors.

    Where the per-RRB rate is zero the scalar API raises
    :class:`InfeasibleLinkError`; the batched radio-map builder instead
    pins such links at ``infeasible_value`` (per-link broadcastable,
    typically the BS's ``rrb_capacity + 1``) so allocators uniformly see
    them as over-budget.  The division is the same float64 operation the
    scalar path performs, so the resulting integers agree exactly.
    """
    demand = np.asarray(rate_demand_bps, dtype=float)
    rate = np.asarray(per_rrb_bps, dtype=float)
    if np.any(demand <= 0):
        raise ConfigurationError("rate demand must be > 0 everywhere")
    carrying = rate > 0
    quotient = np.divide(
        demand, rate, out=np.ones_like(rate), where=carrying
    )
    counts = np.ceil(quotient)
    return np.where(carrying, counts, infeasible_value).astype(np.int64)


def rrb_budget(uplink_bandwidth_hz: float, rrb_bandwidth_hz: float) -> int:
    """``N_i``: how many RRBs fit in the uplink band."""
    if uplink_bandwidth_hz <= 0 or rrb_bandwidth_hz <= 0:
        raise ConfigurationError(
            f"bandwidths must be > 0, got W_i={uplink_bandwidth_hz}, "
            f"W_sub={rrb_bandwidth_hz}"
        )
    budget = int(uplink_bandwidth_hz // rrb_bandwidth_hz)
    if budget == 0:
        raise ConfigurationError(
            "uplink bandwidth is smaller than one RRB; budget would be zero"
        )
    return budget
