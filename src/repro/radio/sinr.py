"""Link budget: received power, noise, and SINR.

Implements the paper's uplink model: UE transmit power (10 dBm by
default), the Eq. 18 path loss, the paper's noise figure (−170 dBm,
taken literally as the noise power a receiver sees on one RRB), and a
pluggable interference model.

The −170 dBm noise floor is far below thermal for a 180 kHz channel
(−121 dBm); it is nevertheless what §VI.A states, and adopting it
reproduces the paper's operating regime: per-RRB Shannon rates of
3--5 Mbps across the whole deployment, so a UE needs only 1--2 RRBs
and the radio pool saturates around 900--1000 UEs — exactly where the
paper's profit curves flatten.  Use ``thermal_noise_dbm`` for a
physically conventional floor in sensitivity studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.interference import (
    InterferenceModel,
    NoInterference,
    interference_mw_array,
)
from repro.radio.pathloss import PathLossModel, PaperPathLoss, loss_db_array
from repro.radio.units import db_to_linear, dbm_to_mw, mw_to_dbm

__all__ = [
    "LinkBudget",
    "received_power_mw",
    "noise_power_mw",
    "thermal_noise_dbm",
]

#: Thermal noise power spectral density at 290 K, dBm/Hz.
THERMAL_NOISE_DENSITY_DBM_HZ = -174.0


def received_power_mw(
    tx_power_dbm: float, pathloss_db: float
) -> float:
    """Received power in mW after the given path loss."""
    return dbm_to_mw(tx_power_dbm) / db_to_linear(pathloss_db)


def noise_power_mw(noise_density_dbm_hz: float, bandwidth_hz: float) -> float:
    """Noise of the given spectral density integrated over a band, in mW."""
    if bandwidth_hz <= 0:
        raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth_hz}")
    return dbm_to_mw(noise_density_dbm_hz) * bandwidth_hz


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Conventional thermal noise power over a band, in dBm.

    Provided for sensitivity studies that swap the paper's −170 dBm
    figure for a physically standard floor (≈ −121.4 dBm for one RRB).
    """
    power_mw = noise_power_mw(THERMAL_NOISE_DENSITY_DBM_HZ, bandwidth_hz)
    return mw_to_dbm(power_mw) + noise_figure_db


@dataclass(frozen=True)
class LinkBudget:
    """Computes SINR ``lambda_{u,i}`` for UE--BS links.

    Parameters
    ----------
    pathloss:
        Distance -> attenuation model (defaults to the paper's Eq. 18).
    interference:
        Interference model (defaults to noise-limited).
    noise_dbm:
        Noise power per RRB; −170 dBm per §VI.A (see module docstring).
    rrb_bandwidth_hz:
        ``W_sub``; 180 kHz in the paper.
    """

    pathloss: PathLossModel = None  # type: ignore[assignment]
    interference: InterferenceModel = None  # type: ignore[assignment]
    noise_dbm: float = -170.0
    rrb_bandwidth_hz: float = 180e3

    def __post_init__(self) -> None:
        if self.pathloss is None:
            object.__setattr__(self, "pathloss", PaperPathLoss())
        if self.interference is None:
            object.__setattr__(self, "interference", NoInterference())
        if self.rrb_bandwidth_hz <= 0:
            raise ConfigurationError(
                f"rrb_bandwidth_hz must be > 0, got {self.rrb_bandwidth_hz}"
            )
        # The budget is frozen, so the noise power never changes: convert
        # once here instead of on every per-pair sinr() call.
        object.__setattr__(self, "_noise_mw", dbm_to_mw(self.noise_dbm))

    @property
    def noise_mw(self) -> float:
        """Noise power over one RRB, in mW (converted once at init)."""
        return self._noise_mw

    def sinr(
        self,
        distance_m: float,
        tx_power_dbm: float,
        other_distances_m: Sequence[float] = (),
    ) -> float:
        """Linear SINR ``lambda_{u,i}`` for a link of length ``distance_m``.

        ``other_distances_m`` feeds the interference model (distances of
        other concurrent transmitters to the same BS); the default model
        ignores it.
        """
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance_m}")
        signal = received_power_mw(
            tx_power_dbm, self.pathloss.loss_db(distance_m)
        )
        interference = self.interference.interference_mw(
            distance_m, other_distances_m, tx_power_dbm
        )
        return signal / (self.noise_mw + interference)

    def sinr_array(
        self,
        distances_m: np.ndarray,
        tx_power_dbm: np.ndarray | float,
    ) -> np.ndarray:
        """Linear SINR for a whole vector of links at once.

        ``tx_power_dbm`` broadcasts against ``distances_m`` (a scalar or
        a per-link vector).  Evaluates the identical float64 chain as
        :meth:`sinr` — ``10^(tx/10) / 10^(loss/10)`` over the cached
        noise plus the model's map-building interference — so the two
        paths agree element-for-element.  Like the scalar path, the
        interference context carries no concurrent transmitters.
        """
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ConfigurationError("distances must be >= 0 everywhere")
        tx = np.asarray(tx_power_dbm, dtype=float)
        loss_db = loss_db_array(self.pathloss, distances)
        signal = 10.0 ** (tx / 10.0) / 10.0 ** (loss_db / 10.0)
        interference = interference_mw_array(self.interference, distances, tx)
        return signal / (self._noise_mw + interference)

    def sinr_db(
        self,
        distance_m: float,
        tx_power_dbm: float,
        other_distances_m: Sequence[float] = (),
    ) -> float:
        """SINR in dB (convenience wrapper over :meth:`sinr`)."""
        value = self.sinr(distance_m, tx_power_dbm, other_distances_m)
        if value <= 0:
            raise ConfigurationError("SINR is non-positive; cannot express in dB")
        return 10.0 * math.log10(value)
