"""The radio map: precomputed link metrics for every candidate UE--BS pair.

Allocators never call path-loss or SINR code directly; they consume a
:class:`RadioMap` built once per scenario.  For each UE ``u`` and each BS
``i`` in its candidate set ``B_u`` the map stores the distance, the SINR
``lambda_{u,i}``, the per-RRB rate ``e_{u,i}``, and the RRB demand
``n_{u,i}`` — everything Eqs. 2--4 derive from geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.errors import UnknownEntityError
from repro.model.network import MECNetwork
from repro.radio.ofdma import per_rrb_rate_bps, rrbs_required
from repro.radio.sinr import LinkBudget

__all__ = ["LinkMetrics", "RadioMap", "build_radio_map"]

#: Signature of a per-RRB rate model: (rrb_bandwidth_hz, sinr) -> bits/s.
RateModel = Callable[[float, float], float]


@dataclass(frozen=True, slots=True)
class LinkMetrics:
    """Radio-level facts about one candidate UE--BS link."""

    ue_id: int
    bs_id: int
    distance_m: float
    sinr_linear: float
    per_rrb_rate_bps: float
    rrbs_required: int

    @property
    def feasible(self) -> bool:
        """Whether the link can carry the UE's demand with >= 1 RRB."""
        return self.rrbs_required >= 1 and self.per_rrb_rate_bps > 0


@dataclass(frozen=True)
class RadioMap:
    """Immutable lookup of :class:`LinkMetrics` per (UE, BS) pair.

    Only candidate links (BS covers the UE and hosts its service) are
    present; querying any other pair raises :class:`UnknownEntityError`.
    """

    _links: Mapping[tuple[int, int], LinkMetrics]

    def link(self, ue_id: int, bs_id: int) -> LinkMetrics:
        """Metrics for one candidate link."""
        try:
            return self._links[(ue_id, bs_id)]
        except KeyError:
            raise UnknownEntityError(
                f"no candidate link UE {ue_id} -> BS {bs_id}"
            ) from None

    def has_link(self, ue_id: int, bs_id: int) -> bool:
        """Whether the pair is a candidate link."""
        return (ue_id, bs_id) in self._links

    def links_of_ue(self, ue_id: int) -> tuple[LinkMetrics, ...]:
        """All candidate links of one UE."""
        return tuple(
            metrics
            for (u, _), metrics in self._links.items()
            if u == ue_id
        )

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[LinkMetrics]:
        return iter(self._links.values())


def build_radio_map(
    network: MECNetwork,
    budget: LinkBudget,
    rate_model: RateModel | None = None,
) -> RadioMap:
    """Evaluate the link budget over every candidate UE--BS pair.

    ``rate_model`` maps ``(rrb_bandwidth_hz, sinr)`` to a per-RRB rate;
    the default is the paper's Shannon bound (Eq. 2), and
    :func:`repro.radio.mcs.mcs_rate_bps` gives the quantized LTE
    alternative.

    Links whose per-RRB rate is zero (out of practical range) are kept
    with ``rrbs_required`` set high enough to exceed any BS budget, so
    allocators uniformly treat them as infeasible rather than special-
    casing missing entries.
    """
    if rate_model is None:
        rate_model = per_rrb_rate_bps
    links: dict[tuple[int, int], LinkMetrics] = {}
    for ue in network.user_equipments:
        for bs_id in network.candidate_base_stations(ue.ue_id):
            distance = network.distance_m(ue.ue_id, bs_id)
            sinr = budget.sinr(distance, ue.tx_power_dbm)
            rate = rate_model(budget.rrb_bandwidth_hz, sinr)
            if rate > 0:
                demand = rrbs_required(ue.rate_demand_bps, rate)
            else:
                demand = network.base_station(bs_id).rrb_capacity + 1
            links[(ue.ue_id, bs_id)] = LinkMetrics(
                ue_id=ue.ue_id,
                bs_id=bs_id,
                distance_m=distance,
                sinr_linear=sinr,
                per_rrb_rate_bps=rate,
                rrbs_required=demand,
            )
    return RadioMap(_links=links)
