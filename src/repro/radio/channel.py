"""The radio map: precomputed link metrics for every candidate UE--BS pair.

Allocators never call path-loss or SINR code directly; they consume a
:class:`RadioMap` built once per scenario.  For each UE ``u`` and each BS
``i`` in its candidate set ``B_u`` the map stores the distance, the SINR
``lambda_{u,i}``, the per-RRB rate ``e_{u,i}``, and the RRB demand
``n_{u,i}`` — everything Eqs. 2--4 derive from geometry.

Internally the map is **columnar**: one NumPy array per field over all
candidate links, grouped by UE in network order (BS order within a UE's
group).  :func:`build_radio_map` fills those columns with whole-matrix
operations — distances from the network's cached matrix, Eq. 18 path
loss, SINR, the Eq. 2 rate, and the Eq. 3 ``ceil`` demand each evaluated
once over the candidate mask — while the allocator-facing API
(:meth:`RadioMap.link`, :meth:`RadioMap.links_of_ue`, iteration) hands
out lazily materialized :class:`LinkMetrics` views.

:func:`build_radio_map_reference` keeps the original per-pair scalar
loop; the parity suite pins the vectorized map against it link for link
(exact integer demands and candidate sets, float fields to ≤1e-9
relative), so the fast path can never silently drift from Eqs. 2--4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import UnknownEntityError
from repro.model.network import MECNetwork
from repro.obs.telemetry import get_telemetry
from repro.radio.mcs import mcs_rate_bps, mcs_rate_bps_array
from repro.radio.ofdma import (
    per_rrb_rate_bps,
    per_rrb_rate_bps_array,
    rrbs_required,
    rrbs_required_array,
)
from repro.radio.sinr import LinkBudget
from repro.radio.units import db_to_linear, dbm_to_mw

__all__ = [
    "LinkMetrics",
    "RadioMap",
    "build_radio_map",
    "build_radio_map_reference",
    "register_array_rate_model",
]

#: Signature of a per-RRB rate model: (rrb_bandwidth_hz, sinr) -> bits/s.
RateModel = Callable[[float, float], float]

#: Signature of a batched rate model: (rrb_bandwidth_hz, sinr_vector) -> bits/s.
ArrayRateModel = Callable[[float, np.ndarray], np.ndarray]

#: Known scalar rate models and their vectorized twins.  Unregistered
#: models still work — the builder falls back to an element-wise loop.
_ARRAY_RATE_MODELS: dict[RateModel, ArrayRateModel] = {
    per_rrb_rate_bps: per_rrb_rate_bps_array,
    mcs_rate_bps: mcs_rate_bps_array,
}


def register_array_rate_model(
    scalar_model: RateModel, array_model: ArrayRateModel
) -> None:
    """Teach :func:`build_radio_map` the batched twin of a rate model.

    Custom rate models without a registered twin are evaluated link by
    link (correct, but off the fast path).  The twin must agree with the
    scalar model to float64 precision — the parity tests assume it.
    """
    _ARRAY_RATE_MODELS[scalar_model] = array_model


@dataclass(frozen=True, slots=True)
class LinkMetrics:
    """Radio-level facts about one candidate UE--BS link."""

    ue_id: int
    bs_id: int
    distance_m: float
    sinr_linear: float
    per_rrb_rate_bps: float
    rrbs_required: int

    @property
    def feasible(self) -> bool:
        """Whether the link can carry the UE's demand with >= 1 RRB."""
        return self.rrbs_required >= 1 and self.per_rrb_rate_bps > 0


class RadioMap:
    """Immutable columnar lookup of link metrics per (UE, BS) pair.

    Only candidate links (BS covers the UE and hosts its service) are
    present; querying any other pair raises :class:`UnknownEntityError`.
    Fields live in per-column NumPy arrays (grouped by UE, BS order
    within a group); :class:`LinkMetrics` objects are materialized lazily
    on first access and cached, so the dict-of-objects API survives
    unchanged while whole-map math stays array-shaped.
    """

    __slots__ = (
        "_ue_ids",
        "_bs_ids",
        "_distance_m",
        "_sinr",
        "_rate",
        "_rrbs",
        "_pos",
        "_ue_slice",
        "_metrics",
    )

    def __init__(
        self,
        ue_ids: np.ndarray,
        bs_ids: np.ndarray,
        distance_m: np.ndarray,
        sinr_linear: np.ndarray,
        per_rrb_rate_bps: np.ndarray,
        rrbs_required: np.ndarray,
        ue_slices: dict[int, tuple[int, int]] | None = None,
        _metrics: list[LinkMetrics | None] | None = None,
    ) -> None:
        """Wrap precomputed columns (grouped by UE; see class docstring).

        The ``(ue, bs) -> position`` hash index (and, when not supplied,
        the per-UE slice index) is built lazily on first point lookup:
        construction stays pure array work, and whole-map consumers that
        never call :meth:`link` never pay for the dict.
        """
        self._ue_ids = _frozen(np.asarray(ue_ids, dtype=np.int64))
        self._bs_ids = _frozen(np.asarray(bs_ids, dtype=np.int64))
        self._distance_m = _frozen(np.asarray(distance_m, dtype=float))
        self._sinr = _frozen(np.asarray(sinr_linear, dtype=float))
        self._rate = _frozen(np.asarray(per_rrb_rate_bps, dtype=float))
        self._rrbs = _frozen(np.asarray(rrbs_required, dtype=np.int64))
        self._pos: dict[tuple[int, int], int] | None = None
        self._ue_slice = ue_slices
        if _metrics is None:
            _metrics = [None] * len(self._ue_ids)
        self._metrics = _metrics

    @property
    def _position_index(self) -> dict[tuple[int, int], int]:
        """The (ue, bs) -> column position hash, built on first use."""
        if self._pos is None:
            self._pos = {
                pair: index
                for index, pair in enumerate(
                    zip(self._ue_ids.tolist(), self._bs_ids.tolist())
                )
            }
        return self._pos

    @property
    def _ue_index(self) -> dict[int, tuple[int, int]]:
        """The per-UE (start, stop) slice index, built on first use."""
        if self._ue_slice is None:
            self._ue_slice = _slices_from_grouped_ids(self._ue_ids.tolist())
        return self._ue_slice

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_links(cls, links: Iterable[LinkMetrics]) -> "RadioMap":
        """Build a map from materialized metrics (scalar reference path).

        ``links`` must already be grouped by UE (all of one UE's links
        contiguous), which is how both builders naturally emit them.
        """
        links = list(links)
        return cls(
            ue_ids=np.array([m.ue_id for m in links], dtype=np.int64),
            bs_ids=np.array([m.bs_id for m in links], dtype=np.int64),
            distance_m=np.array([m.distance_m for m in links]),
            sinr_linear=np.array([m.sinr_linear for m in links]),
            per_rrb_rate_bps=np.array([m.per_rrb_rate_bps for m in links]),
            rrbs_required=np.array([m.rrbs_required for m in links], dtype=np.int64),
            _metrics=links,  # already materialized; reuse as the cache
        )

    # ------------------------------------------------------------------
    # Allocator-facing API (unchanged from the dict-backed map)
    # ------------------------------------------------------------------

    def link(self, ue_id: int, bs_id: int) -> LinkMetrics:
        """Metrics for one candidate link."""
        try:
            index = self._position_index[(ue_id, bs_id)]
        except KeyError:
            raise UnknownEntityError(
                f"no candidate link UE {ue_id} -> BS {bs_id}"
            ) from None
        return self._metric_at(index)

    def has_link(self, ue_id: int, bs_id: int) -> bool:
        """Whether the pair is a candidate link."""
        return (ue_id, bs_id) in self._position_index

    def links_of_ue(self, ue_id: int) -> tuple[LinkMetrics, ...]:
        """All candidate links of one UE (O(|B_u|) via the per-UE index)."""
        start, stop = self._ue_index.get(ue_id, (0, 0))
        return tuple(self._metric_at(i) for i in range(start, stop))

    def ue_slice(self, ue_id: int) -> tuple[int, int]:
        """``(start, stop)`` column range of one UE's links.

        Indexes the columnar views (:attr:`bs_ids`, :attr:`rrb_demands`,
        ...); a UE with no candidate links yields ``(0, 0)``.  This is
        how whole-run consumers (the SoA matching kernel) lift a UE's
        rows without materializing :class:`LinkMetrics` objects.
        """
        return self._ue_index.get(ue_id, (0, 0))

    def __len__(self) -> int:
        return len(self._ue_ids)

    def __iter__(self) -> Iterator[LinkMetrics]:
        return (self._metric_at(i) for i in range(len(self._ue_ids)))

    # ------------------------------------------------------------------
    # Columnar views
    # ------------------------------------------------------------------

    @property
    def ue_ids(self) -> np.ndarray:
        """Per-link UE ids (read-only, grouped by UE)."""
        return self._ue_ids

    @property
    def bs_ids(self) -> np.ndarray:
        """Per-link BS ids (read-only)."""
        return self._bs_ids

    @property
    def distances_m(self) -> np.ndarray:
        """Per-link distances in meters (read-only)."""
        return self._distance_m

    @property
    def sinrs_linear(self) -> np.ndarray:
        """Per-link linear SINRs (read-only)."""
        return self._sinr

    @property
    def per_rrb_rates_bps(self) -> np.ndarray:
        """Per-link per-RRB rates in bits/s (read-only)."""
        return self._rate

    @property
    def rrb_demands(self) -> np.ndarray:
        """Per-link integer RRB demands ``n_{u,i}`` (read-only)."""
        return self._rrbs

    def estimated_bytes(self) -> int:
        """Approximate bytes held by the map's column arrays.

        Used by the scenario cache to bound its memory footprint; lazy
        per-link ``LinkMetrics`` objects are not counted.
        """
        return int(sum(
            arr.nbytes
            for arr in (
                self._ue_ids, self._bs_ids, self._distance_m,
                self._sinr, self._rate, self._rrbs,
            )
        ))

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------

    def with_updated_ues(
        self,
        network: MECNetwork,
        budget: LinkBudget,
        ue_ids: Iterable[int],
        rate_model: RateModel | None = None,
        rebuild_fraction: float = 0.5,
    ) -> "RadioMap":
        """A new map with the given UEs' rows recomputed against ``network``.

        The incremental mobility path: UEs whose position changed get
        their candidate links re-evaluated (batched, exactly like a
        fresh :func:`build_radio_map`), while every other UE's column
        entries — and already-materialized :class:`LinkMetrics` — are
        reused verbatim.  Callers must ensure unlisted UEs genuinely
        kept their position (and hence candidate set).

        When at least ``rebuild_fraction`` of the population moved,
        chunk-stitching cannot beat a straight batched rebuild, so the
        call falls back to :func:`build_radio_map` — same values,
        different route.
        """
        moved = set(ue_ids)
        if not moved:
            return self
        if len(moved) > rebuild_fraction * network.ue_count:
            # Most of the population moved (e.g. a random walk): a
            # straight batched rebuild beats stitching per-UE chunks.
            return build_radio_map(network, budget, rate_model=rate_model)
        rows = [
            ue.ue_id for ue in network.user_equipments if ue.ue_id in moved
        ]
        with get_telemetry().span(
            "radio.build", path="incremental", moved=len(rows),
            ues=network.ue_count,
        ):
            fresh = _vectorized_columns(
                network, budget, rate_model, only_ues=rows
            )
            f_slices = fresh["ue_slices"]

            chunks: dict[str, list[np.ndarray]] = {
                name: []
                for name in ("ue", "bs", "dist", "sinr", "rate", "rrbs")
            }
            metrics: list[LinkMetrics | None] = []
            ue_slices: dict[int, tuple[int, int]] = {}
            cursor = 0
            for ue in network.user_equipments:
                uid = ue.ue_id
                if uid in moved:
                    start, stop = f_slices[uid]
                    chunks["ue"].append(fresh["ue_ids"][start:stop])
                    chunks["bs"].append(fresh["bs_ids"][start:stop])
                    chunks["dist"].append(fresh["distance_m"][start:stop])
                    chunks["sinr"].append(fresh["sinr"][start:stop])
                    chunks["rate"].append(fresh["rate"][start:stop])
                    chunks["rrbs"].append(fresh["rrbs"][start:stop])
                    metrics.extend([None] * (stop - start))
                    ue_slices[uid] = (cursor, cursor + stop - start)
                    cursor += stop - start
                else:
                    start, stop = self._ue_index.get(uid, (0, 0))
                    chunks["ue"].append(self._ue_ids[start:stop])
                    chunks["bs"].append(self._bs_ids[start:stop])
                    chunks["dist"].append(self._distance_m[start:stop])
                    chunks["sinr"].append(self._sinr[start:stop])
                    chunks["rate"].append(self._rate[start:stop])
                    chunks["rrbs"].append(self._rrbs[start:stop])
                    metrics.extend(self._metrics[start:stop])
                    ue_slices[uid] = (cursor, cursor + stop - start)
                    cursor += stop - start
            return RadioMap(
                ue_ids=np.concatenate(chunks["ue"]) if chunks["ue"] else np.empty(0, np.int64),
                bs_ids=np.concatenate(chunks["bs"]) if chunks["bs"] else np.empty(0, np.int64),
                distance_m=np.concatenate(chunks["dist"]) if chunks["dist"] else np.empty(0),
                sinr_linear=np.concatenate(chunks["sinr"]) if chunks["sinr"] else np.empty(0),
                per_rrb_rate_bps=np.concatenate(chunks["rate"]) if chunks["rate"] else np.empty(0),
                rrbs_required=np.concatenate(chunks["rrbs"]) if chunks["rrbs"] else np.empty(0, np.int64),
                ue_slices=ue_slices,
                _metrics=metrics,
            )

    # ------------------------------------------------------------------

    def _metric_at(self, index: int) -> LinkMetrics:
        cached = self._metrics[index]
        if cached is None:
            cached = LinkMetrics(
                ue_id=int(self._ue_ids[index]),
                bs_id=int(self._bs_ids[index]),
                distance_m=float(self._distance_m[index]),
                sinr_linear=float(self._sinr[index]),
                per_rrb_rate_bps=float(self._rate[index]),
                rrbs_required=int(self._rrbs[index]),
            )
            self._metrics[index] = cached
        return cached


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only (the map is semantically immutable)."""
    if array.base is None and array.flags.owndata:
        array.setflags(write=False)
    return array


def _slices_from_grouped_ids(
    ue_list: Sequence[int],
) -> dict[int, tuple[int, int]]:
    """Per-UE (start, stop) ranges from a UE-grouped id column."""
    slices: dict[int, tuple[int, int]] = {}
    start = 0
    for index, uid in enumerate(ue_list):
        if uid != ue_list[start]:
            slices[ue_list[start]] = (start, index)
            start = index
    if ue_list:
        slices[ue_list[start]] = (start, len(ue_list))
    return slices


def _vectorized_columns(
    network: MECNetwork,
    budget: LinkBudget,
    rate_model: RateModel | None,
    only_ues: Sequence[int] | None = None,
) -> dict:
    """Evaluate Eqs. 2--4 over the candidate mask as whole-array math.

    ``only_ues`` restricts the evaluation to those UEs' rows (the
    incremental mobility path); ``None`` means every UE.
    """
    if rate_model is None:
        rate_model = per_rrb_rate_bps

    ues = network.user_equipments
    if only_ues is None:
        # Full build: the network's flat candidate pairs are already in
        # row-major (UE-grouped, BS-ascending) order and avoid touching
        # the dense mask/matrix in grid geometry mode.
        rows, cols, link_distances = network.candidate_pairs()
        counts = np.bincount(rows, minlength=len(ues))
    else:
        wanted = set(only_ues)
        ues = tuple(ue for ue in ues if ue.ue_id in wanted)

        mask = network.candidate_mask()
        distances = network.distance_matrix_m()
        row_index = np.array(
            [network.row_of_ue(ue.ue_id) for ue in ues], dtype=np.intp
        )
        mask = mask[row_index]
        distances = distances[row_index]

        rows, cols = np.nonzero(mask)  # row-major: grouped by UE
        link_distances = distances[rows, cols]
        counts = mask.sum(axis=1)

    tx_power = np.array([ue.tx_power_dbm for ue in ues])[rows]
    rate_demand = np.array([ue.rate_demand_bps for ue in ues])[rows]
    ue_id_col = np.array([ue.ue_id for ue in ues], dtype=np.int64)[rows]
    bs_id_col = np.array(
        [bs.bs_id for bs in network.base_stations], dtype=np.int64
    )[cols]
    over_budget = np.array(
        [bs.rrb_capacity + 1 for bs in network.base_stations], dtype=np.int64
    )[cols]

    sinr = budget.sinr_array(link_distances, tx_power)
    array_model = _ARRAY_RATE_MODELS.get(rate_model)
    if array_model is not None:
        rate = array_model(budget.rrb_bandwidth_hz, sinr)
    else:
        bandwidth = budget.rrb_bandwidth_hz
        rate = np.array(
            [rate_model(bandwidth, float(s)) for s in sinr], dtype=float
        )
    rrbs = rrbs_required_array(rate_demand, rate, over_budget)

    offsets = np.concatenate(([0], np.cumsum(counts)))
    ue_slices = {
        ue.ue_id: (int(offsets[i]), int(offsets[i + 1]))
        for i, ue in enumerate(ues)
    }
    return {
        "ue_ids": ue_id_col,
        "bs_ids": bs_id_col,
        "distance_m": link_distances,
        "sinr": sinr,
        "rate": rate,
        "rrbs": rrbs,
        "ue_slices": ue_slices,
    }


def build_radio_map(
    network: MECNetwork,
    budget: LinkBudget,
    rate_model: RateModel | None = None,
) -> RadioMap:
    """Evaluate the link budget over every candidate UE--BS pair, batched.

    ``rate_model`` maps ``(rrb_bandwidth_hz, sinr)`` to a per-RRB rate;
    the default is the paper's Shannon bound (Eq. 2), and
    :func:`repro.radio.mcs.mcs_rate_bps` gives the quantized LTE
    alternative.  Models registered via :func:`register_array_rate_model`
    run as whole-vector operations; others fall back to a per-link loop.

    Links whose per-RRB rate is zero (out of practical range) are kept
    with ``rrbs_required`` set high enough to exceed any BS budget, so
    allocators uniformly treat them as infeasible rather than special-
    casing missing entries.

    The output is link-for-link interchangeable with
    :func:`build_radio_map_reference` (pinned by the parity suite).
    """
    with get_telemetry().span("radio.build", path="batched") as span:
        columns = _vectorized_columns(network, budget, rate_model)
        radio_map = RadioMap(
            ue_ids=columns["ue_ids"],
            bs_ids=columns["bs_ids"],
            distance_m=columns["distance_m"],
            sinr_linear=columns["sinr"],
            per_rrb_rate_bps=columns["rate"],
            rrbs_required=columns["rrbs"],
            ue_slices=columns["ue_slices"],
        )
        span.set(links=len(radio_map), ues=network.ue_count)
    return radio_map


def build_radio_map_reference(
    network: MECNetwork,
    budget: LinkBudget,
    rate_model: RateModel | None = None,
) -> RadioMap:
    """The original per-pair scalar builder (parity baseline).

    Kept as the executable specification the vectorized
    :func:`build_radio_map` is tested against.  Constant per-call
    attribute lookups (path-loss model, interference model, noise power)
    are hoisted out of the pair loop; the arithmetic is unchanged.
    """
    if rate_model is None:
        rate_model = per_rrb_rate_bps
    with get_telemetry().span("radio.build", path="reference") as span:
        loss_db = budget.pathloss.loss_db
        interference_mw = budget.interference.interference_mw
        noise_mw = budget.noise_mw
        bandwidth = budget.rrb_bandwidth_hz
        links: list[LinkMetrics] = []
        for ue in network.user_equipments:
            tx_power = ue.tx_power_dbm
            tx_mw = dbm_to_mw(tx_power)
            for bs_id in network.candidate_base_stations(ue.ue_id):
                distance = network.distance_m(ue.ue_id, bs_id)
                signal = tx_mw / db_to_linear(loss_db(distance))
                sinr = signal / (
                    noise_mw + interference_mw(distance, (), tx_power)
                )
                rate = rate_model(bandwidth, sinr)
                if rate > 0:
                    demand = rrbs_required(ue.rate_demand_bps, rate)
                else:
                    demand = network.base_station(bs_id).rrb_capacity + 1
                links.append(
                    LinkMetrics(
                        ue_id=ue.ue_id,
                        bs_id=bs_id,
                        distance_m=distance,
                        sinr_linear=sinr,
                        per_rrb_rate_bps=rate,
                        rrbs_required=demand,
                    )
                )
        span.set(links=len(links), ues=network.ue_count)
    return RadioMap.from_links(links)
