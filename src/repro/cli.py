"""Command-line interface: ``python -m repro`` / the ``dmra`` script.

Subcommands
-----------
``figure``   reproduce one paper figure (or ``all``) and print the chart
``run``      run one allocator on one scenario and print the metrics
``inspect``  describe a generated scenario (coverage, capacities)
``compare``  run several allocators on one scenario side by side
``analyze``  fairness / envy / convergence / map report for one run
``agents``   multi-process decentralized deployment with fault injection
``bound``    certify the optimality gap against LP/Lagrangian bounds
``online``   event-driven simulation with arrivals and departures
``mobility`` epoch-based movement with handover accounting
``failures`` BS outage injection and recovery report
``crossover`` bisect the load where one scheme overtakes another
``map``      write the deployment/association as an SVG file
``report``   one-page markdown comparison report
``summarize`` render stored result CSVs as charts and tables
``trace``    trace tooling: report, derived metrics, regression diff

Commands that do real work accept ``--trace FILE`` (or the
``DMRA_TRACE`` environment variable) to record a telemetry trace of the
run, and ``--metrics FILE`` to write the derived ``dmra.metrics/1``
document (``.prom``/``.txt`` suffix selects Prometheus exposition).
Both artifacts embed a ``dmra.manifest/1`` run manifest; ``dmra trace
FILE`` renders a trace, ``dmra trace metrics FILE`` derives metrics
from one, and ``dmra trace diff A B`` compares two runs and exits
nonzero on regressions.

Examples::

    dmra figure fig2 --scale smoke --out results/
    dmra run --allocator dmra --ues 600 --seed 1
    dmra run --ues 600 --seed 1 --trace run.jsonl --metrics run.json
    dmra run --ues 100000 --region-m 15000 --bs-per-sp 500 \
             --shards 16 --shard-workers 4 --profile
    dmra trace run.jsonl --min-ms 1
    dmra trace metrics run.jsonl --format prom
    dmra trace diff baseline.json candidate.json --rel-tol 0.01
    dmra compare --ues 600 --seed 1 --placement random
    dmra agents --transport mp --ues 150 --seed 1 --verify
    dmra agents --transport tcp --ues 80 --faults crash --metrics m.json
    dmra inspect --ues 400 --seed 0
    dmra analyze --ues 1100 --seed 3
    dmra online --rate 5 --horizon 600 --holding 120
    dmra bound --ues 600 --seed 3 --method both --baselines auction ilp
    dmra run --ues 100000 --region-m 15000 --bs-per-sp 500 --bound lagrangian
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

from repro.baselines import (
    AuctionAllocator,
    BestResponseAllocator,
    CloudOnlyAllocator,
    DCSPAllocator,
    GreedyProfitAllocator,
    NonCoAllocator,
    OptimalILPAllocator,
    RandomAllocator,
)
from repro.core.allocator import Allocator
from repro.core.dmra import DMRAAllocator
from repro.core.soa import KERNELS
from repro.dist import FAULT_SCENARIOS as _DIST_FAULT_SCENARIOS
from repro.dist import TRANSPORTS as _DIST_TRANSPORTS
from repro.experiments import (
    EXPERIMENTS,
    Scale,
    all_experiments,
    render_chart,
    render_table,
    write_series_csv,
)
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "figure": _cmd_figure,
        "run": _cmd_run,
        "inspect": _cmd_inspect,
        "compare": _cmd_compare,
        "analyze": _cmd_analyze,
        "agents": _cmd_agents,
        "bound": _cmd_bound,
        "online": _cmd_online,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "mobility": _cmd_mobility,
        "crossover": _cmd_crossover,
        "failures": _cmd_failures,
        "map": _cmd_map,
        "summarize": _cmd_summarize,
        "trace": _cmd_trace,
    }[args.command]
    with _trace_session(args):
        return handler(args)


# Outcome-derived metric families registered by command handlers while
# a --metrics session is active; merged with the trace-derived families
# (outcome wins on name collisions) when the session flushes.
_PENDING_OUTCOME_FAMILIES: list = []


def _manifest_for(args: argparse.Namespace) -> dict:
    """The ``dmra.manifest/1`` of the command about to run."""
    from repro.obs import build_manifest

    config = None
    if hasattr(args, "rho"):
        config = ScenarioConfig.paper(
            placement=getattr(args, "placement", "regular"),
            cross_sp_markup=getattr(args, "iota", 2.0),
            rho=args.rho,
            region_side_m=getattr(args, "region_m", 1200.0),
            bs_per_sp=getattr(args, "bs_per_sp", 5),
        )
    seeds = [args.seed] if hasattr(args, "seed") else []
    return build_manifest(
        config=config, seeds=seeds, command=args.command
    )


@contextmanager
def _trace_session(args: argparse.Namespace):
    """Record a run when ``--trace``/``DMRA_TRACE``/``--metrics`` ask.

    With none set this is a no-op: the null telemetry backend stays
    installed and the command runs uninstrumented.  The recorder's meta
    carries the run manifest, so every written trace and metrics
    document is self-identifying.
    """
    target = getattr(args, "trace", None)
    if target is None:
        env = os.environ.get("DMRA_TRACE", "")
        target = Path(env) if env and args.command != "trace" else None
    metrics_target = getattr(args, "metrics", None)
    if target is None and metrics_target is None:
        yield
        return
    from repro.obs import Recorder, telemetry_session, write_trace

    manifest = _manifest_for(args)
    recorder = Recorder(
        meta={"command": args.command, "manifest": manifest}
    )
    _PENDING_OUTCOME_FAMILIES.clear()
    with telemetry_session(recorder):
        yield
    if target is not None:
        written = write_trace(target, recorder)
        print(f"wrote trace {written}")
    if metrics_target is not None:
        written = _write_metrics_artifact(metrics_target, recorder)
        print(f"wrote metrics {written}")
    _PENDING_OUTCOME_FAMILIES.clear()


@contextmanager
def _live_plane(args: argparse.Namespace, flight=None):
    """Serve ``/metrics`` + health endpoints while the command runs.

    A no-op unless ``--listen`` was given.  When the session is
    otherwise uninstrumented (no ``--trace``/``--metrics``), installs a
    :class:`Recorder` for the duration so the endpoint has scalar state
    to scrape.  On exit: one final flush (so a post-run scrape equals
    the run's totals), then the optional ``--linger`` window, then
    shutdown.
    """
    listen = getattr(args, "listen", None)
    if listen is None:
        yield None
        return
    from repro.obs import (
        LiveServer,
        Recorder,
        get_telemetry,
        telemetry_session,
    )

    with ExitStack() as stack:
        telemetry = get_telemetry()
        if not telemetry.enabled:
            telemetry = Recorder(
                meta={"command": args.command, "manifest": _manifest_for(args)}
            )
            stack.enter_context(telemetry_session(telemetry))
        live = LiveServer(
            telemetry,
            listen=listen,
            manifest=_manifest_for(args),
            flight=flight,
            flush_path=args.flush,
            flush_interval_s=args.flush_interval,
        ).start()
        stack.callback(live.stop)
        print(f"live endpoint:       {live.url}")
        if args.port_file is not None:
            args.port_file.parent.mkdir(parents=True, exist_ok=True)
            args.port_file.write_text(f"{live.port}\n")
        if args.flush is None:
            # No periodic flusher: readiness means "endpoint warm".
            live.mark_ready()
        yield live
        live.flush_to_disk()
        if args.linger > 0:
            time.sleep(args.linger)


def _write_metrics_artifact(target: Path, recorder) -> Path:
    """Flush the session's metrics document (JSON, or ``.prom`` text)."""
    from repro.obs import (
        MetricsDocument,
        metrics_from_trace,
        prometheus_exposition,
        trace_from_recorder,
        write_metrics,
    )

    trace_doc = metrics_from_trace(trace_from_recorder(recorder))
    outcome_names = {fam.name for fam in _PENDING_OUTCOME_FAMILIES}
    families = tuple(sorted(
        list(_PENDING_OUTCOME_FAMILIES)
        + [
            fam for fam in trace_doc.families
            if fam.name not in outcome_names
        ],
        key=lambda fam: fam.name,
    ))
    doc = MetricsDocument(families=families, manifest=trace_doc.manifest)
    if target.suffix in (".prom", ".txt"):
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(prometheus_exposition(doc))
        return target
    return write_metrics(target, doc)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dmra",
        description="DMRA (ICDCS 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")

    figure = sub.add_parser(
        "figure", help="reproduce a paper figure or extension experiment"
    )
    figure.add_argument(
        "exp_id",
        help=(
            f"figure id ({', '.join(sorted(all_experiments()))}), "
            f"'all' (paper figures), or 'extensions'"
        ),
    )
    figure.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default="paper",
        help="sweep size (default: paper)",
    )
    figure.add_argument(
        "--out", type=Path, default=None, help="directory for CSV output"
    )
    figure.add_argument(
        "--workers", type=int, default=None,
        help=(
            "processes for the sweep's (x, seed) grid cells "
            "(default: $DMRA_SWEEP_WORKERS or serial); results are "
            "identical at any worker count"
        ),
    )
    _add_trace_argument(figure)

    for name, help_text in (
        ("run", "run one allocator on one scenario"),
        ("inspect", "describe a generated scenario"),
        ("compare", "run several allocators side by side"),
        ("analyze", "fairness / envy / convergence report for one run"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        _add_scenario_arguments(cmd)
        _add_trace_argument(cmd)
        if name == "run":
            cmd.add_argument(
                "--allocator",
                default="dmra",
                choices=sorted(_ALLOCATOR_BUILDERS),
            )
            cmd.add_argument(
                "--profile", action="store_true",
                help=(
                    "print a per-round phase-time table (proposal vs "
                    "BS-decision wall time; matching-based allocators "
                    "only), or partition/match/reconcile phase rows "
                    "with --shards"
                ),
            )
            cmd.add_argument(
                "--shards", type=int, default=None, metavar="N",
                help=(
                    "run the geometry-sharded scale path with N shards "
                    "(dmra allocator only; N=1 is bit-identical to the "
                    "monolithic run — see docs/scaling.md)"
                ),
            )
            cmd.add_argument(
                "--shard-workers", type=int, default=1, metavar="M",
                help=(
                    "fork-pool processes for the per-shard matchings "
                    "(default: 1 = serial, the memory-bounded path; "
                    "results are identical at any worker count)"
                ),
            )
            cmd.add_argument(
                "--kernel",
                default="auto",
                choices=list(KERNELS),
                help=(
                    "matching kernel for the dmra allocator: 'object' "
                    "(bit-parity reference engine), 'soa' (structure-"
                    "of-arrays kernel, same assignments, built for "
                    "scale), or 'auto' (soa for plain DMRA, object "
                    "otherwise; the default) — see docs/algorithm.md"
                ),
            )
            cmd.add_argument(
                "--bound", default=None, choices=("lp", "lagrangian"),
                help=(
                    "also certify the run's optimality gap against an "
                    "upper bound on the TPM objective (repro.bound; "
                    "see docs/bounds.md)"
                ),
            )
        if name in ("compare", "analyze"):
            cmd.add_argument(
                "--allocators",
                nargs="+",
                default=(
                    ["dmra", "dcsp", "nonco"]
                    if name == "compare"
                    else ["dmra", "nonco"]
                ),
                choices=sorted(_ALLOCATOR_BUILDERS),
            )

    report = sub.add_parser(
        "report", help="write a markdown comparison report for one scenario"
    )
    _add_scenario_arguments(report)
    report.add_argument(
        "--allocators",
        nargs="+",
        default=["dmra", "dcsp", "nonco"],
        choices=sorted(_ALLOCATOR_BUILDERS),
    )
    report.add_argument(
        "--out", type=Path, default=None,
        help="output file (default: stdout)",
    )

    agents = sub.add_parser(
        "agents",
        help="run DMRA as a true multi-node deployment "
             "(see docs/decentralized.md)",
    )
    _add_scenario_arguments(agents)
    _add_trace_argument(agents)
    agents.add_argument(
        "--transport", default="inproc", choices=list(_DIST_TRANSPORTS),
        help=(
            "message transport: 'inproc' (threads + queues), 'mp' "
            "(forked processes + pipes), 'tcp' (forked processes + "
            "loopback sockets)"
        ),
    )
    agents.add_argument(
        "--ue-hosts", type=int, default=2, metavar="N",
        help="number of UE shard nodes (default 2)",
    )
    agents.add_argument(
        "--faults", default="none", choices=list(_DIST_FAULT_SCENARIOS),
        help=(
            "fault scenario: drop / delay / stale (broadcast-only "
            "delays) / crash (BS crash + recovery); default none"
        ),
    )
    agents.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the deterministic fault injector",
    )
    agents.add_argument(
        "--crash-bs", type=int, default=0,
        help="BS id crashed by the 'crash' scenario (default 0)",
    )
    agents.add_argument(
        "--max-rounds", type=int, default=1000,
        help="termination backstop for the round protocol",
    )
    agents.add_argument(
        "--verify", action="store_true",
        help=(
            "also run the direct DMRAAllocator and fail unless the "
            "deployment's assignment is bit-identical (reliable "
            "transports only)"
        ),
    )
    _add_live_arguments(agents)
    agents.add_argument(
        "--flight-dir", type=Path, default=None, metavar="DIR",
        help=(
            "write per-node flight-recorder postmortems (ring-buffer "
            "dumps captured at crash time under '--faults crash') as "
            "JSON files into DIR"
        ),
    )

    bound = sub.add_parser(
        "bound",
        help=(
            "certify the optimality gap of an allocation against "
            "LP/Lagrangian upper bounds (see docs/bounds.md)"
        ),
    )
    _add_scenario_arguments(bound)
    _add_trace_argument(bound)
    bound.add_argument(
        "--method", default="lagrangian",
        choices=("lp", "lagrangian", "both"),
        help=(
            "upper-bound method: 'lagrangian' (per-BS dual "
            "decomposition, scales to 100k+ UEs), 'lp' (HiGHS LP "
            "relaxation, exact but variable-capped), or 'both'"
        ),
    )
    bound.add_argument(
        "--allocator", default="dmra",
        choices=sorted(_ALLOCATOR_BUILDERS),
        help="the incumbent whose gap is certified (default: dmra)",
    )
    bound.add_argument(
        "--baselines", nargs="*", default=[],
        choices=sorted(_ALLOCATOR_BUILDERS),
        help=(
            "also run these allocators and report their profit "
            "against the same bound"
        ),
    )
    bound.add_argument(
        "--iterations", type=int, default=150,
        help="subgradient iteration budget for the Lagrangian bound",
    )
    bound.add_argument(
        "--lp-max-variables", type=int, default=500_000,
        help="refuse the LP bound above this many candidate variables",
    )

    online = sub.add_parser(
        "online", help="event-driven simulation with arrivals/departures"
    )
    online.add_argument("--rate", type=float, default=3.0,
                        help="Poisson arrival rate (tasks/s)")
    online.add_argument("--horizon", type=float, default=600.0,
                        help="simulated horizon in seconds")
    online.add_argument("--holding", type=float, default=120.0,
                        help="mean task holding time in seconds")
    online.add_argument("--seed", type=int, default=0)
    online.add_argument("--rho", type=float, default=10.0)
    online.add_argument("--iota", type=float, default=2.0)
    online.add_argument(
        "--kernel", default="object", choices=list(KERNELS),
        help=(
            "matching kernel for the per-batch solves: 'object' (the "
            "bit-parity reference, the default), 'soa', or 'auto' "
            "— see docs/algorithm.md"
        ),
    )
    _add_trace_argument(online)

    serve = sub.add_parser(
        "serve",
        help=(
            "long-lived streaming allocation: replay a churn tape "
            "through the event-driven engine (see docs/streaming.md)"
        ),
    )
    serve.add_argument("--rate", type=float, default=3.0,
                       help="Poisson arrival rate (tasks/s)")
    serve.add_argument("--horizon", type=float, default=600.0,
                       help="simulated horizon in seconds")
    serve.add_argument("--holding", type=float, default=120.0,
                       help="mean task holding time in seconds")
    serve.add_argument("--move-fraction", type=float, default=0.0,
                       help="fraction of tasks making one mid-life move")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--rho", type=float, default=10.0)
    serve.add_argument("--iota", type=float, default=2.0)
    serve.add_argument(
        "--mode", default="incremental",
        choices=("incremental", "rescratch"),
        help=(
            "'incremental' re-matches only the dirty neighborhood; "
            "'rescratch' is the from-scratch reference the equivalence "
            "gate compares against"
        ),
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="partition the region into N tiles with independent engines",
    )
    serve.add_argument(
        "--kernel", default="auto", choices=list(KERNELS),
        help="matching kernel for the re-match batches",
    )
    serve.add_argument(
        "--queue", type=int, default=256, metavar="N",
        help="service-loop queue bound (backpressure threshold)",
    )
    serve.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help=(
            "record a JSONL telemetry trace of this run to FILE; "
            "render it with 'dmra trace'"
        ),
    )
    # dest differs from the shared --metrics on purpose: serve writes an
    # *outcome-only* document (metrics_from_stream), never the merged
    # trace-derived families, because trace mechanics (match spans,
    # rematch timers) legitimately differ between --mode values and
    # would break the CI equivalence diff.
    serve.add_argument(
        "--metrics", dest="metrics_out", type=Path, default=None,
        metavar="FILE",
        help=(
            "write the replay's outcome-only dmra.metrics/1 document "
            "to FILE; diff across --mode values with 'dmra trace diff'"
        ),
    )
    _add_live_arguments(serve)
    serve.add_argument(
        "--flight-dump", type=Path, default=None, metavar="FILE",
        help=(
            "write the flight recorder's ring (last events before "
            "completion) as a JSON postmortem to FILE"
        ),
    )

    mobility = sub.add_parser(
        "mobility", help="epoch-based movement with handover accounting"
    )
    _add_scenario_arguments(mobility)
    mobility.add_argument("--epochs", type=int, default=10)
    mobility.add_argument("--epoch-duration", type=float, default=30.0,
                          help="epoch length in seconds")
    mobility.add_argument("--speed", type=float, default=1.5,
                          help="UE speed in m/s (random walk)")
    mobility.add_argument("--no-sticky", action="store_true",
                          help="re-optimize everyone every epoch")
    _add_trace_argument(mobility)

    failures = sub.add_parser(
        "failures", help="inject BS outages and report the recovery"
    )
    _add_scenario_arguments(failures)
    failures.add_argument(
        "--bs", type=int, nargs="+", required=True,
        help="ids of the base stations to fail",
    )
    _add_trace_argument(failures)

    crossover = sub.add_parser(
        "crossover",
        help="bisect the load where one scheme overtakes another",
    )
    crossover.add_argument("--a", default="dmra",
                           choices=sorted(_ALLOCATOR_BUILDERS))
    crossover.add_argument("--b", default="nonco",
                           choices=sorted(_ALLOCATOR_BUILDERS))
    crossover.add_argument("--lo", type=int, default=600)
    crossover.add_argument("--hi", type=int, default=1600)
    crossover.add_argument("--seed", type=int, default=0)
    crossover.add_argument("--tolerance", type=int, default=25)

    svg_map = sub.add_parser(
        "map", help="write the deployment/association as an SVG file"
    )
    _add_scenario_arguments(svg_map)
    svg_map.add_argument("--out", type=Path, required=True)
    svg_map.add_argument("--coverage", action="store_true",
                         help="draw coverage circles")
    svg_map.add_argument(
        "--allocator", default="dmra",
        choices=sorted(_ALLOCATOR_BUILDERS),
    )

    summarize = sub.add_parser(
        "summarize",
        help="render stored result CSVs as charts and tables",
    )
    summarize.add_argument(
        "--results",
        type=Path,
        default=Path("benchmarks/results/paper"),
        help="directory of CSVs written by the benches",
    )
    summarize.add_argument(
        "--only", nargs="+", default=None,
        help="experiment ids to include (default: everything found)",
    )

    trace = sub.add_parser(
        "trace",
        help=(
            "trace tooling: 'trace FILE' / 'trace report FILE' render a "
            "report, 'trace report FILE --top N' ranks the hottest "
            "spans by self time, 'trace metrics FILE' derives "
            "dmra.metrics documents, 'trace diff A B' compares two "
            "runs (nonzero exit on regressions)"
        ),
    )
    trace.add_argument(
        "args", nargs="+", metavar="ARG",
        help="FILE | report FILE | metrics FILE | diff BASELINE CANDIDATE",
    )
    trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide (non-root) spans shorter than this many milliseconds",
    )
    trace.add_argument(
        "--top", type=int, default=0, metavar="N",
        help=(
            "report: print the N hottest span names ranked by "
            "cumulative self time instead of the span tree"
        ),
    )
    trace.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="output format for 'trace metrics' (default: json)",
    )
    trace.add_argument(
        "--out", type=Path, default=None,
        help="write 'trace metrics' output to a file instead of stdout",
    )
    trace.add_argument(
        "--abs-tol", type=float, default=1e-9,
        help="diff: absolute tolerance per sample (default: 1e-9)",
    )
    trace.add_argument(
        "--rel-tol", type=float, default=0.0,
        help="diff: relative tolerance per sample (default: 0)",
    )
    trace.add_argument(
        "--include-timing", action="store_true",
        help="diff: also gate on timing families (dmra_timer_*/dmra_wall_*)",
    )
    trace.add_argument(
        "--allow-mismatch", action="store_true",
        help=(
            "diff: compare runs with different config digests or seeds "
            "(deltas are reported as changes, not regressions)"
        ),
    )
    return parser


def _add_trace_argument(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help=(
            "record a JSONL telemetry trace of this run to FILE "
            "(default: $DMRA_TRACE if set); render it with 'dmra trace'"
        ),
    )
    cmd.add_argument(
        "--metrics", type=Path, default=None, metavar="FILE",
        help=(
            "write this run's dmra.metrics/1 document to FILE "
            "(.prom/.txt suffix selects Prometheus text exposition); "
            "compare runs with 'dmra trace diff'"
        ),
    )


def _add_live_arguments(cmd: argparse.ArgumentParser) -> None:
    """The live observability plane (docs/observability.md, Live plane)."""
    cmd.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help=(
            "expose /metrics, /healthz, /readyz (and /flightz where a "
            "flight recorder is attached) on HOST:PORT while the "
            "command runs; port 0 binds an ephemeral port"
        ),
    )
    cmd.add_argument(
        "--flush", type=Path, default=None, metavar="FILE",
        help=(
            "with --listen: periodically flush the live metrics "
            "snapshot to FILE (dmra.metrics JSON)"
        ),
    )
    cmd.add_argument(
        "--flush-interval", type=float, default=1.0, metavar="S",
        help="seconds between periodic --flush snapshots (default 1.0)",
    )
    cmd.add_argument(
        "--linger", type=float, default=0.0, metavar="S",
        help=(
            "with --listen: keep the endpoint up for S seconds after "
            "the run completes so scrapers can read the final totals"
        ),
    )
    cmd.add_argument(
        "--port-file", type=Path, default=None, metavar="FILE",
        help=(
            "with --listen: write the actually-bound port to FILE "
            "once the endpoint is up (for drivers using port 0)"
        ),
    )


def _add_scenario_arguments(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--ues", type=int, default=600, help="number of UEs")
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument(
        "--placement", choices=("regular", "random", "clustered"),
        default="regular",
    )
    cmd.add_argument("--iota", type=float, default=2.0, help="cross-SP markup")
    cmd.add_argument("--rho", type=float, default=10.0, help="DMRA rho weight")
    cmd.add_argument(
        "--region-m", type=float, default=1200.0,
        help="square region side in meters (default: the paper's 1200)",
    )
    cmd.add_argument(
        "--bs-per-sp", type=int, default=5,
        help="BSs deployed per SP (default: the paper's 5)",
    )


def _config_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig.paper(
        placement=args.placement,
        cross_sp_markup=args.iota,
        rho=args.rho,
        region_side_m=getattr(args, "region_m", 1200.0),
        bs_per_sp=getattr(args, "bs_per_sp", 5),
    )


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    return build_scenario(
        _config_from_args(args), ue_count=args.ues, seed=args.seed
    )


_ALLOCATOR_BUILDERS = {
    "dmra": lambda sc: DMRAAllocator(pricing=sc.pricing, rho=sc.config.rho),
    "dcsp": lambda sc: DCSPAllocator(),
    "nonco": lambda sc: NonCoAllocator(),
    "greedy": lambda sc: GreedyProfitAllocator(pricing=sc.pricing),
    "random": lambda sc: RandomAllocator(seed=sc.seed),
    "cloud-only": lambda sc: CloudOnlyAllocator(),
    "ilp": lambda sc: OptimalILPAllocator(pricing=sc.pricing),
    "best-response": lambda sc: BestResponseAllocator(pricing=sc.pricing),
    # rho doubles as the congestion weight: like DMRA's slack term, it
    # prices load into the potential-game cost (beta=0 is best-response).
    "potential-game": lambda sc: BestResponseAllocator(
        pricing=sc.pricing, load_weight=max(sc.config.rho / 10.0, 0.1)
    ),
    "auction": lambda sc: AuctionAllocator(pricing=sc.pricing),
}


def _build_allocator(name: str, scenario: Scenario) -> Allocator:
    return _ALLOCATOR_BUILDERS[name](scenario)


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import EXTENSIONS

    scale = Scale.paper() if args.scale == "paper" else Scale.smoke()
    registry = all_experiments()
    if args.exp_id == "all":
        exp_ids = sorted(EXPERIMENTS)
    elif args.exp_id == "extensions":
        exp_ids = sorted(EXTENSIONS)
    else:
        exp_ids = [args.exp_id]
    for exp_id in exp_ids:
        if exp_id not in registry:
            raise ConfigurationError(
                f"unknown experiment {exp_id!r}; "
                f"available: {sorted(registry)}"
            )
        experiment = registry[exp_id]
        print(f"running {experiment.exp_id}: {experiment.title}")
        result = experiment.run(scale, workers=args.workers)
        series = [result[label] for label in result.labels()]
        print(render_chart(
            series,
            title=experiment.title,
            x_label=experiment.x_label,
            y_label=experiment.y_label,
        ))
        print()
        print(render_table(series, x_header=experiment.x_label))
        print()
        if args.out is not None:
            path = write_series_csv(
                args.out / f"{exp_id}.csv", series, x_header=experiment.x_label
            )
            print(f"wrote {path}")
    return 0


def _matching_policy_for(name: str, scenario: Scenario):
    """The :class:`MatchingPolicy` behind a matching-based allocator."""
    from repro.baselines.dcsp import DCSPPolicy
    from repro.core.dmra import DMRAPolicy

    if name == "dmra":
        return DMRAPolicy(pricing=scenario.pricing, rho=scenario.config.rho)
    if name == "dcsp":
        return DCSPPolicy()
    raise ConfigurationError(
        f"--profile needs a matching-based allocator (dmra, dcsp), "
        f"got {name!r}"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "shards", None) is not None:
        return _cmd_run_sharded(args)
    scenario = _scenario_from_args(args)
    allocator = _build_allocator(args.allocator, scenario)
    if args.allocator == "dmra":
        allocator.kernel = getattr(args, "kernel", "auto")
    outcome = run_allocation(scenario, allocator)
    metrics = outcome.metrics
    if getattr(args, "metrics", None) is not None:
        from repro.obs import metrics_from_outcome

        _PENDING_OUTCOME_FAMILIES.extend(metrics_from_outcome(
            scenario.network, outcome.assignment, scenario.pricing,
            wall_time_s=outcome.wall_time_s,
        ).families)
    print(scenario.network.describe())
    print(f"allocator:          {outcome.allocator_name}")
    print(f"total profit:       {metrics.total_profit:.1f}")
    for sp_id, profit in sorted(metrics.profit_by_sp.items()):
        print(f"  SP {sp_id} profit:      {profit:.1f}")
    print(f"edge served:        {metrics.edge_served}/{metrics.ue_count}")
    print(f"cloud forwarded:    {metrics.cloud_forwarded}")
    print(f"forwarded traffic:  {metrics.forwarded_traffic_bps / 1e6:.1f} Mbps")
    print(f"same-SP fraction:   {metrics.same_sp_fraction:.2f}")
    print(f"mean RRB util:      {metrics.mean_rrb_utilization:.2f}")
    print(f"mean CRU util:      {metrics.mean_cru_utilization:.2f}")
    print(f"matching rounds:    {metrics.rounds}")
    print(f"wall time:          {outcome.wall_time_s * 1e3:.1f} ms")
    if getattr(args, "bound", None) is not None:
        from repro.bound import certify_gap

        certificate = certify_gap(
            scenario.network,
            scenario.radio_map,
            scenario.pricing,
            incumbent_profit=metrics.total_profit,
            method=args.bound,
        )
        print(f"upper bound:        {certificate.upper_bound:.1f} "
              f"({certificate.method}, "
              f"{certificate.iterations} iterations)")
        print(f"certified gap:      {certificate.gap_fraction * 100:.2f}%")
        if getattr(args, "metrics", None) is not None:
            from repro.obs import metrics_from_certificates

            _PENDING_OUTCOME_FAMILIES.extend(
                metrics_from_certificates([certificate]).families
            )
    if getattr(args, "profile", False):
        _print_radio_map_profile(scenario)
        _print_phase_profile(args.allocator, scenario)
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    """``dmra bound``: certify an allocation's optimality gap."""
    from repro.bound import certify_gap

    scenario = _scenario_from_args(args)
    allocator = _build_allocator(args.allocator, scenario)
    outcome = run_allocation(scenario, allocator)
    incumbent = outcome.metrics.total_profit
    methods = (
        ("lp", "lagrangian") if args.method == "both" else (args.method,)
    )
    certificates = [
        certify_gap(
            scenario.network,
            scenario.radio_map,
            scenario.pricing,
            incumbent_profit=incumbent,
            method=method,
            max_iterations=args.iterations,
            lp_max_variables=args.lp_max_variables,
        )
        for method in methods
    ]
    baseline_profits: dict[str, float] = {}
    for name in dict.fromkeys(args.baselines):
        if name == args.allocator:
            continue
        baseline = run_allocation(
            scenario, _build_allocator(name, scenario)
        )
        baseline_profits[name] = baseline.metrics.total_profit
    print(scenario.network.describe())
    print(f"incumbent:          {outcome.allocator_name}")
    print(f"incumbent profit:   {incumbent:.1f}")
    for certificate in certificates:
        flag = "" if certificate.converged else " (budget hit)"
        print(f"{certificate.method + ' bound:':<20}"
              f"{certificate.upper_bound:.1f} "
              f"[{certificate.iterations} iterations, "
              f"{certificate.wall_time_s * 1e3:.1f} ms]{flag}")
        print(f"  certified gap:    {certificate.gap_fraction * 100:.2f}%")
    for name, profit in sorted(baseline_profits.items()):
        ratio = profit / incumbent if incumbent else float("nan")
        print(f"  {name + ':':<18}{profit:.1f} ({ratio:.2f}x incumbent)")
    if getattr(args, "metrics", None) is not None:
        from repro.obs import metrics_from_certificates

        _PENDING_OUTCOME_FAMILIES.extend(metrics_from_certificates(
            certificates, baseline_profits or None
        ).families)
    return 0


def _cmd_run_sharded(args: argparse.Namespace) -> int:
    """``dmra run --shards N``: the geometry-sharded scale path."""
    from repro.scale import run_sharded

    if args.allocator != "dmra":
        raise ConfigurationError(
            f"--shards is DMRA-specific (reconciliation ranks claims "
            f"with the DMRA BS-side preference order); "
            f"got --allocator {args.allocator!r}"
        )
    config = _config_from_args(args)
    outcome = run_sharded(
        config,
        ue_count=args.ues,
        seed=args.seed,
        shards=args.shards,
        workers=args.shard_workers,
        kernel=getattr(args, "kernel", "auto"),
    )
    metrics = outcome.metrics
    print(f"sharded run:        {outcome.shard_count} shards, "
          f"{outcome.workers} workers, {args.ues} UEs "
          f"(seed {args.seed}, {getattr(args, 'kernel', 'auto')} kernel)")
    print(f"shard UEs:          {min(outcome.shard_ue_counts)}"
          f"..{max(outcome.shard_ue_counts)} per shard")
    print(f"shard halo BSs:     {min(outcome.shard_bs_counts)}"
          f"..{max(outcome.shard_bs_counts)} per shard")
    print(f"total profit:       {metrics.total_profit:.1f}")
    for sp_id, profit in sorted(metrics.profit_by_sp.items()):
        print(f"  SP {sp_id} profit:      {profit:.1f}")
    print(f"edge served:        {metrics.edge_served}/{metrics.ue_count}")
    print(f"cloud forwarded:    {metrics.cloud_forwarded}")
    print(f"same-SP fraction:   {metrics.same_sp_fraction:.2f}")
    print(f"matching rounds:    {metrics.rounds}")
    print(f"evictions:          {outcome.total_evictions}")
    print(f"re-proposal:        {outcome.reproposal_rounds} rounds, "
          f"{outcome.reproposal_grants} grants")
    print(f"wall time:          {outcome.wall_time_s * 1e3:.1f} ms")
    if getattr(args, "profile", False):
        print()
        print("phase profile:")
        header = f"{'phase':<12} {'ms':>10} {'share':>7}"
        print(header)
        print("-" * len(header))
        wall = max(outcome.wall_time_s, 1e-12)
        for phase, seconds in (
            ("partition", outcome.partition_time_s),
            ("match", outcome.match_time_s),
            ("reconcile", outcome.reconcile_time_s),
        ):
            print(f"{phase:<12} {seconds * 1e3:>10.1f} "
                  f"{seconds / wall:>6.1%}")
    return 0


def _print_radio_map_profile(scenario: Scenario) -> None:
    """Time radio-map construction (vectorized vs scalar reference)."""
    import time

    from repro.radio.channel import build_radio_map, build_radio_map_reference

    budget = scenario.config.link_budget()
    rate_model = scenario.config.rate_model_fn()
    start = time.perf_counter()
    vectorized = build_radio_map(
        scenario.network, budget, rate_model=rate_model
    )
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    build_radio_map_reference(scenario.network, budget, rate_model=rate_model)
    reference_s = time.perf_counter() - start
    print()
    print(
        f"radio map build:    {len(vectorized)} links, "
        f"vectorized {vectorized_s * 1e3:.1f} ms, "
        f"scalar reference {reference_s * 1e3:.1f} ms "
        f"({reference_s / vectorized_s:.1f}x)"
    )


def _print_phase_profile(name: str, scenario: Scenario) -> None:
    """Re-run the matching under an observer and print phase timings."""
    from repro.analysis import trace_convergence

    policy = _matching_policy_for(name, scenario)
    trace = trace_convergence(
        policy, scenario.network, scenario.radio_map
    )
    print()
    print("per-round phase profile (propose = Alg. 1 lines 3-10, "
          "accept = lines 12-25):")
    header = (
        f"{'round':>6} {'proposals':>10} {'accepted':>9} {'cloud':>6} "
        f"{'propose ms':>11} {'accept ms':>10}"
    )
    print(header)
    print("-" * len(header))
    for stats in trace.rounds:
        print(
            f"{stats.round_number:>6} {stats.proposals:>10} "
            f"{stats.accepted:>9} {stats.newly_cloud:>6} "
            f"{stats.propose_time_s * 1e3:>11.2f} "
            f"{stats.accept_time_s * 1e3:>10.2f}"
        )
    propose_total = sum(s.propose_time_s for s in trace.rounds)
    accept_total = sum(s.accept_time_s for s in trace.rounds)
    print(
        f"{'total':>6} {trace.total_proposals:>10} "
        f"{trace.total_accepted:>9} {'':>6} "
        f"{propose_total * 1e3:>11.2f} {accept_total * 1e3:>10.2f}"
    )


def _cmd_inspect(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    network = scenario.network
    print(network.describe())
    print(f"seed: {scenario.seed}")
    print("per-SP deployments:")
    for sp in network.providers:
        bss = network.base_stations_of_sp(sp.sp_id)
        ues = network.user_equipments_of_sp(sp.sp_id)
        print(
            f"  {sp.name}: {len(bss)} BSs, {len(ues)} subscribers, "
            f"m_k={sp.cru_price}, m_k^o={sp.other_cost}"
        )
    uncovered = sum(
        1
        for ue in network.user_equipments
        if not network.candidate_base_stations(ue.ue_id)
    )
    print(f"UEs with no candidate BS: {uncovered}")
    total_rrbs = sum(bs.rrb_capacity for bs in network.base_stations)
    total_crus = sum(bs.total_cru_capacity for bs in network.base_stations)
    print(f"aggregate capacity: {total_rrbs} RRBs, {total_crus} CRUs")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    print(scenario.network.describe())
    header = (
        f"{'allocator':<12} {'profit':>10} {'edge':>6} {'cloud':>6} "
        f"{'sameSP':>7} {'fwd Mbps':>9} {'rounds':>7} {'ms':>8}"
    )
    print(header)
    print("-" * len(header))
    for name in args.allocators:
        outcome = run_allocation(
            scenario, _build_allocator(name, scenario)
        )
        m = outcome.metrics
        print(
            f"{name:<12} {m.total_profit:>10.1f} {m.edge_served:>6} "
            f"{m.cloud_forwarded:>6} {m.same_sp_fraction:>7.2f} "
            f"{m.forwarded_traffic_bps / 1e6:>9.1f} {m.rounds:>7} "
            f"{outcome.wall_time_s * 1e3:>8.1f}"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analyze_stability,
        fairness_report,
        render_network_map,
        trace_convergence,
    )
    from repro.core.dmra import DMRAPolicy

    scenario = _scenario_from_args(args)
    print(scenario.network.describe())
    for name in args.allocators:
        allocator = _build_allocator(name, scenario)
        outcome = run_allocation(scenario, allocator)
        assignment = outcome.assignment
        stability = analyze_stability(
            scenario.network, scenario.radio_map, assignment, scenario.pricing
        )
        fairness = fairness_report(
            scenario.network, outcome.metrics.profit_by_sp
        )
        print(f"\n=== {name} ===")
        print(f"total profit:      {outcome.metrics.total_profit:.1f}")
        print(f"edge / cloud:      {assignment.edge_served_count} / "
              f"{assignment.cloud_count}")
        print(f"envy pairs:        {stability.envy_count} "
              f"({stability.envy_fraction:.1%} of served)")
        print(f"stranded UEs:      {stability.stranded_count}")
        print(f"Jain fairness:     {fairness.jain:.4f} "
              f"(per-subscriber {fairness.jain_per_subscriber:.4f})")
        if name == "dmra":
            trace = trace_convergence(
                DMRAPolicy(pricing=scenario.pricing, rho=args.rho),
                scenario.network,
                scenario.radio_map,
            )
            print(f"rounds:            {trace.round_count} "
                  f"(95% associated by round "
                  f"{trace.rounds_to_fraction(0.95)})")
            print(f"signalling:        {trace.total_proposals} proposals, "
                  f"{trace.proposals_per_association:.2f} per association")
    dmra_assignment = run_allocation(
        scenario, _build_allocator("dmra", scenario)
    ).assignment
    print()
    print(render_network_map(scenario.network, dmra_assignment))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import scenario_report

    scenario = _scenario_from_args(args)
    allocators = [
        _build_allocator(name, scenario) for name in args.allocators
    ]
    report = scenario_report(scenario, allocators)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_agents(args: argparse.Namespace) -> int:
    from repro.dist import DistributedDMRAAllocator, scenario_plan

    scenario = _scenario_from_args(args)
    plan = scenario_plan(
        args.faults, seed=args.fault_seed, crash_bs_id=args.crash_bs
    )
    allocator = DistributedDMRAAllocator(
        transport=args.transport,
        pricing=scenario.pricing,
        rho=scenario.config.rho,
        ue_hosts=args.ue_hosts,
        fault_plan=plan,
        max_rounds=args.max_rounds,
        flight_dir=args.flight_dir,
    )
    with _live_plane(args):
        outcome = run_allocation(scenario, allocator)
    metrics = outcome.metrics
    if getattr(args, "metrics", None) is not None:
        from repro.obs import metrics_from_outcome

        _PENDING_OUTCOME_FAMILIES.extend(metrics_from_outcome(
            scenario.network, outcome.assignment, scenario.pricing,
            wall_time_s=outcome.wall_time_s,
        ).families)
    report = allocator.last_report
    print(scenario.network.describe())
    print(f"deployment:         {allocator.name} "
          f"({args.ue_hosts} UE hosts, faults={args.faults})")
    print(f"total profit:       {metrics.total_profit:.1f}")
    print(f"edge / cloud:       {metrics.edge_served} / "
          f"{len(outcome.assignment.cloud_ue_ids)}")
    print(f"rounds:             {report['rounds']} productive "
          f"/ {report['total_rounds']} protocol")
    total_msgs = sum(report["messages"].values())
    total_bytes = sum(report["bytes"].values())
    print(f"messages:           {total_msgs} ({total_bytes} bytes)")
    for kind in sorted(report["messages"]):
        print(f"  {kind:<8} {report['messages'][kind]:>8} msgs "
              f"{report['bytes'][kind]:>10} bytes")
    if args.flight_dir is not None and report.get("postmortems"):
        names = ", ".join(sorted(report["postmortems"]))
        print(f"flight postmortems: {names} -> {args.flight_dir}")
    if plan is not None:
        print(f"faults:             {report['faults']}")
        retx = sum(s["retransmits"] for s in report["sp"].values())
        print(f"sp retransmits:     {retx}")
        print(f"regrants:           {report['regrants']}")
        print(f"orphans -> cloud:   {report['orphans']}")
    if args.verify:
        direct = DMRAAllocator(
            pricing=scenario.pricing, rho=scenario.config.rho
        ).allocate(scenario.network, scenario.radio_map)
        same = (
            sorted(direct.association_pairs())
            == sorted(outcome.assignment.association_pairs())
            and direct.cloud_ue_ids == outcome.assignment.cloud_ue_ids
            and direct.rounds == outcome.assignment.rounds
        )
        print(f"verify vs direct:   {'bit-identical' if same else 'MISMATCH'}")
        if not same:
            return 1
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from repro.dynamics import (
        ExponentialHolding,
        OnlineConfig,
        PoissonArrivals,
        run_online,
    )

    config = ScenarioConfig.paper(cross_sp_markup=args.iota, rho=args.rho)
    online = OnlineConfig(
        horizon_s=args.horizon,
        arrivals=PoissonArrivals(rate_per_s=args.rate),
        holding=ExponentialHolding(mean_s=args.holding),
    )
    outcome = run_online(config, online, seed=args.seed, kernel=args.kernel)
    if getattr(args, "metrics", None) is not None:
        from repro.obs import metrics_from_online

        _PENDING_OUTCOME_FAMILIES.extend(
            metrics_from_online(outcome).families
        )
    print(f"deployment:          {config.sp_count} SPs x "
          f"{config.bs_per_sp} BSs/SP over "
          f"{config.region_side_m:.0f} m x {config.region_side_m:.0f} m "
          f"(kernel: {args.kernel})")
    print(f"horizon:             {args.horizon:.0f} s, "
          f"rate {args.rate}/s, mean holding {args.holding:.0f} s")
    print(f"offered load:        ~{args.rate * args.holding:.0f} "
          f"concurrent tasks")
    print(f"arrivals:            {outcome.arrivals}")
    print(f"edge admitted:       {outcome.admitted_edge}")
    print(f"cloud (blocked):     {outcome.admitted_cloud}")
    print(f"blocking prob.:      {outcome.blocking_probability:.3f}")
    print(f"profit rate:         {outcome.profit_rate_per_s:.2f}/s")
    print(f"mean active (edge):  {outcome.mean_edge_active:.1f}")
    print(f"peak active (edge):  {outcome.edge_active.peak:.0f}")
    print(f"mean RRB util:       {outcome.mean_rrb_utilization:.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.dynamics import ExponentialHolding, PoissonArrivals
    from repro.obs import FlightRecorder
    from repro.stream import StreamConfig, serve_stream

    config = ScenarioConfig.paper(cross_sp_markup=args.iota, rho=args.rho)
    stream = StreamConfig(
        horizon_s=args.horizon,
        arrivals=PoissonArrivals(rate_per_s=args.rate),
        holding=ExponentialHolding(mean_s=args.holding),
        move_fraction=args.move_fraction,
    )
    flight = (
        FlightRecorder()
        if args.listen is not None or args.flight_dump is not None
        else None
    )
    with _live_plane(args, flight=flight):
        outcome = serve_stream(
            config,
            stream,
            seed=args.seed,
            mode=args.mode,
            shards=args.shards,
            kernel=args.kernel,
            queue_maxsize=args.queue,
            flight=flight,
        )
    if args.flight_dump is not None and flight is not None:
        flight.dump_to(args.flight_dump)
        print(f"wrote flight dump {args.flight_dump}")
    if args.metrics_out is not None:
        from repro.obs import metrics_from_stream, write_metrics

        doc = metrics_from_stream(outcome, manifest=_manifest_for(args))
        written = write_metrics(args.metrics_out, doc)
        print(f"wrote metrics {written}")
    print(f"stream replay:       mode={outcome.mode} "
          f"shards={outcome.shards} kernel={outcome.kernel}")
    print(f"horizon:             {args.horizon:.0f} s, rate {args.rate}/s, "
          f"mean holding {args.holding:.0f} s, "
          f"move fraction {args.move_fraction:.2f}")
    print(f"events:              {outcome.events_processed} "
          f"({outcome.arrivals} arrivals, {outcome.departures} "
          f"departures, {outcome.moves} moves)")
    print(f"edge admitted:       {outcome.admitted_edge}")
    print(f"cloud (blocked):     {outcome.admitted_cloud}")
    print(f"readmitted:          {outcome.readmitted}")
    print(f"blocking prob.:      {outcome.blocking_probability:.3f}")
    print(f"profit rate:         {outcome.profit_rate_per_s:.2f}/s")
    print(f"peak active:         {outcome.peak_active} "
          f"({outcome.peak_edge_active} at the edge)")
    print(f"throughput:          {outcome.events_per_s:.0f} events/s "
          f"({outcome.wall_s:.2f} s wall)")
    print(f"digest:              {outcome.digest}")
    return 0


def _cmd_mobility(args: argparse.Namespace) -> int:
    from repro.dynamics import RandomWalk, run_mobility

    config = ScenarioConfig.paper(
        placement=args.placement, cross_sp_markup=args.iota, rho=args.rho
    )
    outcome = run_mobility(
        config,
        ue_count=args.ues,
        epochs=args.epochs,
        epoch_duration_s=args.epoch_duration,
        seed=args.seed,
        mobility=RandomWalk(speed_mps=args.speed),
        sticky=not args.no_sticky,
    )
    mode = "re-optimize" if args.no_sticky else "sticky"
    print(f"mobility run ({mode}), {args.ues} UEs, "
          f"{args.epochs} x {args.epoch_duration:.0f} s epochs, "
          f"{args.speed} m/s")
    print(f"{'epoch':>6} {'profit':>9} {'handovers':>10} "
          f"{'drops':>6} {'cloud':>6}")
    for record in outcome.records:
        print(f"{record.epoch:>6} {record.total_profit:>9.0f} "
              f"{record.handovers:>10} {record.drops_to_cloud:>6} "
              f"{record.cloud:>6}")
    print(f"mean profit {outcome.mean_profit:.0f}, "
          f"handover rate {outcome.handover_rate:.3f}/UE/epoch")
    return 0


def _cmd_failures(args: argparse.Namespace) -> int:
    from repro.dynamics import inject_bs_failures

    config = ScenarioConfig.paper(
        placement=args.placement, cross_sp_markup=args.iota, rho=args.rho
    )
    outcome = inject_bs_failures(
        config, ue_count=args.ues, failed_bs_ids=args.bs, seed=args.seed
    )
    print(f"failed BSs:        {list(outcome.failed_bs_ids)}")
    print(f"orphaned UEs:      {outcome.orphaned_ues}")
    print(f"recovered at edge: {outcome.recovered_ues} "
          f"({outcome.recovery_fraction:.0%})")
    print(f"dropped to cloud:  {outcome.dropped_to_cloud}")
    print(f"profit before:     {outcome.profit_before:.1f}")
    print(f"profit after:      {outcome.profit_after:.1f} "
          f"(-{outcome.profit_loss_fraction:.1%})")
    print(f"edge served:       {outcome.edge_served_before} -> "
          f"{outcome.edge_served_after}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # The trace family is an inspection tool over user-supplied files:
    # bad input gets a one-line error and a nonzero exit, never a
    # traceback.
    try:
        return _dispatch_trace(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch_trace(args: argparse.Namespace) -> int:
    head, rest = args.args[0], args.args[1:]
    if head == "diff":
        if len(rest) != 2:
            raise ConfigurationError(
                "usage: dmra trace diff BASELINE CANDIDATE"
            )
        return _trace_diff(args, Path(rest[0]), Path(rest[1]))
    if head == "metrics":
        if len(rest) != 1:
            raise ConfigurationError("usage: dmra trace metrics FILE")
        return _trace_metrics(args, Path(rest[0]))
    if head == "report":
        if len(rest) != 1:
            raise ConfigurationError(
                "usage: dmra trace report FILE [--top N]"
            )
        head = rest[0]
    elif rest:
        raise ConfigurationError(
            f"unknown trace subcommand {head!r}; expected a trace file, "
            f"'report FILE', 'metrics FILE', or "
            f"'diff BASELINE CANDIDATE'"
        )
    from repro.obs import read_trace, render_top_spans, render_trace_report

    trace = read_trace(Path(head))
    if args.top > 0:
        print(render_top_spans(trace, top=args.top), end="")
    else:
        print(render_trace_report(trace, min_ms=args.min_ms), end="")
    return 0


def _load_metrics_document(path: Path):
    """Load a ``dmra.metrics/1`` doc — directly, or derived from a trace."""
    import json as _json

    from repro.obs import (
        METRICS_SCHEMA,
        METRICS_SCHEMA_V2,
        SCHEMA as TRACE_SCHEMA,
        SCHEMA_V2 as TRACE_SCHEMA_V2,
        metrics_from_trace,
        parse_metrics,
        parse_trace,
    )

    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    first_line = text.strip().splitlines()[0] if text.strip() else ""
    try:
        header = _json.loads(first_line)
    except _json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path}: not a dmra trace or metrics file "
            f"(first line is not JSON: {exc})"
        ) from exc
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema in (METRICS_SCHEMA, METRICS_SCHEMA_V2):
        return parse_metrics(text)
    if schema in (TRACE_SCHEMA, TRACE_SCHEMA_V2):
        return metrics_from_trace(parse_trace(text))
    raise ConfigurationError(
        f"{path}: unsupported schema {schema!r}; expected "
        f"{METRICS_SCHEMA!r}/{METRICS_SCHEMA_V2!r} or "
        f"{TRACE_SCHEMA!r}/{TRACE_SCHEMA_V2!r}"
    )


def _trace_metrics(args: argparse.Namespace, source: Path) -> int:
    from repro.obs import metrics_json, prometheus_exposition

    doc = _load_metrics_document(source)
    rendered = (
        prometheus_exposition(doc)
        if args.format == "prom" else metrics_json(doc) + "\n"
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(rendered)
        print(f"wrote {args.out}")
    else:
        print(rendered, end="")
    return 0


def _trace_diff(
    args: argparse.Namespace, baseline: Path, candidate: Path
) -> int:
    from repro.obs import (
        DiffTolerances,
        diff_documents,
        render_diff_report,
    )

    tolerances = DiffTolerances(
        abs_tol=args.abs_tol,
        rel_tol=args.rel_tol,
        ignore_prefixes=(
            () if args.include_timing
            else DiffTolerances().ignore_prefixes
        ),
    )
    report = diff_documents(
        _load_metrics_document(baseline),
        _load_metrics_document(candidate),
        tolerances=tolerances,
        require_comparable=not args.allow_mismatch,
    )
    print(render_diff_report(
        report, baseline_name=str(baseline), candidate_name=str(candidate)
    ))
    return 0 if report.ok else 1


def _cmd_crossover(args: argparse.Namespace) -> int:
    from repro.analysis import find_crossover

    config = ScenarioConfig.paper()
    result = find_crossover(
        config,
        lambda s: _build_allocator(args.a, s),
        lambda s: _build_allocator(args.b, s),
        seed=args.seed,
        lo_ue_count=args.lo,
        hi_ue_count=args.hi,
        tolerance=args.tolerance,
    )
    if not result.found:
        leader = args.a if result.lower_difference > 0 else args.b
        print(f"no crossover in [{args.lo}, {args.hi}]: "
              f"{leader} leads across the whole bracket")
        print(f"difference at {args.lo}: {result.lower_difference:+.1f}; "
              f"at {args.hi}: {result.upper_difference:+.1f}")
        return 0
    print(f"{args.a} vs {args.b} profit crossover at ~"
          f"{result.midpoint:.0f} UEs "
          f"(bracket [{result.lower_ue_count}, {result.upper_ue_count}], "
          f"seed {args.seed})")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.viz import write_svg

    scenario = _scenario_from_args(args)
    assignment = run_allocation(
        scenario, _build_allocator(args.allocator, scenario)
    ).assignment
    path = write_svg(
        args.out,
        scenario.network,
        assignment,
        show_coverage=args.coverage,
        title=(
            f"{args.allocator} on {scenario.network.ue_count} UEs "
            f"(seed {scenario.seed})"
        ),
    )
    print(f"wrote {path}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments, read_series_csv

    registry = all_experiments()
    if not args.results.is_dir():
        raise ConfigurationError(
            f"{args.results} is not a directory; run the benches first "
            f"(BENCH_SCALE=paper pytest benchmarks/ --benchmark-only)"
        )
    wanted = set(args.only) if args.only else None
    rendered = 0
    for csv_path in sorted(args.results.glob("*.csv")):
        exp_id = csv_path.stem
        if wanted is not None and exp_id not in wanted:
            continue
        experiment = registry.get(exp_id)
        x_label = experiment.x_label if experiment else "x"
        title = experiment.title if experiment else exp_id
        series = read_series_csv(csv_path, x_header=x_label)
        print(render_chart(
            series,
            title=f"{title}  [{csv_path}]",
            x_label=x_label,
            y_label=experiment.y_label if experiment else "value",
        ))
        print()
        print(render_table(series, x_header=x_label))
        print()
        rendered += 1
    if rendered == 0:
        raise ConfigurationError(
            f"no matching CSVs under {args.results}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
