"""Crossover search: where does one scheme overtake another?

EXPERIMENTS.md's deviation 2 says NonCo's nearest-BS packing eventually
catches DMRA beyond the paper's plotted load range.  "Eventually" is
measurable: :func:`find_crossover` bisects the UE count for the point
where a paired metric difference changes sign, giving the exact load at
which the published regime ends (per seed, since the crossover is a
property of the draw).

The search assumes the difference changes sign at most once over the
bracket, which holds for capacity-driven crossovers like this one; the
bracket endpoints are checked and a :class:`CrossoverResult` reports
either the bracketing pair or that no crossover exists in range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.allocator import Allocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["CrossoverResult", "find_crossover"]


@dataclass(frozen=True, slots=True)
class CrossoverResult:
    """Outcome of one crossover search."""

    found: bool
    lower_ue_count: int
    upper_ue_count: int
    lower_difference: float
    upper_difference: float

    @property
    def midpoint(self) -> float:
        """Best point estimate of the crossover load."""
        return (self.lower_ue_count + self.upper_ue_count) / 2.0


def find_crossover(
    config: ScenarioConfig,
    allocator_a: Callable[[Scenario], Allocator],
    allocator_b: Callable[[Scenario], Allocator],
    seed: int,
    lo_ue_count: int,
    hi_ue_count: int,
    metric: Callable[[OutcomeMetrics], float] | None = None,
    tolerance: int = 25,
) -> CrossoverResult:
    """Bisect the UE count where ``metric(a) - metric(b)`` changes sign.

    Both allocators run on the identical scenario at every probe (paired
    comparison).  Requires the difference to have opposite signs at the
    bracket ends; otherwise returns ``found=False`` with the endpoint
    differences so the caller can widen the bracket.
    """
    if lo_ue_count <= 0 or hi_ue_count <= lo_ue_count:
        raise ConfigurationError(
            f"invalid bracket [{lo_ue_count}, {hi_ue_count}]"
        )
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be > 0, got {tolerance}")
    if metric is None:
        metric = lambda m: m.total_profit  # noqa: E731 - tiny default

    def difference(ue_count: int) -> float:
        scenario = build_scenario(config, ue_count, seed)
        value_a = metric(
            run_allocation(scenario, allocator_a(scenario)).metrics
        )
        value_b = metric(
            run_allocation(scenario, allocator_b(scenario)).metrics
        )
        return value_a - value_b

    lo, hi = lo_ue_count, hi_ue_count
    d_lo, d_hi = difference(lo), difference(hi)
    if d_lo == 0.0:
        return CrossoverResult(True, lo, lo, 0.0, 0.0)
    if d_hi == 0.0:
        return CrossoverResult(True, hi, hi, 0.0, 0.0)
    if (d_lo > 0) == (d_hi > 0):
        return CrossoverResult(False, lo, hi, d_lo, d_hi)

    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        d_mid = difference(mid)
        if d_mid == 0.0:
            return CrossoverResult(True, mid, mid, 0.0, 0.0)
        if (d_mid > 0) == (d_lo > 0):
            lo, d_lo = mid, d_mid
        else:
            hi, d_hi = mid, d_mid
    return CrossoverResult(True, lo, hi, d_lo, d_hi)
