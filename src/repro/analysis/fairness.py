"""Fairness analysis across service providers.

The paper maximizes the *sum* of SP profits; these helpers quantify how
that sum is distributed — Jain's fairness index, min/max share, and a
normalized per-subscriber view that corrects for unequal subscriber
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.model.network import MECNetwork

__all__ = ["jain_index", "FairnessReport", "fairness_report"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal; ``1/n`` means one participant takes all.
    A vector of all zeros is defined here as perfectly fair (1.0).
    """
    data = list(values)
    if not data:
        raise ConfigurationError("jain_index needs at least one value")
    if any(v < 0 for v in data):
        raise ConfigurationError("jain_index expects non-negative values")
    square_of_sum = sum(data) ** 2
    sum_of_squares = sum(v * v for v in data)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(data) * sum_of_squares)


@dataclass(frozen=True, slots=True)
class FairnessReport:
    """How one allocation's profit distributes across SPs."""

    jain: float
    jain_per_subscriber: float
    min_sp_profit: float
    max_sp_profit: float
    total_profit: float

    @property
    def max_min_ratio(self) -> float:
        """Best-off SP over worst-off SP (inf when someone earned 0)."""
        if self.min_sp_profit <= 0:
            return float("inf") if self.max_sp_profit > 0 else 1.0
        return self.max_sp_profit / self.min_sp_profit


def fairness_report(
    network: MECNetwork, profit_by_sp: Mapping[int, float]
) -> FairnessReport:
    """Build a :class:`FairnessReport` from a per-SP profit mapping.

    ``jain_per_subscriber`` normalizes each SP's profit by its
    subscriber count, so an SP that simply has fewer users does not
    read as "treated unfairly".
    """
    if not profit_by_sp:
        raise ConfigurationError("profit_by_sp is empty")
    profits = [profit_by_sp.get(sp.sp_id, 0.0) for sp in network.providers]
    per_subscriber = []
    for sp in network.providers:
        subscribers = len(network.user_equipments_of_sp(sp.sp_id))
        profit = profit_by_sp.get(sp.sp_id, 0.0)
        if subscribers > 0:
            per_subscriber.append(profit / subscribers)
        elif profit == 0.0:
            continue  # no subscribers, no profit: neutral
        else:
            raise ConfigurationError(
                f"SP {sp.sp_id} has profit {profit} but no subscribers"
            )
    return FairnessReport(
        jain=jain_index(profits),
        jain_per_subscriber=(
            jain_index(per_subscriber) if per_subscriber else 1.0
        ),
        min_sp_profit=min(profits),
        max_sp_profit=max(profits),
        total_profit=sum(profits),
    )
