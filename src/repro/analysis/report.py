"""One-shot markdown report: everything about one scenario, one page.

Combines the comparison table, the profit decomposition, fairness,
stability, and convergence diagnostics into a single markdown document
— what you paste into a lab notebook after changing a parameter.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.convergence import trace_convergence
from repro.analysis.fairness import fairness_report
from repro.analysis.stability import analyze_stability
from repro.core.allocator import Allocator
from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.econ.accounting import compute_profit
from repro.errors import ConfigurationError
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario

__all__ = ["scenario_report"]


def scenario_report(
    scenario: Scenario, allocators: Sequence[Allocator]
) -> str:
    """Render a markdown report comparing ``allocators`` on ``scenario``."""
    if not allocators:
        raise ConfigurationError("report needs at least one allocator")
    lines: list[str] = []
    config = scenario.config
    lines.append("# Scenario report")
    lines.append("")
    lines.append(f"- {scenario.network.describe()}")
    lines.append(
        f"- seed {scenario.seed}, iota={config.cross_sp_markup}, "
        f"sigma={config.distance_weight}, rho={config.rho}, "
        f"m_k={config.sp_cru_price}, m_k^o={config.sp_other_cost}"
    )
    lines.append("")

    lines.append("## Scheme comparison")
    lines.append("")
    lines.append(
        "| scheme | profit | edge | cloud | same-SP | envy | stranded "
        "| Jain | rounds |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|")
    outcomes = {}
    for allocator in allocators:
        outcome = run_allocation(scenario, allocator)
        outcomes[allocator.name] = outcome
        stability = analyze_stability(
            scenario.network,
            scenario.radio_map,
            outcome.assignment,
            scenario.pricing,
        )
        fairness = fairness_report(
            scenario.network, outcome.metrics.profit_by_sp
        )
        metrics = outcome.metrics
        lines.append(
            f"| {allocator.name} | {metrics.total_profit:.1f} "
            f"| {metrics.edge_served} | {metrics.cloud_forwarded} "
            f"| {metrics.same_sp_fraction:.0%} "
            f"| {stability.envy_count} | {stability.stranded_count} "
            f"| {fairness.jain:.4f} | {metrics.rounds} |"
        )
    lines.append("")

    lines.append("## Profit decomposition (Eq. 5) per SP")
    lines.append("")
    lines.append("| scheme | SP | W_k^r | W_k^B | W_k^S | W_k |")
    lines.append("|---|---|---|---|---|---|")
    for name, outcome in outcomes.items():
        statement = compute_profit(
            scenario.network, outcome.assignment.grants, scenario.pricing
        )
        for sp_id in sorted(statement.by_sp):
            entry = statement.by_sp[sp_id]
            lines.append(
                f"| {name} | {sp_id} | {entry.revenue:.1f} "
                f"| {entry.bs_payments:.1f} | {entry.other_costs:.1f} "
                f"| {entry.profit:.1f} |"
            )
    lines.append("")

    if any(isinstance(a, DMRAAllocator) for a in allocators):
        dmra = next(a for a in allocators if isinstance(a, DMRAAllocator))
        trace = trace_convergence(
            DMRAPolicy(
                pricing=dmra.pricing,
                rho=dmra.rho,
                same_sp_priority=dmra.same_sp_priority,
            ),
            scenario.network,
            scenario.radio_map,
        )
        lines.append("## DMRA convergence")
        lines.append("")
        lines.append(f"- rounds: {trace.round_count}")
        lines.append(
            f"- 95% of associations formed by round "
            f"{trace.rounds_to_fraction(0.95)}"
        )
        lines.append(
            f"- signalling: {trace.total_proposals} proposals "
            f"({trace.proposals_per_association:.2f} per association)"
        )
        lines.append("")
        lines.append("| round | proposals | accepted | cumulative |")
        lines.append("|---|---|---|---|")
        cumulative = 0
        for stats in trace.rounds:
            cumulative += stats.accepted
            lines.append(
                f"| {stats.round_number} | {stats.proposals} "
                f"| {stats.accepted} | {cumulative} |"
            )
        lines.append("")

    return "\n".join(lines)
