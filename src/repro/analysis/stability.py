"""Post-hoc matching-quality analysis: envy and stranded demand.

DMRA is matching-based, so two natural quality notions apply to its
output:

* **price envy** — an edge-served UE whose final BS charges more than
  another candidate BS that *still has room* for it.  Envy-free means
  no UE could unilaterally move somewhere cheaper.
* **stranded demand** — a cloud-forwarded UE that some candidate BS
  could still fully fit.  (The DMRA property tests assert this count is
  zero for DMRA; baselines like NonCo strand plenty, and the analyzer
  quantifies exactly how much.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.econ.pricing import PricingPolicy
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["EnvyPair", "StabilityReport", "analyze_stability"]


@dataclass(frozen=True, slots=True)
class EnvyPair:
    """One UE that would rather be on a cheaper BS with free capacity."""

    ue_id: int
    current_bs_id: int
    better_bs_id: int
    current_price: float
    better_price: float

    @property
    def saving(self) -> float:
        return self.current_price - self.better_price


@dataclass(frozen=True)
class StabilityReport:
    """Envy and stranding found in one assignment."""

    envy_pairs: tuple[EnvyPair, ...]
    stranded_ue_ids: tuple[int, ...]
    edge_served: int
    cloud_forwarded: int

    @property
    def envy_count(self) -> int:
        return len(self.envy_pairs)

    @property
    def envy_fraction(self) -> float:
        return (
            self.envy_count / self.edge_served if self.edge_served else 0.0
        )

    @property
    def stranded_count(self) -> int:
        return len(self.stranded_ue_ids)

    @property
    def is_envy_free(self) -> bool:
        return not self.envy_pairs

    @property
    def has_stranded_demand(self) -> bool:
        return bool(self.stranded_ue_ids)


def analyze_stability(
    network: MECNetwork,
    radio_map: RadioMap,
    assignment: Assignment,
    pricing: PricingPolicy,
) -> StabilityReport:
    """Scan an assignment for envy pairs and stranded UEs.

    Residual capacities are recomputed from the assignment itself, so
    the report is valid for any allocator's output.
    """
    remaining_crus: dict[tuple[int, int], int] = {}
    remaining_rrbs: dict[int, int] = {}
    for bs in network.base_stations:
        for service_id, capacity in bs.cru_capacity.items():
            remaining_crus[(bs.bs_id, service_id)] = capacity
        remaining_rrbs[bs.bs_id] = bs.rrb_capacity
    for grant in assignment.grants:
        key = (grant.bs_id, grant.service_id)
        if key not in remaining_crus or grant.bs_id not in remaining_rrbs:
            raise ConfigurationError(
                f"assignment references BS {grant.bs_id} / service "
                f"{grant.service_id} unknown to the network"
            )
        remaining_crus[key] -= grant.crus
        remaining_rrbs[grant.bs_id] -= grant.rrbs

    def fits(ue, bs_id) -> bool:
        return (
            remaining_crus.get((bs_id, ue.service_id), 0) >= ue.cru_demand
            and remaining_rrbs[bs_id]
            >= radio_map.link(ue.ue_id, bs_id).rrbs_required
        )

    envy: list[EnvyPair] = []
    for grant in assignment.grants:
        ue = network.user_equipment(grant.ue_id)
        current_price = pricing.price_per_cru(
            network.distance_m(ue.ue_id, grant.bs_id),
            network.same_sp(ue.ue_id, grant.bs_id),
        )
        best: EnvyPair | None = None
        for bs_id in network.candidate_base_stations(ue.ue_id):
            if bs_id == grant.bs_id or not fits(ue, bs_id):
                continue
            price = pricing.price_per_cru(
                network.distance_m(ue.ue_id, bs_id),
                network.same_sp(ue.ue_id, bs_id),
            )
            if price < current_price and (
                best is None or price < best.better_price
            ):
                best = EnvyPair(
                    ue_id=ue.ue_id,
                    current_bs_id=grant.bs_id,
                    better_bs_id=bs_id,
                    current_price=current_price,
                    better_price=price,
                )
        if best is not None:
            envy.append(best)

    stranded = [
        ue_id
        for ue_id in sorted(assignment.cloud_ue_ids)
        if any(
            fits(network.user_equipment(ue_id), bs_id)
            for bs_id in network.candidate_base_stations(ue_id)
        )
    ]

    return StabilityReport(
        envy_pairs=tuple(envy),
        stranded_ue_ids=tuple(stranded),
        edge_served=assignment.edge_served_count,
        cloud_forwarded=assignment.cloud_count,
    )
