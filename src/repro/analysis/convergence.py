"""Convergence diagnostics for the matching engine.

§V argues DMRA converges through repeated proposal rounds; these tools
measure that convergence: proposals/acceptances per round, the round at
which 95% of eventual associations exist, and total message volume (a
proxy for the decentralized scheme's signalling overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.matching import (
    IterativeMatchingEngine,
    MatchingPolicy,
    RoundStats,
)
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["ConvergenceTrace", "trace_convergence"]


@dataclass(frozen=True)
class ConvergenceTrace:
    """Per-round progress of one matching run."""

    rounds: tuple[RoundStats, ...]
    assignment: Assignment

    def __post_init__(self) -> None:
        if not self.rounds:
            raise ConfigurationError("trace needs at least one round")

    @property
    def total_proposals(self) -> int:
        """Total UE->BS service requests sent (signalling volume)."""
        return sum(r.proposals for r in self.rounds)

    @property
    def total_accepted(self) -> int:
        return sum(r.accepted for r in self.rounds)

    @property
    def round_count(self) -> int:
        """Productive rounds (at least one proposal sent).

        The engine's terminating zero-proposal probe round is recorded
        in :attr:`rounds` (its ``newly_cloud`` can be non-zero) but not
        counted, mirroring ``Assignment.rounds``.
        """
        return sum(1 for r in self.rounds if r.proposals > 0)

    @property
    def proposals_per_association(self) -> float:
        """Messages spent per realized association (overhead ratio)."""
        if self.total_accepted == 0:
            return float("inf") if self.total_proposals else 0.0
        return self.total_proposals / self.total_accepted

    def rounds_to_fraction(self, fraction: float) -> int:
        """First round by which ``fraction`` of all associations exist."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        target = fraction * self.total_accepted
        cumulative = 0
        for stats in self.rounds:
            cumulative += stats.accepted
            if cumulative >= target:
                return stats.round_number
        return self.rounds[-1].round_number

    def acceptance_curve(self) -> tuple[tuple[int, int], ...]:
        """``(round, cumulative associations)`` pairs."""
        curve = []
        cumulative = 0
        for stats in self.rounds:
            cumulative += stats.accepted
            curve.append((stats.round_number, cumulative))
        return tuple(curve)


def trace_convergence(
    policy: MatchingPolicy,
    network: MECNetwork,
    radio_map: RadioMap,
    max_rounds: int = 100_000,
) -> ConvergenceTrace:
    """Run the engine under ``policy`` while recording per-round stats."""
    recorded: list[RoundStats] = []
    engine = IterativeMatchingEngine(policy, max_rounds=max_rounds)
    assignment = engine.run(
        network, radio_map, observer=recorded.append
    )
    return ConvergenceTrace(rounds=tuple(recorded), assignment=assignment)
