"""Graph-theoretic view of an association (networkx).

Builds the bipartite UE--BS graph of a realized assignment and derives
structure metrics the flat tables hide: per-BS load distribution, the
SP mixing matrix (who serves whose subscribers), and load balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.core.assignment import Assignment
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork

__all__ = ["association_graph", "GraphReport", "graph_report"]


def association_graph(
    network: MECNetwork, assignment: Assignment
) -> nx.Graph:
    """The bipartite association graph.

    Nodes: ``("ue", id)`` and ``("bs", id)`` with ``sp`` attributes;
    edges: one per grant, attributed with the granted CRUs and RRBs.
    BSs appear even when idle, so degree-0 BSs are visible; cloud-bound
    UEs appear as isolated UE nodes.
    """
    graph = nx.Graph()
    for bs in network.base_stations:
        graph.add_node(("bs", bs.bs_id), kind="bs", sp=bs.sp_id)
    for ue in network.user_equipments:
        graph.add_node(("ue", ue.ue_id), kind="ue", sp=ue.sp_id)
    for grant in assignment.grants:
        graph.add_edge(
            ("ue", grant.ue_id),
            ("bs", grant.bs_id),
            crus=grant.crus,
            rrbs=grant.rrbs,
        )
    return graph


@dataclass(frozen=True)
class GraphReport:
    """Structural summary of one association graph."""

    bs_loads: Mapping[int, int]  # bs_id -> served UE count
    max_bs_load: int
    min_bs_load: int
    idle_bs_count: int
    isolated_ue_count: int  # cloud-bound
    sp_mixing: Mapping[tuple[int, int], int]  # (ue_sp, bs_sp) -> edges
    same_sp_edge_fraction: float

    @property
    def load_imbalance(self) -> float:
        """Max BS load over mean positive load (1.0 = perfectly even)."""
        positive = [v for v in self.bs_loads.values() if v > 0]
        if not positive:
            return 1.0
        return self.max_bs_load / (sum(positive) / len(positive))


def graph_report(network: MECNetwork, assignment: Assignment) -> GraphReport:
    """Compute the :class:`GraphReport` for one assignment."""
    if network.bs_count == 0:
        raise ConfigurationError("network has no base stations")
    graph = association_graph(network, assignment)
    bs_loads = {
        bs.bs_id: graph.degree(("bs", bs.bs_id))
        for bs in network.base_stations
    }
    mixing: dict[tuple[int, int], int] = {}
    same_sp_edges = 0
    for ue_node, bs_node in graph.edges():
        if ue_node[0] != "ue":
            ue_node, bs_node = bs_node, ue_node
        key = (graph.nodes[ue_node]["sp"], graph.nodes[bs_node]["sp"])
        mixing[key] = mixing.get(key, 0) + 1
        if key[0] == key[1]:
            same_sp_edges += 1
    edge_count = graph.number_of_edges()
    isolated_ues = sum(
        1
        for ue in network.user_equipments
        if graph.degree(("ue", ue.ue_id)) == 0
    )
    return GraphReport(
        bs_loads=bs_loads,
        max_bs_load=max(bs_loads.values()),
        min_bs_load=min(bs_loads.values()),
        idle_bs_count=sum(1 for v in bs_loads.values() if v == 0),
        isolated_ue_count=isolated_ues,
        sp_mixing=mixing,
        same_sp_edge_fraction=(
            same_sp_edges / edge_count if edge_count else 0.0
        ),
    )
