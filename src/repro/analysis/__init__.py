"""Post-hoc analysis: fairness, convergence, stability, network maps."""

from repro.analysis.convergence import ConvergenceTrace, trace_convergence
from repro.analysis.crossover import CrossoverResult, find_crossover
from repro.analysis.fairness import FairnessReport, fairness_report, jain_index
from repro.analysis.graph import GraphReport, association_graph, graph_report
from repro.analysis.netmap import render_network_map
from repro.analysis.report import scenario_report
from repro.analysis.stability import (
    EnvyPair,
    StabilityReport,
    analyze_stability,
)

__all__ = [
    "ConvergenceTrace",
    "CrossoverResult",
    "EnvyPair",
    "FairnessReport",
    "GraphReport",
    "StabilityReport",
    "analyze_stability",
    "association_graph",
    "fairness_report",
    "find_crossover",
    "graph_report",
    "jain_index",
    "render_network_map",
    "scenario_report",
    "trace_convergence",
]
