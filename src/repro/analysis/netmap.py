"""ASCII rendering of a deployment and its association.

Draws the region as a character grid: digits are BSs (the digit is the
owning SP), ``*`` marks cells containing edge-served UEs, ``c`` marks
cells whose UEs went to the cloud, ``.`` is empty ground.  Cheap but
remarkably effective for eyeballing placement pathologies (e.g. the
coverage hole that explains a blocking hotspot).
"""

from __future__ import annotations

from repro.core.assignment import Assignment
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork

__all__ = ["render_network_map"]


def render_network_map(
    network: MECNetwork,
    assignment: Assignment | None = None,
    width: int = 60,
    height: int = 30,
) -> str:
    """Render the deployment (and optionally an association) as text."""
    if width < 10 or height < 5:
        raise ConfigurationError("map must be at least 10x5 characters")
    region = network.region
    grid = [["."] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = min(
            width - 1,
            int((x - region.x_min) / region.width * width),
        )
        row = min(
            height - 1,
            int((y - region.y_min) / region.height * height),
        )
        return row, col

    if assignment is not None:
        for ue in network.user_equipments:
            row, col = to_cell(ue.position.x, ue.position.y)
            if ue.ue_id in assignment.cloud_ue_ids:
                if grid[row][col] == ".":
                    grid[row][col] = "c"
            else:
                if grid[row][col] in (".", "c"):
                    grid[row][col] = "*"

    for bs in network.base_stations:
        row, col = to_cell(bs.position.x, bs.position.y)
        grid[row][col] = str(bs.sp_id % 10)

    lines = ["".join(row) for row in reversed(grid)]  # y axis upward
    legend = "digits: BS (digit = SP id)   *: edge-served UEs   c: cloud UEs"
    header = (
        f"{region.width:.0f} m x {region.height:.0f} m, "
        f"{network.bs_count} BSs, {network.ue_count} UEs"
    )
    return "\n".join([header, *lines, legend])
