"""Exact TPM optimum via integer linear programming (small instances).

The TPM problem (Def. 1) is a pure 0/1 assignment once prices are fixed:

    max  sum_{(u,i) candidate} profit(u, i) * x_{u,i}
    s.t. sum_i x_{u,i} <= 1                          (Eq. 15, per UE)
         sum_{u req j} c^u x_{u,i} <= c_{i,j}        (Eq. 12, per BS+service)
         sum_u n_{u,i} x_{u,i} <= N_i                (Eq. 14, per BS)

Solved with :func:`scipy.optimize.milp` (HiGHS).  Intended for the
optimality-gap ablation bench on paper-scale-or-smaller scenarios; the
solver is exponential in the worst case, so a variable-count guard
refuses oversized inputs rather than hanging.

:func:`compile_tpm_constraints` is the single source of truth for the
Eq. 12--15 constraint rows: both the exact ILP here and the LP
relaxation behind :mod:`repro.bound` (``relaxed=True``) solve over the
same matrix, so the certification sandwich compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.compute.cru import Grant
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.econ.accounting import marginal_profit
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError, ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = [
    "OptimalILPAllocator",
    "TPMConstraints",
    "compile_tpm_constraints",
]


@dataclass(frozen=True)
class TPMConstraints:
    """The compiled Eq. 12--15 rows over one candidate-link list.

    ``matrix`` has one column per candidate link (same order as the
    ``links`` the caller passed) and one row per constraint;
    ``upper`` is the right-hand side.  Row order: per-UE (Eq. 15),
    per-(BS, service) CRU (Eq. 12), per-BS RRB (Eq. 14).
    """

    matrix: sparse.csr_matrix
    upper: np.ndarray

    @property
    def linear_constraint(self) -> LinearConstraint:
        return LinearConstraint(self.matrix, lb=-np.inf, ub=self.upper)


def compile_tpm_constraints(
    network: MECNetwork, links: list
) -> TPMConstraints:
    """Build the TPM constraint matrix over ``links`` (Eqs. 12--15)."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    upper: list[float] = []
    row_count = 0

    def add_constraint(entries: list[tuple[int, float]], bound: float) -> None:
        nonlocal row_count
        for col, val in entries:
            rows.append(row_count)
            cols.append(col)
            vals.append(val)
        upper.append(bound)
        row_count += 1

    by_ue: dict[int, list[int]] = {}
    by_bs_service: dict[tuple[int, int], list[int]] = {}
    by_bs: dict[int, list[int]] = {}
    for index, link in enumerate(links):
        by_ue.setdefault(link.ue_id, []).append(index)
        service_id = network.user_equipment(link.ue_id).service_id
        by_bs_service.setdefault((link.bs_id, service_id), []).append(index)
        by_bs.setdefault(link.bs_id, []).append(index)

    for indices in by_ue.values():  # Eq. 15
        add_constraint([(i, 1.0) for i in indices], 1.0)
    for (bs_id, service_id), indices in by_bs_service.items():  # Eq. 12
        add_constraint(
            [
                (i, float(network.user_equipment(links[i].ue_id).cru_demand))
                for i in indices
            ],
            float(network.base_station(bs_id).cru_capacity[service_id]),
        )
    for bs_id, indices in by_bs.items():  # Eq. 14
        add_constraint(
            [(i, float(links[i].rrbs_required)) for i in indices],
            float(network.base_station(bs_id).rrb_capacity),
        )

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row_count, len(links))
    )
    return TPMConstraints(matrix=matrix, upper=np.asarray(upper))


class OptimalILPAllocator(Allocator):
    """Globally optimal TPM association via MILP (HiGHS backend).

    With ``relaxed=True`` the integrality constraint is dropped and the
    same matrix solves as a linear program: :meth:`objective_bound`
    then returns the LP relaxation value, a certified upper bound on
    the ILP optimum (used by :mod:`repro.bound`).  A relaxed instance
    cannot :meth:`allocate` — fractional ``x`` is not an assignment.
    """

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        max_variables: int = 50_000,
        time_limit_s: float | None = 60.0,
        relaxed: bool = False,
    ) -> None:
        if max_variables <= 0:
            raise ConfigurationError(
                f"max_variables must be > 0, got {max_variables}"
            )
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.max_variables = max_variables
        self.time_limit_s = time_limit_s
        self.relaxed = relaxed
        self.name = "lp-relaxation" if relaxed else "ilp-optimal"

    def _compile(self, network: MECNetwork, radio_map: RadioMap):
        """Candidate links, their profits, and the Eq. 12--15 rows."""
        links = [link for link in radio_map if link.feasible]
        if len(links) > self.max_variables:
            raise ConfigurationError(
                f"{len(links)} candidate links exceed the "
                f"{self.max_variables}-variable ILP guard "
                f"({network.ue_count} UEs x ~"
                f"{len(links) / max(network.ue_count, 1):.1f} candidates); "
                f"use repro.bound (Lagrangian/LP gap certification) or a "
                f"heuristic allocator for instances this large"
            )
        profits = np.array(
            [
                marginal_profit(network, link.ue_id, link.bs_id, self.pricing)
                for link in links
            ]
        )
        return links, profits

    def _solve(self, network: MECNetwork, radio_map: RadioMap):
        """Run HiGHS over the compiled problem; returns (result, links)."""
        links, profits = self._compile(network, radio_map)
        if not links:
            return None, links
        constraints = compile_tpm_constraints(network, links)
        options = {}
        if self.time_limit_s is not None:
            options["time_limit"] = self.time_limit_s
        integrality = (
            np.zeros(len(links)) if self.relaxed else np.ones(len(links))
        )
        result = milp(
            c=-profits,  # milp minimizes
            integrality=integrality,
            bounds=Bounds(0, 1),
            constraints=[constraints.linear_constraint],
            options=options,
        )
        if result.x is None:
            kind = "LP" if self.relaxed else "ILP"
            raise AllocationError(f"{kind} solve failed: {result.message}")
        return result, links

    def objective_bound(
        self, network: MECNetwork, radio_map: RadioMap
    ) -> float:
        """The optimal objective value (LP relaxation when ``relaxed``).

        An exact instance returns the ILP optimum; a relaxed one the LP
        relaxation value, which upper-bounds every integral assignment.
        """
        result, links = self._solve(network, radio_map)
        if result is None:
            return 0.0
        return float(-result.fun)

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        if self.relaxed:
            raise ConfigurationError(
                "a relaxed (LP) instance yields fractional x and cannot "
                "allocate; call objective_bound() for the bound, or "
                "construct with relaxed=False for the exact ILP"
            )
        all_ue_ids = [ue.ue_id for ue in network.user_equipments]
        result, links = self._solve(network, radio_map)
        if result is None:
            return Assignment.from_grants((), all_ue_ids, rounds=0)

        grants: list[Grant] = []
        for index, chosen in enumerate(np.round(result.x).astype(int)):
            if chosen != 1:
                continue
            link = links[index]
            ue = network.user_equipment(link.ue_id)
            grants.append(
                Grant(
                    bs_id=link.bs_id,
                    ue_id=link.ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand,
                    rrbs=link.rrbs_required,
                )
            )
        return Assignment.from_grants(grants, all_ue_ids, rounds=1)
