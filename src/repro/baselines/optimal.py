"""Exact TPM optimum via integer linear programming (small instances).

The TPM problem (Def. 1) is a pure 0/1 assignment once prices are fixed:

    max  sum_{(u,i) candidate} profit(u, i) * x_{u,i}
    s.t. sum_i x_{u,i} <= 1                          (Eq. 15, per UE)
         sum_{u req j} c^u x_{u,i} <= c_{i,j}        (Eq. 12, per BS+service)
         sum_u n_{u,i} x_{u,i} <= N_i                (Eq. 14, per BS)

Solved with :func:`scipy.optimize.milp` (HiGHS).  Intended for the
optimality-gap ablation bench on paper-scale-or-smaller scenarios; the
solver is exponential in the worst case, so a variable-count guard
refuses oversized inputs rather than hanging.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.compute.cru import Grant
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.econ.accounting import marginal_profit
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError, ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["OptimalILPAllocator"]


class OptimalILPAllocator(Allocator):
    """Globally optimal TPM association via MILP (HiGHS backend)."""

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        max_variables: int = 50_000,
        time_limit_s: float | None = 60.0,
    ) -> None:
        if max_variables <= 0:
            raise ConfigurationError(
                f"max_variables must be > 0, got {max_variables}"
            )
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.max_variables = max_variables
        self.time_limit_s = time_limit_s
        self.name = "ilp-optimal"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        links = [link for link in radio_map if link.feasible]
        all_ue_ids = [ue.ue_id for ue in network.user_equipments]
        if not links:
            return Assignment.from_grants((), all_ue_ids, rounds=0)
        if len(links) > self.max_variables:
            raise ConfigurationError(
                f"{len(links)} candidate links exceed the "
                f"{self.max_variables}-variable ILP guard; use a heuristic "
                f"allocator for instances this large"
            )

        profits = np.array(
            [
                marginal_profit(network, link.ue_id, link.bs_id, self.pricing)
                for link in links
            ]
        )

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        upper: list[float] = []
        row_count = 0

        def add_constraint(entries: list[tuple[int, float]], bound: float) -> None:
            nonlocal row_count
            for col, val in entries:
                rows.append(row_count)
                cols.append(col)
                vals.append(val)
            upper.append(bound)
            row_count += 1

        by_ue: dict[int, list[int]] = {}
        by_bs_service: dict[tuple[int, int], list[int]] = {}
        by_bs: dict[int, list[int]] = {}
        for index, link in enumerate(links):
            by_ue.setdefault(link.ue_id, []).append(index)
            service_id = network.user_equipment(link.ue_id).service_id
            by_bs_service.setdefault((link.bs_id, service_id), []).append(index)
            by_bs.setdefault(link.bs_id, []).append(index)

        for indices in by_ue.values():  # Eq. 15
            add_constraint([(i, 1.0) for i in indices], 1.0)
        for (bs_id, service_id), indices in by_bs_service.items():  # Eq. 12
            add_constraint(
                [
                    (i, float(network.user_equipment(links[i].ue_id).cru_demand))
                    for i in indices
                ],
                float(network.base_station(bs_id).cru_capacity[service_id]),
            )
        for bs_id, indices in by_bs.items():  # Eq. 14
            add_constraint(
                [(i, float(links[i].rrbs_required)) for i in indices],
                float(network.base_station(bs_id).rrb_capacity),
            )

        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row_count, len(links))
        )
        constraint = LinearConstraint(
            matrix, lb=-np.inf, ub=np.asarray(upper)
        )
        options = {}
        if self.time_limit_s is not None:
            options["time_limit"] = self.time_limit_s
        result = milp(
            c=-profits,  # milp minimizes
            integrality=np.ones(len(links)),
            bounds=Bounds(0, 1),
            constraints=[constraint],
            options=options,
        )
        if result.x is None:
            raise AllocationError(f"ILP solve failed: {result.message}")

        grants: list[Grant] = []
        for index, chosen in enumerate(np.round(result.x).astype(int)):
            if chosen != 1:
                continue
            link = links[index]
            ue = network.user_equipment(link.ue_id)
            grants.append(
                Grant(
                    bs_id=link.bs_id,
                    ue_id=link.ue_id,
                    service_id=ue.service_id,
                    crus=ue.cru_demand,
                    rrbs=link.rrbs_required,
                )
            )
        return Assignment.from_grants(grants, all_ue_ids, rounds=1)
