"""Repeated ascending auction for edge association (strategic baseline).

Auction-based MEC allocation in the style of Habiba et al.
(arXiv:2402.04399): base stations act as auctioneers selling CRU/RRB
bundles, UEs (through their SPs) bid where their surplus is highest.

Each round:

1. Every still-unassigned UE values each candidate BS at the marginal
   profit its SP would book there (Eqs. 5--8), minus the BS's current
   *ask surcharge* (a per-CRU markup, initially zero).  It bids on the
   single BS with the highest positive surplus.
2. Each BS admits its bids in descending-surplus order while capacity
   (Eqs. 12 and 14) allows; admitted grants are final.
3. A BS that had to reject a bid for lack of capacity raises its ask by
   ``price_increment`` -- contention makes the resource dearer, and the
   losers re-bid elsewhere (or nowhere) at the higher prices.

The auction terminates: grants only accumulate, and asks rise only on
contested rounds, which die out once surcharges exhaust every bidder's
margin.  The ask is *auction state only* -- reported profits are always
evaluated under the paper's posted Eq. 9--10 prices, so the mechanism
is compared against DMRA on the same accounting.
"""

from __future__ import annotations

from repro.compute.cru import LedgerPool
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.econ.accounting import marginal_profit
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["AuctionAllocator"]


class AuctionAllocator(Allocator):
    """Repeated ascending auction: bid highest-surplus, prices rise on
    contention, grants are final."""

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        price_increment: float = 0.5,
        max_rounds: int = 10_000,
    ) -> None:
        if price_increment <= 0:
            raise AllocationError(
                f"price_increment must be > 0, got {price_increment}"
            )
        if max_rounds <= 0:
            raise AllocationError(f"max_rounds must be > 0, got {max_rounds}")
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.price_increment = price_increment
        self.max_rounds = max_rounds
        self.name = "auction"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        ledgers = LedgerPool(network.base_stations)
        ask: dict[int, float] = {}
        values: dict[tuple[int, int], float] = {}

        def value(ue_id: int, bs_id: int) -> float:
            key = (ue_id, bs_id)
            if key not in values:
                values[key] = marginal_profit(
                    network, ue_id, bs_id, self.pricing
                )
            return values[key]

        unassigned = list(network.user_equipments)
        rounds = 0
        while unassigned:
            rounds += 1
            if rounds > self.max_rounds:
                raise AllocationError(
                    f"auction did not clear within {self.max_rounds} rounds"
                )

            # Bid phase: each UE targets its highest-surplus BS.
            bids: dict[int, list[tuple[float, int]]] = {}
            for ue in unassigned:
                best_bs = None
                best_surplus = 0.0
                for bs_id in network.candidate_base_stations(ue.ue_id):
                    link = radio_map.link(ue.ue_id, bs_id)
                    if not link.feasible:
                        continue
                    surplus = (
                        value(ue.ue_id, bs_id)
                        - ask.get(bs_id, 0.0) * ue.cru_demand
                    )
                    if surplus > best_surplus:
                        best_bs = bs_id
                        best_surplus = surplus
                if best_bs is not None:
                    bids.setdefault(best_bs, []).append(
                        (best_surplus, ue.ue_id)
                    )
            if not bids:
                break  # nobody has positive surplus anywhere

            # Clearing phase: admit by descending surplus; contention
            # raises the loser-facing ask for the next round.
            granted: set[int] = set()
            raised = False
            for bs_id in sorted(bids):
                ledger = ledgers.ledger(bs_id)
                contested = False
                for _, ue_id in sorted(
                    bids[bs_id], key=lambda bid: (-bid[0], bid[1])
                ):
                    ue = network.user_equipment(ue_id)
                    rrbs = radio_map.link(ue_id, bs_id).rrbs_required
                    if ledger.can_grant(
                        ue_id, ue.service_id, ue.cru_demand, rrbs
                    ):
                        ledger.grant(
                            ue_id, ue.service_id, ue.cru_demand, rrbs
                        )
                        granted.add(ue_id)
                    else:
                        contested = True
                if contested:
                    ask[bs_id] = ask.get(bs_id, 0.0) + self.price_increment
                    raised = True

            unassigned = [
                ue for ue in unassigned if ue.ue_id not in granted
            ]
            if not granted and not raised:
                break  # stalemate: no capacity fits any remaining bidder

        return Assignment.from_grants(
            ledgers.all_grants(),
            (ue.ue_id for ue in network.user_equipments),
            rounds=rounds,
        )
