"""Best-response game dynamics (the game-theoretic baseline).

The computation-offloading literature the paper cites (Chen's
decentralized offloading game; Tianze et al.'s potential game) lets each
UE *unilaterally* switch to its cheapest feasible BS until no one wants
to move.  Because a UE's price ``p_{i,u}`` does not depend on who else
the BS serves, every switch strictly lowers the mover's price and
leaves everyone else's unchanged — the summed price is a potential
function, so the dynamics terminate at a pure Nash equilibrium.

The contrast with DMRA: best response is UE-selfish (no BS-side
preference, no SP coordination), so it reaches an equilibrium that is
envy-free *for the moving side* but ignores the operators' margins and
the paper's same-SP mechanism entirely.

With ``load_weight > 0`` the dynamic becomes a congestion game in the
style of Liu et al. (arXiv:1901.00233): each BS adds a load-aware price
term proportional to its occupancy, so a UE weighing BS ``i`` pays
``p_{i,u} + beta * n_i`` where ``n_i`` counts the UEs it would share
``i`` with (itself included).  This is a Rosenthal congestion game with
exact potential

    Phi = sum_u p_{i(u),u} + beta * sum_i n_i (n_i + 1) / 2,

and every improving switch decreases ``Phi`` by exactly the mover's
cost delta, so the dynamics still terminate at a pure Nash equilibrium.
``load_weight = 0`` reproduces the plain best-response baseline
move for move.
"""

from __future__ import annotations

from repro.compute.cru import LedgerPool
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.errors import AllocationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["BestResponseAllocator"]


class BestResponseAllocator(Allocator):
    """Iterated unilateral switching to the cheapest feasible BS."""

    def __init__(
        self,
        pricing: PricingPolicy | None = None,
        max_sweeps: int = 10_000,
        load_weight: float = 0.0,
    ) -> None:
        if max_sweeps <= 0:
            raise AllocationError(
                f"max_sweeps must be > 0, got {max_sweeps}"
            )
        if load_weight < 0:
            raise AllocationError(
                f"load_weight must be >= 0, got {load_weight}"
            )
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.max_sweeps = max_sweeps
        self.load_weight = load_weight
        self.name = "potential-game" if load_weight > 0 else "best-response"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        ledgers = LedgerPool(network.base_stations)
        serving: dict[int, int] = {}
        prices: dict[tuple[int, int], float] = {}

        def price(ue_id: int, bs_id: int) -> float:
            key = (ue_id, bs_id)
            if key not in prices:
                prices[key] = self.pricing.price_per_cru(
                    network.distance_m(ue_id, bs_id),
                    network.same_sp(ue_id, bs_id),
                )
            return prices[key]

        beta = self.load_weight

        def occupancy(bs_id: int) -> int:
            return len(ledgers.ledger(bs_id).grants)

        sweeps = 0
        moved = True
        while moved:
            sweeps += 1
            if sweeps > self.max_sweeps:
                raise AllocationError(
                    f"best response did not converge within "
                    f"{self.max_sweeps} sweeps"
                )
            moved = False
            for ue in network.user_equipments:
                current_bs = serving.get(ue.ue_id)
                # The mover's own grant is in its BS's occupancy, so the
                # current load term is beta * n_i; a candidate's is
                # beta * (n_j + 1) -- the load after joining.
                current_price = (
                    price(ue.ue_id, current_bs)
                    + beta * occupancy(current_bs)
                    if current_bs is not None
                    else float("inf")
                )
                best_bs = None
                best_price = current_price
                for bs_id in network.candidate_base_stations(ue.ue_id):
                    if bs_id == current_bs:
                        continue
                    candidate_price = (
                        price(ue.ue_id, bs_id)
                        + beta * (occupancy(bs_id) + 1)
                    )
                    if candidate_price >= best_price:
                        continue
                    rrbs = radio_map.link(ue.ue_id, bs_id).rrbs_required
                    if ledgers.ledger(bs_id).can_grant(
                        ue.ue_id, ue.service_id, ue.cru_demand, rrbs
                    ):
                        best_bs = bs_id
                        best_price = candidate_price
                if best_bs is None:
                    continue
                if current_bs is not None:
                    ledgers.ledger(current_bs).release(ue.ue_id)
                ledgers.ledger(best_bs).grant(
                    ue.ue_id,
                    ue.service_id,
                    ue.cru_demand,
                    radio_map.link(ue.ue_id, best_bs).rrbs_required,
                )
                serving[ue.ue_id] = best_bs
                moved = True

        return Assignment.from_grants(
            ledgers.all_grants(),
            (ue.ue_id for ue in network.user_equipments),
            rounds=sweeps,
        )
