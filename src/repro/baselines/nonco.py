"""NonCo baseline: non-collaborative max-SINR association.

Per §VI.B: each UE proposes to the reachable BS with the *maximum uplink
SINR*, and each BS prefers the UEs *consuming the fewest RRBs*.  "The
collaboration of BSs is not taken into consideration": a UE rejected by
its max-SINR BS is **not** redirected to another BS — its task goes to
the remote cloud.  This is what distinguishes NonCo from the matching
schemes: no load balancing ever happens, so popular cells saturate while
neighbours idle.

Concretely: every UE nominates its single best-SINR candidate; each BS
sorts its proposers by ascending RRB demand and admits them while both
the service's CRUs and the RRB budget hold out; everyone else is
forwarded.
"""

from __future__ import annotations

from repro.compute.cru import LedgerPool
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["NonCoAllocator"]


class NonCoAllocator(Allocator):
    """The NonCo comparison scheme: one-shot max-SINR association."""

    def __init__(self) -> None:
        self.name = "nonco"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        # Phase 1: each UE nominates its max-SINR candidate BS.
        proposals: dict[int, list[int]] = {}
        for ue in network.user_equipments:
            candidates = network.candidate_base_stations(ue.ue_id)
            if not candidates:
                continue
            best = max(
                candidates,
                key=lambda bs_id: (
                    radio_map.link(ue.ue_id, bs_id).sinr_linear,
                    -bs_id,
                ),
            )
            proposals.setdefault(best, []).append(ue.ue_id)

        # Phase 2: each BS admits cheapest-radio-footprint UEs first.
        ledgers = LedgerPool(network.base_stations)
        for bs_id in sorted(proposals):
            ledger = ledgers.ledger(bs_id)
            queue = sorted(
                proposals[bs_id],
                key=lambda ue_id: (
                    radio_map.link(ue_id, bs_id).rrbs_required,
                    ue_id,
                ),
            )
            for ue_id in queue:
                ue = network.user_equipment(ue_id)
                rrbs = radio_map.link(ue_id, bs_id).rrbs_required
                if ledger.can_grant(ue_id, ue.service_id, ue.cru_demand, rrbs):
                    ledger.grant(ue_id, ue.service_id, ue.cru_demand, rrbs)

        return Assignment.from_grants(
            ledgers.all_grants(),
            (ue.ue_id for ue in network.user_equipments),
            rounds=1,
        )
