"""DCSP baseline: Decentralized Collaboration Service Placement.

Per the paper's §VI.B description of the comparison scheme (from Yu et
al., GLOBECOM 2018): in every round, each UE proposes to the reachable
BS with the *lowest resource occupation*, and each BS prefers the UE
*covered by the fewest BSs*; ties go to the UE *consuming the least
radio resources*.  DCSP does not consider SP ownership or prices.

Resource occupation is the BS's mean utilization across its computing
and radio pools — the natural reading of "lowest resource occupation"
for a scheme that jointly tracks both resources.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.core.matching import (
    IterativeMatchingEngine,
    MatchingContext,
    MatchingPolicy,
)
from repro.model.entities import UserEquipment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["DCSPPolicy", "DCSPAllocator"]


class DCSPPolicy(MatchingPolicy):
    """DCSP's ranking rules over the shared matching engine."""

    name = "dcsp"

    def ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float:
        ledger = ctx.ledgers.ledger(bs_id)
        cru_util, rrb_util = ledger.utilization()
        return (cru_util + rrb_util) / 2.0

    # Engine hot-path hooks: the DCSP score is pure per-BS occupation —
    # nothing varies per UE — so the "static" part is zero and the whole
    # score is one per-round table entry per BS (ledgers are frozen
    # throughout a proposal phase).  ``0.0 + x == x`` keeps the cached
    # path bit-identical to ue_score.

    def static_ue_score(
        self, ue: UserEquipment, bs_id: int, ctx: MatchingContext
    ) -> float | None:
        return 0.0

    def round_additive_terms(
        self, ctx: MatchingContext, service_ids: frozenset[int]
    ) -> dict[int, dict[int, float]] | None:
        def occupation(ledger) -> float:
            cru_util, rrb_util = ledger.utilization()
            return (cru_util + rrb_util) / 2.0

        by_bs = {ledger.bs_id: occupation(ledger) for ledger in ctx.ledgers}
        # The score ignores the service, so every service shares one map.
        return {service_id: by_bs for service_id in service_ids}

    def bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple:
        return (
            ctx.feasible_bs_count(ue_id),
            ctx.rrbs_required(ue_id, bs_id),
        )

    def static_bs_rank_key(
        self, ue_id: int, bs_id: int, ctx: MatchingContext
    ) -> tuple | None:
        return (ctx.rrbs_required(ue_id, bs_id),)

    def bs_rank_key_from_static(
        self, ue_id: int, bs_id: int, static: tuple, ctx: MatchingContext
    ) -> tuple:
        return (ctx.feasible_bs_count(ue_id), static[0])


class DCSPAllocator(Allocator):
    """The DCSP comparison scheme as an :class:`Allocator`."""

    def __init__(self, max_rounds: int = 100_000) -> None:
        self.max_rounds = max_rounds
        self.name = "dcsp"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        engine = IterativeMatchingEngine(DCSPPolicy(), max_rounds=self.max_rounds)
        return engine.run(network, radio_map)
