"""Centralized profit-greedy baseline (not in the paper; for ablations).

A strong centralized reference point: sort all feasible (UE, BS) pairs
by the marginal profit of serving that UE on that BS (Eq. 5 terms,
computed by :func:`repro.econ.accounting.marginal_profit`) and commit
them greedily subject to the CRU and RRB budgets, at most one BS per UE.

DMRA is decentralized and cannot beat an unconstrained optimum; the
greedy gives a cheap near-upper reference for the optimality-gap bench.
"""

from __future__ import annotations

from repro.compute.cru import LedgerPool
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.econ.accounting import marginal_profit
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["GreedyProfitAllocator"]


class GreedyProfitAllocator(Allocator):
    """Centralized greedy maximization of summed marginal profit."""

    def __init__(self, pricing: PricingPolicy | None = None) -> None:
        self.pricing = pricing if pricing is not None else PaperPricing()
        self.name = "greedy"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        pairs: list[tuple[float, int, int]] = []
        for link in radio_map:
            profit = marginal_profit(
                network, link.ue_id, link.bs_id, self.pricing
            )
            pairs.append((profit, link.ue_id, link.bs_id))
        # Highest profit first; ids break ties deterministically.
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))

        ledgers = LedgerPool(network.base_stations)
        served: set[int] = set()
        for _, ue_id, bs_id in pairs:
            if ue_id in served:
                continue
            ue = network.user_equipment(ue_id)
            rrbs = radio_map.link(ue_id, bs_id).rrbs_required
            ledger = ledgers.ledger(bs_id)
            if ledger.can_grant(ue_id, ue.service_id, ue.cru_demand, rrbs):
                ledger.grant(ue_id, ue.service_id, ue.cru_demand, rrbs)
                served.add(ue_id)
        return Assignment.from_grants(
            ledgers.all_grants(),
            (ue.ue_id for ue in network.user_equipments),
            rounds=1,
        )
