"""Random feasible association (sanity-floor baseline).

Visits UEs in random order and assigns each to a uniformly random
candidate BS that still fits its demand; UEs with no fitting candidate
go to the cloud.  Any scheme worth publishing must beat this floor,
which the integration tests assert for DMRA.
"""

from __future__ import annotations

import numpy as np

from repro.compute.cru import LedgerPool
from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["RandomAllocator"]


class RandomAllocator(Allocator):
    """Uniformly random feasible association, reproducible from a seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = "random"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        rng = np.random.default_rng(self.seed)
        ledgers = LedgerPool(network.base_stations)
        ue_ids = [ue.ue_id for ue in network.user_equipments]
        order = rng.permutation(len(ue_ids))
        for index in order:
            ue = network.user_equipment(ue_ids[int(index)])
            fitting = [
                bs_id
                for bs_id in network.candidate_base_stations(ue.ue_id)
                if ledgers.ledger(bs_id).can_grant(
                    ue.ue_id,
                    ue.service_id,
                    ue.cru_demand,
                    radio_map.link(ue.ue_id, bs_id).rrbs_required,
                )
            ]
            if not fitting:
                continue
            choice = fitting[int(rng.integers(len(fitting)))]
            ledgers.ledger(choice).grant(
                ue.ue_id,
                ue.service_id,
                ue.cru_demand,
                radio_map.link(ue.ue_id, choice).rrbs_required,
            )
        return Assignment.from_grants(ledgers.all_grants(), ue_ids, rounds=1)
