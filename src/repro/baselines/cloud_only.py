"""Cloud-only baseline: forward every task to the remote cloud.

The degenerate lower bound — zero MEC-layer profit and maximal forwarded
traffic.  Useful as the reference point for the forwarded-load metric of
Fig. 7 and for exercising the cloud accounting path end to end.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["CloudOnlyAllocator"]


class CloudOnlyAllocator(Allocator):
    """Every UE is forwarded; no edge resources are touched."""

    def __init__(self) -> None:
        self.name = "cloud-only"

    def allocate(self, network: MECNetwork, radio_map: RadioMap) -> Assignment:
        return Assignment(
            grants=(),
            cloud_ue_ids=frozenset(
                ue.ue_id for ue in network.user_equipments
            ),
            rounds=0,
        )
