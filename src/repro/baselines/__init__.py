"""Comparison allocators: the paper's baselines plus ablation references."""

from repro.baselines.auction import AuctionAllocator
from repro.baselines.best_response import BestResponseAllocator
from repro.baselines.cloud_only import CloudOnlyAllocator
from repro.baselines.dcsp import DCSPAllocator, DCSPPolicy
from repro.baselines.greedy import GreedyProfitAllocator
from repro.baselines.nonco import NonCoAllocator
from repro.baselines.optimal import OptimalILPAllocator
from repro.baselines.random_alloc import RandomAllocator

__all__ = [
    "AuctionAllocator",
    "BestResponseAllocator",
    "CloudOnlyAllocator",
    "DCSPAllocator",
    "DCSPPolicy",
    "GreedyProfitAllocator",
    "NonCoAllocator",
    "OptimalILPAllocator",
    "RandomAllocator",
]
