"""Outcome metrics computed from an assignment.

Besides the paper's two reported metrics — total SP profit (Figs. 2--6)
and total forwarded traffic load (Fig. 7) — the harness records the
supporting quantities that explain *why* an allocator wins: edge-served
fraction, same-SP association fraction, resource utilization, and
matching rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.assignment import Assignment
from repro.econ.accounting import ProfitStatement, compute_profit
from repro.econ.pricing import PricingPolicy
from repro.model.network import MECNetwork

__all__ = [
    "OutcomeMetrics",
    "compute_metrics",
    "per_bs_utilization",
    "per_service_cru_utilization",
    "per_sp_forwarded_traffic",
]


@dataclass(frozen=True)
class OutcomeMetrics:
    """Everything we measure about one allocation outcome."""

    total_profit: float
    profit_by_sp: Mapping[int, float]
    edge_served: int
    cloud_forwarded: int
    forwarded_traffic_bps: float
    forwarded_crus: int
    same_sp_fraction: float
    mean_cru_utilization: float
    mean_rrb_utilization: float
    rounds: int

    @property
    def ue_count(self) -> int:
        return self.edge_served + self.cloud_forwarded

    @property
    def edge_served_fraction(self) -> float:
        total = self.ue_count
        return self.edge_served / total if total else 0.0


def compute_metrics(
    network: MECNetwork,
    assignment: Assignment,
    pricing: PricingPolicy,
) -> OutcomeMetrics:
    """Evaluate all metrics for one (network, assignment) pair."""
    statement: ProfitStatement = compute_profit(
        network, assignment.grants, pricing
    )

    same_sp = sum(
        1
        for grant in assignment.grants
        if network.same_sp(grant.ue_id, grant.bs_id)
    )
    same_sp_fraction = (
        same_sp / len(assignment.grants) if assignment.grants else 0.0
    )

    forwarded_traffic = sum(
        network.user_equipment(ue_id).rate_demand_bps
        for ue_id in assignment.cloud_ue_ids
    )
    forwarded_crus = sum(
        network.user_equipment(ue_id).cru_demand
        for ue_id in assignment.cloud_ue_ids
    )

    used_crus_by_bs, used_rrbs_by_bs = _usage_by_bs(assignment)
    cru_utils: list[float] = []
    rrb_utils: list[float] = []
    for bs in network.base_stations:
        used_crus = used_crus_by_bs.get(bs.bs_id, 0)
        used_rrbs = used_rrbs_by_bs.get(bs.bs_id, 0)
        total_crus = bs.total_cru_capacity
        cru_utils.append(used_crus / total_crus if total_crus else 0.0)
        rrb_utils.append(used_rrbs / bs.rrb_capacity)

    return OutcomeMetrics(
        total_profit=statement.total_profit,
        profit_by_sp={
            sp_id: entry.profit for sp_id, entry in statement.by_sp.items()
        },
        edge_served=assignment.edge_served_count,
        cloud_forwarded=assignment.cloud_count,
        forwarded_traffic_bps=forwarded_traffic,
        forwarded_crus=forwarded_crus,
        same_sp_fraction=same_sp_fraction,
        mean_cru_utilization=(
            sum(cru_utils) / len(cru_utils) if cru_utils else 0.0
        ),
        mean_rrb_utilization=(
            sum(rrb_utils) / len(rrb_utils) if rrb_utils else 0.0
        ),
        rounds=assignment.rounds,
    )


def _usage_by_bs(assignment: Assignment) -> tuple[dict[int, int], dict[int, int]]:
    """One-pass ``({bs_id: used_crus}, {bs_id: used_rrbs})`` totals.

    Grouping the grants once keeps the per-BS loops O(B + G) instead of
    the O(B * G) that per-BS ``grants_of_bs`` scans would cost — the
    difference between instant and minutes at 100k UEs x 2500 BSs.
    """
    used_crus: dict[int, int] = {}
    used_rrbs: dict[int, int] = {}
    for grant in assignment.grants:
        used_crus[grant.bs_id] = used_crus.get(grant.bs_id, 0) + grant.crus
        used_rrbs[grant.bs_id] = used_rrbs.get(grant.bs_id, 0) + grant.rrbs
    return used_crus, used_rrbs


def per_bs_utilization(
    network: MECNetwork, assignment: Assignment
) -> dict[int, tuple[float, float]]:
    """``{bs_id: (cru_utilization, rrb_utilization)}`` for every BS.

    The per-BS breakdown behind :class:`OutcomeMetrics`'s means — the
    saturation picture the load-balancing evaluations plot.  A BS with
    no CRU pool reports 0.0 CRU utilization.
    """
    used_crus_by_bs, used_rrbs_by_bs = _usage_by_bs(assignment)
    utilization: dict[int, tuple[float, float]] = {}
    for bs in network.base_stations:
        used_crus = used_crus_by_bs.get(bs.bs_id, 0)
        used_rrbs = used_rrbs_by_bs.get(bs.bs_id, 0)
        total_crus = bs.total_cru_capacity
        utilization[bs.bs_id] = (
            used_crus / total_crus if total_crus else 0.0,
            used_rrbs / bs.rrb_capacity,
        )
    return utilization


def per_service_cru_utilization(
    network: MECNetwork, assignment: Assignment
) -> dict[int, float]:
    """``{service_id: used / provisioned CRUs}`` across all hosting BSs.

    Exposes which *service* pools are scarce network-wide, independent
    of which BS hosts them; services provisioned nowhere are omitted.
    """
    capacity: dict[int, int] = {}
    for bs in network.base_stations:
        for service_id, crus in bs.cru_capacity.items():
            capacity[service_id] = capacity.get(service_id, 0) + crus
    used: dict[int, int] = {}
    for grant in assignment.grants:
        used[grant.service_id] = used.get(grant.service_id, 0) + grant.crus
    return {
        service_id: used.get(service_id, 0) / total
        for service_id, total in capacity.items()
        if total
    }


def per_sp_forwarded_traffic(
    network: MECNetwork, assignment: Assignment
) -> dict[int, float]:
    """``{sp_id: bits/s forwarded to the cloud}`` (Fig. 7, split by SP).

    Every SP appears, zero-filled, so series across runs align even
    when an SP forwards nothing.
    """
    forwarded = {sp.sp_id: 0.0 for sp in network.providers}
    for ue_id in assignment.cloud_ue_ids:
        ue = network.user_equipment(ue_id)
        forwarded[ue.sp_id] += ue.rate_demand_bps
    return forwarded
