"""Paired statistical comparison of allocation schemes.

"DMRA beats NonCo" should come with a p-value.  Because every sweep is
paired (all schemes see identical scenarios per seed), the right test is
on the per-seed *differences*: a paired t-test plus a sign count, which
is far more sensitive than comparing two independent means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from scipy import stats as scipy_stats

from repro.core.allocator import Allocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

__all__ = ["PairedComparison", "compare_allocators"]


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired comparison of two schemes on common scenarios."""

    name_a: str
    name_b: str
    values_a: tuple[float, ...]
    values_b: tuple[float, ...]
    mean_difference: float  # mean(a - b)
    t_statistic: float
    p_value: float
    wins_a: int
    wins_b: int
    ties: int

    @property
    def replication_count(self) -> int:
        return len(self.values_a)

    @property
    def significant_at_5pct(self) -> bool:
        """Whether the difference is significant at the 5% level."""
        return self.p_value < 0.05

    def summary(self) -> str:
        """One-line human-readable verdict."""
        significance = (
            "significant" if self.significant_at_5pct else "not significant"
        )
        if self.mean_difference == 0:
            return (
                f"{self.name_a} == {self.name_b} on average "
                f"({self.wins_a}-{self.ties}-{self.wins_b} W-T-L, "
                f"p={self.p_value:.4f}, {significance} at 5%)"
            )
        direction = (
            f"{self.name_a} > {self.name_b}"
            if self.mean_difference > 0
            else f"{self.name_b} > {self.name_a}"
        )
        return (
            f"{direction} by {abs(self.mean_difference):.1f} on average "
            f"({self.wins_a}-{self.ties}-{self.wins_b} W-T-L, "
            f"p={self.p_value:.4f}, {significance} at 5%)"
        )


def compare_allocators(
    config: ScenarioConfig,
    ue_count: int,
    allocator_a: Callable[[object], Allocator],
    allocator_b: Callable[[object], Allocator],
    seeds: Sequence[int],
    metric: Callable[[OutcomeMetrics], float] | None = None,
) -> PairedComparison:
    """Run two schemes on identical seeded scenarios and test the
    difference.

    ``allocator_a`` / ``allocator_b`` are factories called with each
    scenario (so pricing can be wired per scenario); ``metric`` defaults
    to total profit.
    """
    seeds = list(seeds)
    if len(seeds) < 2:
        raise ConfigurationError(
            "paired comparison needs at least 2 seeds"
        )
    if metric is None:
        metric = lambda m: m.total_profit  # noqa: E731 - tiny default

    values_a: list[float] = []
    values_b: list[float] = []
    name_a = name_b = ""
    for seed in seeds:
        scenario = build_scenario(config, ue_count, seed)
        instance_a = allocator_a(scenario)
        instance_b = allocator_b(scenario)
        name_a, name_b = instance_a.name, instance_b.name
        values_a.append(metric(run_allocation(scenario, instance_a).metrics))
        values_b.append(metric(run_allocation(scenario, instance_b).metrics))

    differences = [a - b for a, b in zip(values_a, values_b)]
    mean_difference = sum(differences) / len(differences)
    if all(d == differences[0] for d in differences):
        # Zero variance: scipy's t-test degenerates; report directly.
        t_statistic = float("inf") if differences[0] != 0 else 0.0
        p_value = 0.0 if differences[0] != 0 else 1.0
    else:
        t_statistic, p_value = scipy_stats.ttest_rel(values_a, values_b)
        t_statistic = float(t_statistic)
        p_value = float(p_value)

    return PairedComparison(
        name_a=name_a,
        name_b=name_b,
        values_a=tuple(values_a),
        values_b=tuple(values_b),
        mean_difference=mean_difference,
        t_statistic=t_statistic,
        p_value=p_value,
        wins_a=sum(1 for d in differences if d > 0),
        wins_b=sum(1 for d in differences if d < 0),
        ties=sum(1 for d in differences if d == 0),
    )
