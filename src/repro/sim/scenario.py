"""Scenario construction: config + seed -> network + radio map.

A :class:`Scenario` is the unit every allocator run consumes.  Building
one is deterministic: the same ``(config, ue_count, seed)`` triple always
yields byte-identical entity populations, which is what makes sweeps and
cross-algorithm comparisons paired (all schemes see the same draw).

Determinism also makes scenarios **shareable**: DMRA, DCSP, and every
baseline evaluated on the same grid cell consume the same immutable
:class:`Scenario`, so :func:`build_scenario_cached` keeps a small LRU
keyed by ``(config, ue_count, seed)`` (the config is a frozen, hashable
dataclass) and multi-scheme comparisons, repeated sweeps, and rho grids
pay for each build exactly once per process.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.econ.pricing import PaperPricing
from repro.econ.tariffs import validate_tariffs
from repro.model.entities import BaseStation, ServiceProvider
from repro.model.geometry import Rectangle
from repro.model.network import MECNetwork
from repro.model.placement import make_placement, scatter_ues
from repro.model.workload import generate_user_equipments
from repro.radio.channel import RadioMap, build_radio_map
from repro.radio.ofdma import rrb_budget
from repro.sim.config import ScenarioConfig

__all__ = [
    "Scenario",
    "build_scenario",
    "build_scenario_cached",
    "clear_scenario_cache",
    "estimate_scenario_bytes",
    "scenario_cache_info",
]


@dataclass(frozen=True)
class Scenario:
    """A fully materialized simulation instance."""

    config: ScenarioConfig
    network: MECNetwork
    radio_map: RadioMap
    seed: int

    @property
    def pricing(self) -> PaperPricing:
        """The Eq. 9--10 pricing implied by the config."""
        return PaperPricing(
            base_price=self.config.base_price,
            cross_sp_markup=self.config.cross_sp_markup,
            distance_weight=self.config.distance_weight,
        )

    @property
    def ue_count(self) -> int:
        return self.network.ue_count


def build_scenario(
    config: ScenarioConfig, ue_count: int, seed: int
) -> Scenario:
    """Materialize a scenario from a config, UE population size, and seed.

    Construction order (fixed, so seeds stay comparable across configs):
    SPs, BS positions, per-BS service hosting, UE positions, UE demands.
    Tariffs are validated against Eq. 16 before returning.
    """
    rng = np.random.default_rng(seed)
    region = Rectangle.square(config.region_side_m)

    providers = [
        ServiceProvider(
            sp_id=k,
            name=f"SP-{k}",
            cru_price=config.cru_price_of_sp(k),
            other_cost=config.sp_other_cost,
        )
        for k in range(config.sp_count)
    ]

    placement_kwargs: dict[str, float] = {}
    if config.placement == "regular":
        placement_kwargs["inter_site_distance_m"] = config.inter_site_distance_m
    strategy = make_placement(config.placement, **placement_kwargs)
    positions = strategy.place(region, config.bs_count, rng)

    catalog = config.service_catalog()
    services = catalog.build_services()
    rrbs = rrb_budget(config.uplink_bandwidth_hz, config.rrb_bandwidth_hz)
    ownership = config.bs_ownership()
    base_stations = [
        BaseStation(
            bs_id=index,
            sp_id=ownership[index],  # interleaved for spatial mixing
            position=position,
            cru_capacity=catalog.sample_hosting(rng),
            rrb_capacity=rrbs,
            uplink_bandwidth_hz=config.uplink_bandwidth_hz,
        )
        for index, position in enumerate(positions)
    ]

    ue_positions = scatter_ues(region, ue_count, rng)
    user_equipments = generate_user_equipments(
        positions=ue_positions,
        sp_count=config.sp_count,
        service_count=config.service_count,
        workload=config.workload_model(),
        rng=rng,
    )

    network = MECNetwork(
        providers=providers,
        base_stations=base_stations,
        user_equipments=user_equipments,
        services=services,
        region=region,
        coverage_radius_m=config.coverage_radius_m,
    )

    radio_map = build_radio_map(
        network, config.link_budget(), rate_model=config.rate_model_fn()
    )

    pricing = PaperPricing(
        base_price=config.base_price,
        cross_sp_markup=config.cross_sp_markup,
        distance_weight=config.distance_weight,
    )
    validate_tariffs(providers, pricing, config.coverage_radius_m)

    return Scenario(
        config=config, network=network, radio_map=radio_map, seed=seed
    )


# ----------------------------------------------------------------------
# Shared scenario cache
# ----------------------------------------------------------------------

_CacheKey = tuple[ScenarioConfig, int, int]
# Each entry keeps the scenario plus its estimated byte footprint, so
# eviction can bound total *memory*, not just the entry count.
_SCENARIO_CACHE: OrderedDict[_CacheKey, tuple[Scenario, int]] = OrderedDict()
_CACHE_STATS = {"hits": 0, "misses": 0}
_CACHE_BYTES = {"total": 0}

#: Default memory bound of the scenario cache, in megabytes.
_DEFAULT_CACHE_MB = 1024

#: Fixed per-entity byte estimates (Python object + dataclass overhead)
#: used when sizing a scenario; deliberately coarse but monotone in the
#: population sizes, which is what bounding needs.
_UE_BYTES = 200
_BS_BYTES = 600


def _cache_capacity() -> int:
    """Max cached scenarios (``DMRA_SCENARIO_CACHE``, default 32, 0 = off)."""
    raw = os.environ.get("DMRA_SCENARIO_CACHE", "")
    try:
        return int(raw) if raw else 32
    except ValueError:
        return 32


def _cache_byte_capacity() -> int:
    """Max total estimated bytes (``DMRA_SCENARIO_CACHE_MB``).

    Defaults to 1024 MB; ``0`` (or a negative value) disables the byte
    bound, leaving only the entry-count bound.  Invalid values fall
    back to the default.
    """
    raw = os.environ.get("DMRA_SCENARIO_CACHE_MB", "")
    try:
        mb = int(raw) if raw else _DEFAULT_CACHE_MB
    except ValueError:
        mb = _DEFAULT_CACHE_MB
    return mb * 1024 * 1024 if mb > 0 else 0


def estimate_scenario_bytes(scenario: Scenario) -> int:
    """Estimated resident bytes of one scenario.

    Dominated by the network's geometry arrays (the dense distance
    matrix at small scale, the sparse coverage pairs in grid mode) and
    the radio map's per-link columns; entity objects are charged a flat
    per-UE/per-BS overhead.  At 100k UEs a dense-mode scenario is
    hundreds of megabytes, which is why the cache bounds bytes rather
    than entry count alone.
    """
    network = scenario.network
    return int(
        network.estimated_geometry_bytes()
        + scenario.radio_map.estimated_bytes()
        + network.ue_count * _UE_BYTES
        + network.bs_count * _BS_BYTES
    )


def build_scenario_cached(
    config: ScenarioConfig, ue_count: int, seed: int
) -> Scenario:
    """Like :func:`build_scenario`, but memoized per process.

    Scenarios are immutable, so every caller of the same
    ``(config, ue_count, seed)`` triple — e.g. all allocators of one
    sweep cell, or every rho grid point of one seed — can share one
    instance.  The LRU is bounded two ways: by entry count
    (``DMRA_SCENARIO_CACHE``, default 32) and by total *estimated
    bytes* (``DMRA_SCENARIO_CACHE_MB``, default 1024 MB), so a handful
    of 100k-UE scenarios cannot pin gigabytes the way a pure
    entry-count bound would.  A single scenario larger than the whole
    byte budget is returned uncached.  Forked sweep workers inherit a
    snapshot and fill their own copies independently.
    """
    capacity = _cache_capacity()
    if capacity <= 0:
        return build_scenario(config, ue_count, seed)
    key = (config, int(ue_count), int(seed))
    cached = _SCENARIO_CACHE.get(key)
    if cached is not None:
        _SCENARIO_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return cached[0]
    _CACHE_STATS["misses"] += 1
    scenario = build_scenario(config, ue_count, seed)
    size = estimate_scenario_bytes(scenario)
    byte_capacity = _cache_byte_capacity()
    if byte_capacity and size > byte_capacity:
        # Larger than the entire budget: caching it would just evict
        # everything else and still bust the bound.
        return scenario
    _SCENARIO_CACHE[key] = (scenario, size)
    _CACHE_BYTES["total"] += size
    while len(_SCENARIO_CACHE) > capacity or (
        byte_capacity
        and _CACHE_BYTES["total"] > byte_capacity
        and len(_SCENARIO_CACHE) > 1
    ):
        _, (_, evicted_size) = _SCENARIO_CACHE.popitem(last=False)
        _CACHE_BYTES["total"] -= evicted_size
    return scenario


def clear_scenario_cache() -> None:
    """Drop all cached scenarios and reset the hit/miss counters."""
    _SCENARIO_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0
    _CACHE_BYTES["total"] = 0


def scenario_cache_info() -> dict[str, int]:
    """Current cache occupancy, byte footprint, and hit/miss counters."""
    return {
        "size": len(_SCENARIO_CACHE),
        "capacity": _cache_capacity(),
        "bytes": _CACHE_BYTES["total"],
        "byte_capacity": _cache_byte_capacity(),
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
    }
