"""Scenario configuration with the paper's §VI.A defaults.

Every knob of the simulated system is gathered in one frozen dataclass
so a scenario is fully described by ``(config, ue_count, seed)``.  The
``paper()`` constructor yields exactly the published setup; experiments
derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compute.catalog import ServiceCatalog
from repro.errors import ConfigurationError
from repro.model.workload import WorkloadModel

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """All parameters of a multi-SP MEC scenario.

    Defaults reproduce the paper's simulation setup; see DESIGN.md §3 for
    the handful of constants the paper leaves unstated.
    """

    # --- population -----------------------------------------------------
    sp_count: int = 5
    bs_per_sp: int = 5
    # Optional per-SP fleet sizes (asymmetric operators).  None (the
    # paper) means every SP deploys ``bs_per_sp`` BSs; otherwise one
    # entry per SP overrides ``bs_per_sp`` entirely.
    sp_bs_counts: tuple[int, ...] | None = None
    service_count: int = 6

    # --- geometry -------------------------------------------------------
    region_side_m: float = 1200.0
    placement: str = "regular"  # "regular" | "random" | "clustered"
    inter_site_distance_m: float = 300.0
    coverage_radius_m: float = 500.0

    # --- compute resources ----------------------------------------------
    cru_capacity_min: int = 100
    cru_capacity_max: int = 150
    hosted_fraction: float = 1.0

    # --- radio ----------------------------------------------------------
    uplink_bandwidth_hz: float = 10e6
    rrb_bandwidth_hz: float = 180e3
    tx_power_dbm: float = 10.0
    noise_dbm: float = -170.0  # per-RRB noise power (paper: "-170dBm")
    rate_model: str = "shannon"  # "shannon" (Eq. 2) | "mcs" (CQI table)
    # Optional flat co-channel interference floor at the BS receivers
    # (dBm).  None (the paper's implicit setting) means noise-limited.
    interference_floor_dbm: float | None = None

    # --- workload -------------------------------------------------------
    cru_demand_min: int = 3
    cru_demand_max: int = 5
    rate_demand_min_bps: float = 2e6
    rate_demand_max_bps: float = 6e6
    # Optional per-service request weights; None = uniform (the paper).
    service_popularity: tuple[float, ...] | None = None

    # --- economics ------------------------------------------------------
    base_price: float = 1.0  # b
    cross_sp_markup: float = 2.0  # iota
    distance_weight: float = 0.01  # sigma (price per meter weight)
    sp_cru_price: float = 10.0  # m_k
    sp_other_cost: float = 0.5  # m_k^o
    # Optional per-SP subscriber prices (heterogeneous tariffs); None
    # (the paper) applies ``sp_cru_price`` uniformly.
    sp_cru_prices: tuple[float, ...] | None = None

    # --- algorithm ------------------------------------------------------
    rho: float = 10.0

    def __post_init__(self) -> None:
        if self.sp_count <= 0:
            raise ConfigurationError(f"sp_count must be > 0, got {self.sp_count}")
        if self.bs_per_sp <= 0:
            raise ConfigurationError(
                f"bs_per_sp must be > 0, got {self.bs_per_sp}"
            )
        if self.placement not in ("regular", "random", "clustered"):
            raise ConfigurationError(
                f"unknown placement {self.placement!r}"
            )
        if self.coverage_radius_m <= 0:
            raise ConfigurationError(
                f"coverage_radius_m must be > 0, got {self.coverage_radius_m}"
            )
        if self.rho < 0:
            raise ConfigurationError(f"rho must be >= 0, got {self.rho}")
        if self.rate_model not in ("shannon", "mcs"):
            raise ConfigurationError(
                f"unknown rate_model {self.rate_model!r}; "
                f"expected 'shannon' or 'mcs'"
            )
        if self.sp_bs_counts is not None:
            if len(self.sp_bs_counts) != self.sp_count:
                raise ConfigurationError(
                    f"sp_bs_counts has {len(self.sp_bs_counts)} entries "
                    f"for {self.sp_count} SPs"
                )
            if any(count <= 0 for count in self.sp_bs_counts):
                raise ConfigurationError(
                    f"every SP must deploy >= 1 BS, got {self.sp_bs_counts}"
                )
        if self.sp_cru_prices is not None and (
            len(self.sp_cru_prices) != self.sp_count
        ):
            raise ConfigurationError(
                f"sp_cru_prices has {len(self.sp_cru_prices)} entries "
                f"for {self.sp_count} SPs"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "ScenarioConfig":
        """The published setup; keyword overrides tweak single knobs."""
        return cls(**overrides)

    def with_(self, **overrides) -> "ScenarioConfig":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Derived pieces
    # ------------------------------------------------------------------

    @property
    def bs_count(self) -> int:
        if self.sp_bs_counts is not None:
            return sum(self.sp_bs_counts)
        return self.sp_count * self.bs_per_sp

    def bs_ownership(self) -> tuple[int, ...]:
        """SP id for each BS index, interleaved for spatial mixing.

        Symmetric fleets cycle ``0, 1, ..., sp_count-1`` (the paper's
        layout); asymmetric fleets interleave each SP's BSs at evenly
        spaced fractional positions so a big operator's sites spread
        across the region instead of clumping at low indices.
        """
        if self.sp_bs_counts is None:
            return tuple(
                index % self.sp_count for index in range(self.bs_count)
            )
        slots: list[tuple[float, int, int]] = []
        for sp_id, count in enumerate(self.sp_bs_counts):
            for j in range(count):
                slots.append(((j + 0.5) / count, sp_id, j))
        slots.sort()
        return tuple(sp_id for _, sp_id, _ in slots)

    def workload_model(self) -> WorkloadModel:
        """The UE demand distributions implied by this config."""
        return WorkloadModel(
            cru_demand_min=self.cru_demand_min,
            cru_demand_max=self.cru_demand_max,
            rate_demand_min_bps=self.rate_demand_min_bps,
            rate_demand_max_bps=self.rate_demand_max_bps,
            tx_power_dbm=self.tx_power_dbm,
            service_popularity=self.service_popularity,
        )

    def cru_price_of_sp(self, sp_id: int) -> float:
        """``m_k`` for one SP (heterogeneous tariffs when configured)."""
        if self.sp_cru_prices is not None:
            return self.sp_cru_prices[sp_id]
        return self.sp_cru_price

    def link_budget(self):
        """The :class:`~repro.radio.sinr.LinkBudget` this config implies."""
        from repro.radio.interference import (
            ConstantInterference,
            NoInterference,
        )
        from repro.radio.sinr import LinkBudget

        interference = (
            NoInterference()
            if self.interference_floor_dbm is None
            else ConstantInterference(
                floor_dbm=self.interference_floor_dbm
            )
        )
        return LinkBudget(
            interference=interference,
            noise_dbm=self.noise_dbm,
            rrb_bandwidth_hz=self.rrb_bandwidth_hz,
        )

    def rate_model_fn(self):
        """The per-RRB rate function this config selects."""
        if self.rate_model == "mcs":
            from repro.radio.mcs import mcs_rate_bps

            return mcs_rate_bps
        from repro.radio.ofdma import per_rrb_rate_bps

        return per_rrb_rate_bps

    def service_catalog(self) -> ServiceCatalog:
        """The service/CRU-capacity sampler implied by this config."""
        return ServiceCatalog(
            service_count=self.service_count,
            cru_capacity_min=self.cru_capacity_min,
            cru_capacity_max=self.cru_capacity_max,
            hosted_fraction=self.hosted_fraction,
        )
