"""Simulation harness: config, scenarios, runner, metrics, sweeps."""

from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics, compute_metrics
from repro.sim.persistence import load_assignment, save_assignment
from repro.sim.results import Aggregate, Series, SeriesPoint, aggregate
from repro.sim.runner import AllocationOutcome, run_allocation
from repro.sim.scenario import Scenario, build_scenario
from repro.sim.stats import PairedComparison, compare_allocators
from repro.sim.sweep import (
    SweepResult,
    SweepSpec,
    rho_sweep,
    run_sweep,
    ue_count_sweep,
)

__all__ = [
    "Aggregate",
    "AllocationOutcome",
    "OutcomeMetrics",
    "PairedComparison",
    "Scenario",
    "ScenarioConfig",
    "Series",
    "SeriesPoint",
    "SweepResult",
    "SweepSpec",
    "aggregate",
    "build_scenario",
    "compare_allocators",
    "compute_metrics",
    "load_assignment",
    "rho_sweep",
    "run_allocation",
    "run_sweep",
    "save_assignment",
    "ue_count_sweep",
]
