"""Running allocators on scenarios.

:func:`run_allocation` is the one funnel every experiment goes through:
it executes an allocator, *always* re-validates the returned assignment
against the TPM constraints (a misbehaving scheme fails loudly instead
of polluting results), and evaluates the metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.allocator import Allocator
from repro.core.assignment import Assignment
from repro.sim.metrics import OutcomeMetrics, compute_metrics
from repro.sim.scenario import Scenario

__all__ = ["AllocationOutcome", "run_allocation"]


@dataclass(frozen=True)
class AllocationOutcome:
    """Result of one allocator run on one scenario."""

    allocator_name: str
    scenario_seed: int
    ue_count: int
    assignment: Assignment
    metrics: OutcomeMetrics
    wall_time_s: float


def run_allocation(
    scenario: Scenario, allocator: Allocator, validate: bool = True
) -> AllocationOutcome:
    """Execute ``allocator`` on ``scenario`` and evaluate the outcome.

    ``validate=False`` skips the constraint re-check; only the
    micro-benchmarks measuring raw algorithm time use that.
    """
    start = time.perf_counter()
    assignment = allocator.allocate(scenario.network, scenario.radio_map)
    elapsed = time.perf_counter() - start
    if validate:
        assignment.validate(scenario.network, scenario.radio_map)
    metrics = compute_metrics(scenario.network, assignment, scenario.pricing)
    return AllocationOutcome(
        allocator_name=allocator.name,
        scenario_seed=scenario.seed,
        ue_count=scenario.ue_count,
        assignment=assignment,
        metrics=metrics,
        wall_time_s=elapsed,
    )
