"""Replication aggregation: means, standard deviations, confidence bands.

The paper plots single curves; we run several seeded replications per
point and report the mean with a normal-approximation 95% confidence
half-width, so shape claims in EXPERIMENTS.md rest on more than one
draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["Aggregate", "aggregate", "SeriesPoint", "Series"]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Summary statistics of one metric over replications."""

    mean: float
    std: float
    count: int
    ci95_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_half_width


def aggregate(values: Iterable[float]) -> Aggregate:
    """Mean / sample std / 95% CI half-width of a sample."""
    data = list(values)
    if not data:
        raise ConfigurationError("cannot aggregate an empty sample")
    count = len(data)
    mean = sum(data) / count
    if count == 1:
        return Aggregate(mean=mean, std=0.0, count=1, ci95_half_width=0.0)
    variance = sum((x - mean) ** 2 for x in data) / (count - 1)
    std = math.sqrt(variance)
    half_width = 1.96 * std / math.sqrt(count)
    return Aggregate(mean=mean, std=std, count=count, ci95_half_width=half_width)


@dataclass(frozen=True, slots=True)
class SeriesPoint:
    """One x-position of a result series."""

    x: float
    value: Aggregate


@dataclass(frozen=True)
class Series:
    """A named curve: what one line in a paper figure is made of."""

    label: str
    points: tuple[SeriesPoint, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    @property
    def xs(self) -> tuple[float, ...]:
        return tuple(p.x for p in self.points)

    @property
    def means(self) -> tuple[float, ...]:
        return tuple(p.value.mean for p in self.points)

    def value_at(self, x: float) -> Aggregate:
        """The aggregate at grid position ``x`` (exact match required)."""
        for point in self.points:
            if point.x == x:
                return point.value
        raise ConfigurationError(f"series {self.label!r} has no point at x={x}")

    @staticmethod
    def from_samples(
        label: str, samples: Sequence[tuple[float, Sequence[float]]]
    ) -> "Series":
        """Build a series from ``[(x, [replication values...]), ...]``."""
        return Series(
            label=label,
            points=tuple(
                SeriesPoint(x=float(x), value=aggregate(values))
                for x, values in samples
            ),
        )
