"""Persistence: save and reload allocation results as JSON.

Experiments that take minutes to sweep should not have to re-run to be
re-analyzed.  An :class:`~repro.core.assignment.Assignment` (plus enough
context to validate it later) serializes to a stable, human-diffable
JSON document; loading re-validates against the scenario rebuilt from
the stored ``(config, ue_count, seed)`` triple, so a stale file that no
longer matches the code fails loudly instead of silently mis-reporting.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.compute.cru import Grant
from repro.core.assignment import Assignment
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["save_assignment", "load_assignment"]

_FORMAT_VERSION = 1


def save_assignment(
    path: str | Path, scenario: Scenario, assignment: Assignment
) -> Path:
    """Write an assignment plus its scenario coordinates to JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    config_dict = dataclasses.asdict(scenario.config)
    # Tuples JSON-ify to lists; normalize None popularity explicitly.
    document = {
        "format_version": _FORMAT_VERSION,
        "config": config_dict,
        "ue_count": scenario.ue_count,
        "seed": scenario.seed,
        "rounds": assignment.rounds,
        "grants": [
            {
                "bs_id": g.bs_id,
                "ue_id": g.ue_id,
                "service_id": g.service_id,
                "crus": g.crus,
                "rrbs": g.rrbs,
            }
            for g in sorted(assignment.grants, key=lambda g: g.ue_id)
        ],
        "cloud_ue_ids": sorted(assignment.cloud_ue_ids),
    }
    target.write_text(json.dumps(document, indent=2, sort_keys=True))
    return target


def load_assignment(
    path: str | Path, validate: bool = True
) -> tuple[Scenario, Assignment]:
    """Rebuild the scenario and assignment stored by :func:`save_assignment`.

    With ``validate=True`` (default) the assignment is re-checked
    against the freshly rebuilt scenario, which catches both corrupted
    files and semantic drift (e.g. a changed scenario-generation order
    that makes old grants meaningless).
    """
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read {source}: {exc}") from exc
    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"{source}: unsupported format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    config_dict = dict(document["config"])
    popularity = config_dict.get("service_popularity")
    if popularity is not None:
        config_dict["service_popularity"] = tuple(popularity)
    config = ScenarioConfig(**config_dict)
    scenario = build_scenario(
        config, ue_count=int(document["ue_count"]), seed=int(document["seed"])
    )
    assignment = Assignment(
        grants=tuple(
            Grant(
                bs_id=int(entry["bs_id"]),
                ue_id=int(entry["ue_id"]),
                service_id=int(entry["service_id"]),
                crus=int(entry["crus"]),
                rrbs=int(entry["rrbs"]),
            )
            for entry in document["grants"]
        ),
        cloud_ue_ids=frozenset(
            int(ue_id) for ue_id in document["cloud_ue_ids"]
        ),
        rounds=int(document.get("rounds", 0)),
    )
    if validate:
        assignment.validate(scenario.network, scenario.radio_map)
    return scenario, assignment
