"""Parameter sweeps: the engine behind every figure reproduction.

A sweep runs a set of allocators over a grid of x-values (UE counts,
``rho`` values, ...) with several seeded replications per point.  All
allocators see *identical* scenarios per (x, seed) pair — paired
comparisons, so "DMRA beats DCSP" is never an artifact of different
random draws.

Sweeps parallelize over grid cells: each (x, seed) cell is independent
(it builds its own scenario and runs every allocator on it), so
:func:`run_sweep` can fan cells out to a process pool.  ``workers=1``
(the default) keeps the fully serial path; ``workers=N`` uses a
fork-based pool — specs hold closures, which never survive pickling, so
workers inherit the spec by forking and receive only cell indices.  The
pool maps cells in grid order, making results identical to the serial
path bit for bit, including the paired-seed structure.  The
``DMRA_SWEEP_WORKERS`` environment variable supplies the default worker
count; platforms without ``fork`` fall back to serial execution.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.allocator import Allocator
from repro.errors import ConfigurationError
from repro.obs.telemetry import Recorder, get_telemetry, telemetry_session
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics
from repro.sim.results import Series
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario, build_scenario_cached

__all__ = ["SweepSpec", "SweepResult", "run_sweep", "ue_count_sweep", "rho_sweep"]

MetricExtractor = Callable[[OutcomeMetrics], float]
AllocatorFactory = Callable[[float], Allocator]
ScenarioFactory = Callable[[float, int], Scenario]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one sweep.

    ``scenario_factory(x, seed)`` builds the scenario at grid point ``x``;
    ``allocator_factories`` maps a curve label to a factory called as
    ``factory(x)`` (so algorithm parameters may track the x-axis, as in
    the ``rho`` sweeps); ``metric`` extracts the plotted value.
    """

    xs: tuple[float, ...]
    seeds: tuple[int, ...]
    scenario_factory: ScenarioFactory
    allocator_factories: Mapping[str, AllocatorFactory]
    metric: MetricExtractor

    def __post_init__(self) -> None:
        if not self.xs:
            raise ConfigurationError("sweep needs at least one x value")
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        if not self.allocator_factories:
            raise ConfigurationError("sweep needs at least one allocator")


@dataclass(frozen=True)
class SweepResult:
    """All series produced by one sweep, keyed by curve label."""

    series: Mapping[str, Series]

    def labels(self) -> tuple[str, ...]:
        """The curve labels, in insertion order."""
        return tuple(self.series)

    def __getitem__(self, label: str) -> Series:
        return self.series[label]


# Spec of the sweep currently fanning out, inherited by forked workers.
# Closures in SweepSpec (scenario/allocator factories) cannot be
# pickled, so workers get the spec via fork semantics and the pool only
# ever ships integer cell indices.
_ACTIVE_SPEC: SweepSpec | None = None


def _run_cell(cell: tuple[int, int]) -> tuple[list[float], Recorder | None]:
    """Run one (x, seed) grid cell: every allocator on one scenario.

    When telemetry is enabled, the cell records into a child recorder
    (sharing the parent's epoch, which forked workers inherit) and ships
    it back alongside the metric values; :func:`run_sweep` grafts the
    children into one merged trace in grid order, so the span tree is
    identical at any worker count.
    """
    spec = _ACTIVE_SPEC
    assert spec is not None
    x = spec.xs[cell[0]]
    seed = spec.seeds[cell[1]]
    tel = get_telemetry()
    if not tel.enabled:
        scenario = spec.scenario_factory(x, seed)
        values = [
            spec.metric(run_allocation(scenario, factory(x)).metrics)
            for factory in spec.allocator_factories.values()
        ]
        return values, None
    child = tel.child()
    with telemetry_session(child):
        with child.span("sweep.cell", x=x, seed=seed) as cell_span:
            scenario = spec.scenario_factory(x, seed)
            values = [
                spec.metric(run_allocation(scenario, factory(x)).metrics)
                for factory in spec.allocator_factories.values()
            ]
            # One gauge per curve: min/max/last across absorbed cells
            # summarize the whole grid in the merged trace.
            for label, value in zip(spec.allocator_factories, values):
                child.gauge(f"sweep.metric.{label}", value)
            cell_span.set(
                **{
                    f"value_{label}": value
                    for label, value in zip(spec.allocator_factories, values)
                }
            )
    return values, child


def _resolve_workers(workers: int | None) -> int:
    """Explicit argument, else ``DMRA_SWEEP_WORKERS``, else serial."""
    if workers is None:
        raw = os.environ.get("DMRA_SWEEP_WORKERS", "")
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            raise ConfigurationError(
                f"DMRA_SWEEP_WORKERS must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def run_sweep(spec: SweepSpec, workers: int | None = None) -> SweepResult:
    """Execute a sweep: scenarios are built once per (x, seed) and shared.

    ``workers`` > 1 distributes grid cells over a fork-based process
    pool (see the module docstring); results are identical to the
    serial path in value and order.
    """
    global _ACTIVE_SPEC
    workers = _resolve_workers(workers)
    cells = [
        (x_idx, seed_idx)
        for x_idx in range(len(spec.xs))
        for seed_idx in range(len(spec.seeds))
    ]
    tel = get_telemetry()
    _ACTIVE_SPEC = spec
    try:
        with tel.span(
            "sweep",
            cells=len(cells),
            workers=workers,
            curves=len(spec.allocator_factories),
        ):
            if workers > 1 and len(cells) > 1 and _fork_available():
                ctx = multiprocessing.get_context("fork")
                with ctx.Pool(processes=min(workers, len(cells))) as pool:
                    results = pool.map(_run_cell, cells)
            else:
                results = [_run_cell(cell) for cell in cells]
            rows = []
            for values, cell_recorder in results:
                rows.append(values)
                if cell_recorder is not None and tel.enabled:
                    tel.absorb(cell_recorder)
    finally:
        _ACTIVE_SPEC = None

    labels = list(spec.allocator_factories)
    samples: dict[str, list[tuple[float, list[float]]]] = {
        label: [] for label in labels
    }
    n_seeds = len(spec.seeds)
    for x_idx, x in enumerate(spec.xs):
        point_rows = rows[x_idx * n_seeds : (x_idx + 1) * n_seeds]
        for j, label in enumerate(labels):
            samples[label].append((x, [row[j] for row in point_rows]))
    return SweepResult(
        series={
            label: Series.from_samples(label, data)
            for label, data in samples.items()
        }
    )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def ue_count_sweep(
    config: ScenarioConfig,
    ue_counts: Sequence[int],
    seeds: Sequence[int],
    allocator_factories: Mapping[str, AllocatorFactory],
    metric: MetricExtractor,
    workers: int | None = None,
) -> SweepResult:
    """Sweep the UE population size (the x-axis of Figs. 2--5).

    Scenarios come from the shared LRU cache, so re-running the sweep
    (or another sweep touching the same grid cells) in one process
    reuses the already-built networks and radio maps.
    """
    spec = SweepSpec(
        xs=tuple(float(n) for n in ue_counts),
        seeds=tuple(seeds),
        scenario_factory=lambda x, seed: build_scenario_cached(
            config, int(x), seed
        ),
        allocator_factories=allocator_factories,
        metric=metric,
    )
    return run_sweep(spec, workers=workers)


def rho_sweep(
    config: ScenarioConfig,
    rhos: Sequence[float],
    ue_count: int,
    seeds: Sequence[int],
    allocator_factory: Callable[[float], Allocator],
    metric: MetricExtractor,
    label: str = "dmra",
    workers: int | None = None,
) -> SweepResult:
    """Sweep DMRA's ``rho`` at a fixed UE count (Figs. 6--7).

    The scenario depends only on the seed; ``rho`` reaches the allocator
    through the factory, so all grid points share identical scenarios —
    served by the process-wide scenario cache (parallel workers each
    fill their own inherited copy).
    """

    def cached_scenario(x: float, seed: int) -> Scenario:
        return build_scenario_cached(config, ue_count, seed)

    spec = SweepSpec(
        xs=tuple(float(r) for r in rhos),
        seeds=tuple(seeds),
        scenario_factory=cached_scenario,
        allocator_factories={label: allocator_factory},
        metric=metric,
    )
    return run_sweep(spec, workers=workers)
