"""Parameter sweeps: the engine behind every figure reproduction.

A sweep runs a set of allocators over a grid of x-values (UE counts,
``rho`` values, ...) with several seeded replications per point.  All
allocators see *identical* scenarios per (x, seed) pair — paired
comparisons, so "DMRA beats DCSP" is never an artifact of different
random draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.allocator import Allocator
from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.sim.metrics import OutcomeMetrics
from repro.sim.results import Series
from repro.sim.runner import run_allocation
from repro.sim.scenario import Scenario, build_scenario

__all__ = ["SweepSpec", "SweepResult", "run_sweep", "ue_count_sweep", "rho_sweep"]

MetricExtractor = Callable[[OutcomeMetrics], float]
AllocatorFactory = Callable[[float], Allocator]
ScenarioFactory = Callable[[float, int], Scenario]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one sweep.

    ``scenario_factory(x, seed)`` builds the scenario at grid point ``x``;
    ``allocator_factories`` maps a curve label to a factory called as
    ``factory(x)`` (so algorithm parameters may track the x-axis, as in
    the ``rho`` sweeps); ``metric`` extracts the plotted value.
    """

    xs: tuple[float, ...]
    seeds: tuple[int, ...]
    scenario_factory: ScenarioFactory
    allocator_factories: Mapping[str, AllocatorFactory]
    metric: MetricExtractor

    def __post_init__(self) -> None:
        if not self.xs:
            raise ConfigurationError("sweep needs at least one x value")
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        if not self.allocator_factories:
            raise ConfigurationError("sweep needs at least one allocator")


@dataclass(frozen=True)
class SweepResult:
    """All series produced by one sweep, keyed by curve label."""

    series: Mapping[str, Series]

    def labels(self) -> tuple[str, ...]:
        """The curve labels, in insertion order."""
        return tuple(self.series)

    def __getitem__(self, label: str) -> Series:
        return self.series[label]


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute a sweep: scenarios are built once per (x, seed) and shared."""
    samples: dict[str, list[tuple[float, list[float]]]] = {
        label: [] for label in spec.allocator_factories
    }
    for x in spec.xs:
        per_label: dict[str, list[float]] = {
            label: [] for label in spec.allocator_factories
        }
        for seed in spec.seeds:
            scenario = spec.scenario_factory(x, seed)
            for label, factory in spec.allocator_factories.items():
                outcome = run_allocation(scenario, factory(x))
                per_label[label].append(spec.metric(outcome.metrics))
        for label, values in per_label.items():
            samples[label].append((x, values))
    return SweepResult(
        series={
            label: Series.from_samples(label, data)
            for label, data in samples.items()
        }
    )


def ue_count_sweep(
    config: ScenarioConfig,
    ue_counts: Sequence[int],
    seeds: Sequence[int],
    allocator_factories: Mapping[str, AllocatorFactory],
    metric: MetricExtractor,
) -> SweepResult:
    """Sweep the UE population size (the x-axis of Figs. 2--5)."""
    spec = SweepSpec(
        xs=tuple(float(n) for n in ue_counts),
        seeds=tuple(seeds),
        scenario_factory=lambda x, seed: build_scenario(config, int(x), seed),
        allocator_factories=allocator_factories,
        metric=metric,
    )
    return run_sweep(spec)


def rho_sweep(
    config: ScenarioConfig,
    rhos: Sequence[float],
    ue_count: int,
    seeds: Sequence[int],
    allocator_factory: Callable[[float], Allocator],
    metric: MetricExtractor,
    label: str = "dmra",
) -> SweepResult:
    """Sweep DMRA's ``rho`` at a fixed UE count (Figs. 6--7).

    The scenario depends only on the seed; ``rho`` reaches the allocator
    through the factory, so all grid points share identical scenarios
    (built once per seed and cached).
    """
    cache: dict[int, Scenario] = {}

    def cached_scenario(x: float, seed: int) -> Scenario:
        if seed not in cache:
            cache[seed] = build_scenario(config, ue_count, seed)
        return cache[seed]

    spec = SweepSpec(
        xs=tuple(float(r) for r in rhos),
        seeds=tuple(seeds),
        scenario_factory=cached_scenario,
        allocator_factories={label: allocator_factory},
        metric=metric,
    )
    return run_sweep(spec)
