"""SP tariff validation: the profitability constraint of Eq. 16.

The paper requires ``m_k > p_{i,u} + m_k^o`` for every SP ``k`` and every
feasible link — serving a subscriber at the edge must always net the SP a
positive margin.  :func:`validate_tariffs` checks the constraint for a
whole scenario at once using the pricing policy's worst-case price over
the coverage radius.
"""

from __future__ import annotations

from typing import Iterable

from repro.econ.pricing import PricingPolicy
from repro.errors import TariffViolationError
from repro.model.entities import ServiceProvider

__all__ = ["validate_tariffs", "max_margin"]


def validate_tariffs(
    providers: Iterable[ServiceProvider],
    pricing: PricingPolicy,
    max_distance_m: float,
) -> None:
    """Raise :class:`TariffViolationError` unless Eq. 16 holds for all SPs.

    ``max_distance_m`` should be the coverage radius: no realized link can
    be longer, so the worst-case BS price occurs there.
    """
    worst_price = pricing.max_price(max_distance_m)
    for sp in providers:
        if sp.cru_price <= worst_price + sp.other_cost:
            raise TariffViolationError(
                f"SP {sp.sp_id}: m_k={sp.cru_price} must exceed "
                f"worst-case p_iu + m_k^o = {worst_price} + {sp.other_cost} "
                f"= {worst_price + sp.other_cost} (Eq. 16)"
            )


def max_margin(sp: ServiceProvider, price_per_cru: float) -> float:
    """Per-CRU margin ``m_k - m_k^o - p_{i,u}`` for one realized link."""
    return sp.cru_price - sp.other_cost - price_per_cru
