"""Economics substrate: pricing, tariff validation, profit accounting."""

from repro.econ.accounting import (
    ProfitStatement,
    SPProfit,
    compute_profit,
    marginal_profit,
)
from repro.econ.pricing import FlatPricing, PaperPricing, PricingPolicy
from repro.econ.tariffs import max_margin, validate_tariffs

__all__ = [
    "FlatPricing",
    "PaperPricing",
    "PricingPolicy",
    "ProfitStatement",
    "SPProfit",
    "compute_profit",
    "marginal_profit",
    "max_margin",
    "validate_tariffs",
]
