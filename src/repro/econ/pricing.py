"""BS pricing: the paper's dual-rate distance-dependent CRU price.

Eqs. 9--10 set the price per CRU that BS ``i`` charges for serving UE
``u``::

    p_{i,u} = b        + sigma * d_{i,u} * b    (same SP)
    p_{i,u} = iota * b + sigma * d_{i,u} * b    (different SP, iota > 1)

``b`` is the base computing-resource price, the distance term is the
transmission cost, and ``iota`` is the cross-SP markup.  The paper
typesets the transmission term as ``d^sigma b`` but states in prose that
the price grows with distance "in a linear fashion" and that "when
iota = 1, p_{i,u} is only determined by the distance" — both only hold
for the linear reading with sigma as a weight, which we adopt (with the
paper's ``sigma = 0.01`` per meter the exponent reading would make the
term a constant ~1.05 and distance irrelevant).  See DESIGN.md §5.

With distance in meters, ``b = 1`` and ``sigma = 0.01``, the ownership
gap ``(iota - 1) b`` competes with the transmission term ``0.01 d``:
at ``iota = 2`` ownership dominates out to 100 m, at ``iota = 1.1``
distance dominates almost everywhere — exactly the regimes Figs. 2--5
contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = ["PricingPolicy", "PaperPricing", "FlatPricing"]


class PricingPolicy(Protocol):
    """Maps (distance, same-SP?) to a per-CRU price."""

    def price_per_cru(self, distance_m: float, same_sp: bool) -> float:
        """The price ``p_{i,u}`` for one CRU."""
        ...

    def max_price(self, max_distance_m: float) -> float:
        """Upper bound of the price over links up to ``max_distance_m``.

        Used to validate the profitability constraint (Eq. 16) once per
        scenario instead of per link.
        """
        ...


@dataclass(frozen=True, slots=True)
class PaperPricing:
    """Eqs. 9--10 with configurable ``b``, ``iota``, ``sigma``."""

    base_price: float = 1.0
    cross_sp_markup: float = 2.0  # iota
    distance_weight: float = 0.01  # sigma, per meter

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ConfigurationError(
                f"base_price must be > 0, got {self.base_price}"
            )
        if self.cross_sp_markup < 1.0:
            raise ConfigurationError(
                f"cross-SP markup iota must be >= 1, got {self.cross_sp_markup}"
            )
        if self.distance_weight < 0:
            raise ConfigurationError(
                f"distance weight sigma must be >= 0, "
                f"got {self.distance_weight}"
            )

    def price_per_cru(self, distance_m: float, same_sp: bool) -> float:
        """Eq. 9 (same SP) / Eq. 10 (cross SP) with the linear distance term."""
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance_m}")
        ownership_term = 1.0 if same_sp else self.cross_sp_markup
        transmission_term = self.distance_weight * distance_m
        return self.base_price * (ownership_term + transmission_term)

    def max_price(self, max_distance_m: float) -> float:
        """Worst-case price over links up to ``max_distance_m``.

        Both terms are non-decreasing in distance and the cross-SP rate
        dominates the same-SP rate, so the maximum sits at the corner.
        """
        return self.price_per_cru(max_distance_m, same_sp=False)


@dataclass(frozen=True, slots=True)
class FlatPricing:
    """Distance-free pricing, isolating the ownership effect (ablations)."""

    same_sp_price: float = 1.0
    cross_sp_price: float = 2.0

    def __post_init__(self) -> None:
        if self.same_sp_price <= 0 or self.cross_sp_price <= 0:
            raise ConfigurationError("prices must be > 0")
        if self.cross_sp_price < self.same_sp_price:
            raise ConfigurationError(
                "cross-SP price must be >= same-SP price "
                f"({self.cross_sp_price} < {self.same_sp_price})"
            )

    def price_per_cru(self, distance_m: float, same_sp: bool) -> float:
        """Ownership-only price; distance is validated but ignored."""
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance_m}")
        return self.same_sp_price if same_sp else self.cross_sp_price

    def max_price(self, max_distance_m: float) -> float:
        """The cross-SP rate bounds every price."""
        return self.cross_sp_price
