"""Profit accounting: the SP utility of Eqs. 5--8.

For SP ``k`` and the set ``U_k`` of its subscribers served at the edge::

    W_k   = W_k^r - W_k^B - W_k^S
    W_k^r = sum_u c^u * m_k          (revenue from subscribers)
    W_k^B = sum_u c^u * p_{i(u),u}   (payments to serving BSs)
    W_k^S = sum_u c^u * m_k^o        (other serving costs)

Cloud-served subscribers contribute nothing at the MEC layer; the paper
reports their load separately (Fig. 7).  :class:`ProfitStatement` keeps
all three components so tests can verify the accounting identity, not
just the bottom line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.compute.cru import Grant
from repro.econ.pricing import PricingPolicy
from repro.model.network import MECNetwork

__all__ = ["SPProfit", "ProfitStatement", "compute_profit"]


@dataclass(frozen=True, slots=True)
class SPProfit:
    """Eq. 5 decomposition for one SP."""

    sp_id: int
    revenue: float  # W_k^r
    bs_payments: float  # W_k^B
    other_costs: float  # W_k^S
    served_ue_count: int

    @property
    def profit(self) -> float:
        """``W_k = W_k^r - W_k^B - W_k^S``."""
        return self.revenue - self.bs_payments - self.other_costs


@dataclass(frozen=True)
class ProfitStatement:
    """Per-SP profits plus the TPM objective value (Eq. 11)."""

    by_sp: Mapping[int, SPProfit]

    @property
    def total_profit(self) -> float:
        """The TPM objective: ``sum_k W_k``."""
        return sum(entry.profit for entry in self.by_sp.values())

    @property
    def total_revenue(self) -> float:
        return sum(entry.revenue for entry in self.by_sp.values())

    @property
    def total_bs_payments(self) -> float:
        return sum(entry.bs_payments for entry in self.by_sp.values())

    @property
    def total_served_ues(self) -> int:
        return sum(entry.served_ue_count for entry in self.by_sp.values())

    def profit_of(self, sp_id: int) -> float:
        """``W_k`` for one SP (0 for an SP with no edge-served UEs)."""
        entry = self.by_sp.get(sp_id)
        return entry.profit if entry is not None else 0.0


def compute_profit(
    network: MECNetwork,
    grants: Iterable[Grant],
    pricing: PricingPolicy,
) -> ProfitStatement:
    """Evaluate Eqs. 5--8 over a set of realized grants.

    Each grant attributes its CRU volume to the UE's subscribed SP; the
    BS payment uses the realized link's distance and ownership through
    the pricing policy — exactly the terms the optimization in Eq. 11
    sums.
    """
    revenue: dict[int, float] = {}
    payments: dict[int, float] = {}
    other: dict[int, float] = {}
    counts: dict[int, int] = {}
    for grant in grants:
        ue = network.user_equipment(grant.ue_id)
        sp = network.provider(ue.sp_id)
        distance = network.distance_m(grant.ue_id, grant.bs_id)
        same_sp = network.same_sp(grant.ue_id, grant.bs_id)
        price = pricing.price_per_cru(distance, same_sp)
        revenue[sp.sp_id] = revenue.get(sp.sp_id, 0.0) + grant.crus * sp.cru_price
        payments[sp.sp_id] = payments.get(sp.sp_id, 0.0) + grant.crus * price
        other[sp.sp_id] = other.get(sp.sp_id, 0.0) + grant.crus * sp.other_cost
        counts[sp.sp_id] = counts.get(sp.sp_id, 0) + 1
    by_sp = {
        sp.sp_id: SPProfit(
            sp_id=sp.sp_id,
            revenue=revenue.get(sp.sp_id, 0.0),
            bs_payments=payments.get(sp.sp_id, 0.0),
            other_costs=other.get(sp.sp_id, 0.0),
            served_ue_count=counts.get(sp.sp_id, 0),
        )
        for sp in network.providers
    }
    return ProfitStatement(by_sp=by_sp)


def marginal_profit(
    network: MECNetwork,
    ue_id: int,
    bs_id: int,
    pricing: PricingPolicy,
) -> float:
    """The profit delta of serving ``ue_id`` on ``bs_id``.

    This is the quantity a profit-greedy allocator maximizes per step:
    ``c^u * (m_k - m_k^o - p_{i,u})``.
    """
    ue = network.user_equipment(ue_id)
    sp = network.provider(ue.sp_id)
    price = pricing.price_per_cru(
        network.distance_m(ue_id, bs_id), network.same_sp(ue_id, bs_id)
    )
    return ue.cru_demand * (sp.cru_price - sp.other_cost - price)


__all__.append("marginal_profit")
