"""Domain entities: services, SPs, base stations, and user equipments.

These are deliberately *passive* data records.  Mutable allocation state
(remaining CRUs / RRBs during a matching run) lives in the ledgers under
:mod:`repro.compute` and :mod:`repro.core.state`, so a single immutable
network can be shared by many concurrent simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.model.geometry import Point

__all__ = ["Service", "ServiceProvider", "BaseStation", "UserEquipment"]


@dataclass(frozen=True, slots=True)
class Service:
    """One MEC service (paper: element of the service set ``S``)."""

    service_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.service_id < 0:
            raise ConfigurationError(f"service_id must be >= 0, got {self.service_id}")


@dataclass(frozen=True, slots=True)
class ServiceProvider:
    """A service provider (paper: element of the SP set ``varsigma``).

    ``cru_price`` is the price ``m_k`` the SP charges its subscribers per
    CRU, and ``other_cost`` is the per-CRU overhead ``m_k^o``.  Both are
    constants in the paper (Eqs. 6 and 8).
    """

    sp_id: int
    name: str = ""
    cru_price: float = 10.0
    other_cost: float = 0.5

    def __post_init__(self) -> None:
        if self.sp_id < 0:
            raise ConfigurationError(f"sp_id must be >= 0, got {self.sp_id}")
        if self.cru_price <= 0:
            raise ConfigurationError(f"cru_price must be > 0, got {self.cru_price}")
        if self.other_cost < 0:
            raise ConfigurationError(f"other_cost must be >= 0, got {self.other_cost}")

    @property
    def margin_ceiling(self) -> float:
        """Maximum BS price this SP can pay and stay profitable (Eq. 16)."""
        return self.cru_price - self.other_cost


@dataclass(frozen=True, slots=True)
class BaseStation:
    """A base station with a co-located MEC server.

    Attributes
    ----------
    bs_id:
        Unique identifier within the network.
    sp_id:
        The SP that deployed this BS.
    position:
        Planar location in meters.
    cru_capacity:
        Mapping ``service_id -> c_{i,j}``, the CRUs this BS dedicates to
        each hosted service.  A service absent from the mapping is not
        hosted (``z_{i,j} = 0``).
    rrb_capacity:
        ``N_i``, the number of uplink RRBs the BS can allocate.
    uplink_bandwidth_hz:
        ``W_i``; informational (``N_i`` is derived from it at build time).
    """

    bs_id: int
    sp_id: int
    position: Point
    cru_capacity: Mapping[int, int] = field(default_factory=dict)
    rrb_capacity: int = 55
    uplink_bandwidth_hz: float = 10e6

    def __post_init__(self) -> None:
        if self.bs_id < 0:
            raise ConfigurationError(f"bs_id must be >= 0, got {self.bs_id}")
        if self.rrb_capacity <= 0:
            raise ConfigurationError(
                f"rrb_capacity must be > 0, got {self.rrb_capacity}"
            )
        for service_id, crus in self.cru_capacity.items():
            if crus < 0:
                raise ConfigurationError(
                    f"BS {self.bs_id}: negative CRU capacity {crus} "
                    f"for service {service_id}"
                )

    def hosts_service(self, service_id: int) -> bool:
        """Whether ``z_{i,j} = 1`` for this BS and service ``j``."""
        return self.cru_capacity.get(service_id, 0) > 0

    @property
    def hosted_services(self) -> frozenset[int]:
        """Ids of services with a positive CRU allotment (``S_i``)."""
        return frozenset(
            sid for sid, crus in self.cru_capacity.items() if crus > 0
        )

    @property
    def total_cru_capacity(self) -> int:
        """Sum of ``c_{i,j}`` over hosted services."""
        return sum(self.cru_capacity.values())


@dataclass(frozen=True, slots=True)
class UserEquipment:
    """A user equipment with one offloadable computing task.

    Attributes
    ----------
    ue_id:
        Unique identifier within the network.
    sp_id:
        The SP this UE subscribes to.
    position:
        Planar location in meters.
    service_id:
        The single service the UE requests (``J_{u,j} = 1``).
    cru_demand:
        ``c_j^u``, CRUs needed to process the offloaded task.
    rate_demand_bps:
        ``w_u``, required uplink data rate in bits/s.
    tx_power_dbm:
        Uplink transmit power.
    """

    ue_id: int
    sp_id: int
    position: Point
    service_id: int
    cru_demand: int
    rate_demand_bps: float
    tx_power_dbm: float = 10.0

    def __post_init__(self) -> None:
        if self.ue_id < 0:
            raise ConfigurationError(f"ue_id must be >= 0, got {self.ue_id}")
        if self.cru_demand <= 0:
            raise ConfigurationError(
                f"UE {self.ue_id}: cru_demand must be > 0, got {self.cru_demand}"
            )
        if self.rate_demand_bps <= 0:
            raise ConfigurationError(
                f"UE {self.ue_id}: rate_demand_bps must be > 0, "
                f"got {self.rate_demand_bps}"
            )
