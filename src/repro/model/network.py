"""The immutable network container shared by all allocators.

:class:`MECNetwork` bundles SPs, base stations, user equipments, and the
service catalog, and precomputes the geometry every allocator needs:
UE--BS distances, coverage sets, and the per-UE candidate BS sets
``B_u`` (BSs that cover the UE *and* host its requested service —
Alg. 1, line 1 of the paper).

The container itself never mutates during an allocation run; allocators
keep their own resource ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnknownEntityError
from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import Rectangle, pairwise_distances_m

__all__ = ["MECNetwork"]


@dataclass(frozen=True)
class MECNetwork:
    """Immutable snapshot of a multi-SP MEC deployment.

    Build it directly from entity lists or via
    :func:`repro.sim.scenario.build_scenario` for paper-style scenarios.

    Parameters
    ----------
    providers, base_stations, user_equipments, services:
        The entity populations.  Ids must be unique per entity type.
    region:
        The deployment region (used for reporting only).
    coverage_radius_m:
        Maximum UE--BS distance at which a BS is considered reachable.
        The paper assumes dense multi-coverage but states no radius; the
        default of 500 m (see DESIGN.md §3) produces it for the paper's
        layouts.
    """

    providers: Sequence[ServiceProvider]
    base_stations: Sequence[BaseStation]
    user_equipments: Sequence[UserEquipment]
    services: Sequence[Service]
    region: Rectangle
    coverage_radius_m: float = 500.0
    _sp_by_id: Mapping[int, ServiceProvider] = field(init=False, repr=False)
    _bs_by_id: Mapping[int, BaseStation] = field(init=False, repr=False)
    _ue_by_id: Mapping[int, UserEquipment] = field(init=False, repr=False)
    _service_by_id: Mapping[int, Service] = field(init=False, repr=False)
    _distances: np.ndarray = field(init=False, repr=False)
    _ue_row: Mapping[int, int] = field(init=False, repr=False)
    _bs_col: Mapping[int, int] = field(init=False, repr=False)
    _candidates: Mapping[int, tuple[int, ...]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.coverage_radius_m <= 0:
            raise ConfigurationError(
                f"coverage_radius_m must be > 0, got {self.coverage_radius_m}"
            )
        object.__setattr__(self, "providers", tuple(self.providers))
        object.__setattr__(self, "base_stations", tuple(self.base_stations))
        object.__setattr__(self, "user_equipments", tuple(self.user_equipments))
        object.__setattr__(self, "services", tuple(self.services))

        sp_by_id = _index_unique("SP", [(sp.sp_id, sp) for sp in self.providers])
        bs_by_id = _index_unique("BS", [(bs.bs_id, bs) for bs in self.base_stations])
        ue_by_id = _index_unique(
            "UE", [(ue.ue_id, ue) for ue in self.user_equipments]
        )
        service_by_id = _index_unique(
            "service", [(s.service_id, s) for s in self.services]
        )
        object.__setattr__(self, "_sp_by_id", sp_by_id)
        object.__setattr__(self, "_bs_by_id", bs_by_id)
        object.__setattr__(self, "_ue_by_id", ue_by_id)
        object.__setattr__(self, "_service_by_id", service_by_id)

        for bs in self.base_stations:
            if bs.sp_id not in sp_by_id:
                raise ConfigurationError(
                    f"BS {bs.bs_id} references unknown SP {bs.sp_id}"
                )
            for service_id in bs.cru_capacity:
                if service_id not in service_by_id:
                    raise ConfigurationError(
                        f"BS {bs.bs_id} hosts unknown service {service_id}"
                    )
        for ue in self.user_equipments:
            if ue.sp_id not in sp_by_id:
                raise ConfigurationError(
                    f"UE {ue.ue_id} references unknown SP {ue.sp_id}"
                )
            if ue.service_id not in service_by_id:
                raise ConfigurationError(
                    f"UE {ue.ue_id} requests unknown service {ue.service_id}"
                )

        ue_row = {ue.ue_id: row for row, ue in enumerate(self.user_equipments)}
        bs_col = {bs.bs_id: col for col, bs in enumerate(self.base_stations)}
        distances = pairwise_distances_m(
            [ue.position for ue in self.user_equipments],
            [bs.position for bs in self.base_stations],
        )
        object.__setattr__(self, "_ue_row", ue_row)
        object.__setattr__(self, "_bs_col", bs_col)
        object.__setattr__(self, "_distances", distances)

        candidates: dict[int, tuple[int, ...]] = {}
        for ue in self.user_equipments:
            row = ue_row[ue.ue_id]
            eligible = [
                bs.bs_id
                for bs in self.base_stations
                if distances[row, bs_col[bs.bs_id]] <= self.coverage_radius_m
                and bs.hosts_service(ue.service_id)
            ]
            candidates[ue.ue_id] = tuple(eligible)
        object.__setattr__(self, "_candidates", candidates)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def provider(self, sp_id: int) -> ServiceProvider:
        """Return the SP with id ``sp_id``."""
        return _get(self._sp_by_id, sp_id, "SP")

    def base_station(self, bs_id: int) -> BaseStation:
        """Return the BS with id ``bs_id``."""
        return _get(self._bs_by_id, bs_id, "BS")

    def user_equipment(self, ue_id: int) -> UserEquipment:
        """Return the UE with id ``ue_id``."""
        return _get(self._ue_by_id, ue_id, "UE")

    def service(self, service_id: int) -> Service:
        """Return the service with id ``service_id``."""
        return _get(self._service_by_id, service_id, "service")

    def provider_of_ue(self, ue_id: int) -> ServiceProvider:
        """The SP the UE subscribes to."""
        return self.provider(self.user_equipment(ue_id).sp_id)

    def base_stations_of_sp(self, sp_id: int) -> tuple[BaseStation, ...]:
        """All BSs deployed by SP ``sp_id``."""
        self.provider(sp_id)  # validate the id
        return tuple(bs for bs in self.base_stations if bs.sp_id == sp_id)

    def user_equipments_of_sp(self, sp_id: int) -> tuple[UserEquipment, ...]:
        """All UEs subscribing to SP ``sp_id``."""
        self.provider(sp_id)  # validate the id
        return tuple(ue for ue in self.user_equipments if ue.sp_id == sp_id)

    # ------------------------------------------------------------------
    # Geometry and coverage
    # ------------------------------------------------------------------

    def distance_m(self, ue_id: int, bs_id: int) -> float:
        """UE--BS distance ``d_{i,u}`` in meters."""
        try:
            return float(self._distances[self._ue_row[ue_id], self._bs_col[bs_id]])
        except KeyError as exc:
            raise UnknownEntityError(f"unknown entity id {exc.args[0]}") from None

    def distance_matrix_m(self) -> np.ndarray:
        """Copy of the full ``(n_ue, n_bs)`` distance matrix in meters."""
        return self._distances.copy()

    def covers(self, bs_id: int, ue_id: int) -> bool:
        """Whether the BS is within coverage radius of the UE."""
        return self.distance_m(ue_id, bs_id) <= self.coverage_radius_m

    def covering_base_stations(self, ue_id: int) -> tuple[int, ...]:
        """Ids of all BSs within coverage radius of the UE (any service)."""
        row = self._row_of(ue_id)
        return tuple(
            bs.bs_id
            for bs in self.base_stations
            if self._distances[row, self._bs_col[bs.bs_id]]
            <= self.coverage_radius_m
        )

    def candidate_base_stations(self, ue_id: int) -> tuple[int, ...]:
        """The paper's ``B_u``: BSs covering the UE that host its service."""
        try:
            return self._candidates[ue_id]
        except KeyError:
            raise UnknownEntityError(f"unknown UE id {ue_id}") from None

    def same_sp(self, ue_id: int, bs_id: int) -> bool:
        """Whether the UE and the BS belong to the same SP."""
        return self.user_equipment(ue_id).sp_id == self.base_station(bs_id).sp_id

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    @property
    def ue_count(self) -> int:
        return len(self.user_equipments)

    @property
    def bs_count(self) -> int:
        return len(self.base_stations)

    @property
    def sp_count(self) -> int:
        return len(self.providers)

    @property
    def service_count(self) -> int:
        return len(self.services)

    def mean_coverage_degree(self) -> float:
        """Average number of candidate BSs per UE (the paper's ``f_u``)."""
        if not self.user_equipments:
            return 0.0
        return float(
            np.mean([len(self._candidates[ue.ue_id]) for ue in self.user_equipments])
        )

    def describe(self) -> str:
        """Human-readable one-paragraph summary of the deployment."""
        return (
            f"MECNetwork: {self.sp_count} SPs, {self.bs_count} BSs, "
            f"{self.ue_count} UEs, {self.service_count} services, "
            f"region {self.region.width:.0f} m x {self.region.height:.0f} m, "
            f"coverage radius {self.coverage_radius_m:.0f} m, "
            f"mean coverage degree {self.mean_coverage_degree():.2f}"
        )

    def _row_of(self, ue_id: int) -> int:
        try:
            return self._ue_row[ue_id]
        except KeyError:
            raise UnknownEntityError(f"unknown UE id {ue_id}") from None


def _index_unique(kind: str, pairs: Iterable[tuple[int, object]]) -> dict:
    index: dict = {}
    for key, value in pairs:
        if key in index:
            raise ConfigurationError(f"duplicate {kind} id {key}")
        index[key] = value
    return index


def _get(mapping: Mapping, key: int, kind: str):
    try:
        return mapping[key]
    except KeyError:
        raise UnknownEntityError(f"unknown {kind} id {key}") from None
