"""The immutable network container shared by all allocators.

:class:`MECNetwork` bundles SPs, base stations, user equipments, and the
service catalog, and precomputes the geometry every allocator needs:
UE--BS distances, coverage sets, and the per-UE candidate BS sets
``B_u`` (BSs that cover the UE *and* host its requested service —
Alg. 1, line 1 of the paper).

The container itself never mutates during an allocation run; allocators
keep their own resource ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, UnknownEntityError
from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import (
    Point,
    Rectangle,
    SpatialGrid,
    pairwise_distances_m,
)

__all__ = ["MECNetwork"]

#: ``auto`` geometry keeps the dense UE x BS distance matrix up to this
#: many cells (~32 MB of float64) and switches to the sparse spatial
#: grid beyond it, where the dense build would dominate memory.
_DENSE_CELL_LIMIT = 4_000_000


@dataclass(frozen=True)
class MECNetwork:
    """Immutable snapshot of a multi-SP MEC deployment.

    Build it directly from entity lists or via
    :func:`repro.sim.scenario.build_scenario` for paper-style scenarios.

    Parameters
    ----------
    providers, base_stations, user_equipments, services:
        The entity populations.  Ids must be unique per entity type.
    region:
        The deployment region (used for reporting only).
    coverage_radius_m:
        Maximum UE--BS distance at which a BS is considered reachable.
        The paper assumes dense multi-coverage but states no radius; the
        default of 500 m (see DESIGN.md §3) produces it for the paper's
        layouts.
    geometry:
        ``"dense"`` precomputes the full UE x BS distance matrix and
        candidate mask (the historical behavior), ``"grid"`` indexes BSs
        in a :class:`~repro.model.geometry.SpatialGrid` and stores only
        the in-coverage pairs (memory O(pairs) instead of O(UE x BS)),
        and ``"auto"`` (the default) picks dense up to
        ``_DENSE_CELL_LIMIT`` cells and grid beyond.  Both modes expose
        identical values — the grid mode computes the same float64
        distances for every surviving pair (parity-tested).
    """

    providers: Sequence[ServiceProvider]
    base_stations: Sequence[BaseStation]
    user_equipments: Sequence[UserEquipment]
    services: Sequence[Service]
    region: Rectangle
    coverage_radius_m: float = 500.0
    geometry: str = "auto"
    _sp_by_id: Mapping[int, ServiceProvider] = field(init=False, repr=False)
    _bs_by_id: Mapping[int, BaseStation] = field(init=False, repr=False)
    _ue_by_id: Mapping[int, UserEquipment] = field(init=False, repr=False)
    _service_by_id: Mapping[int, Service] = field(init=False, repr=False)
    _geometry_mode: str = field(init=False, repr=False)
    _distances: np.ndarray | None = field(init=False, repr=False)
    _ue_row: Mapping[int, int] = field(init=False, repr=False)
    _bs_col: Mapping[int, int] = field(init=False, repr=False)
    _candidates: Mapping[int, tuple[int, ...]] | None = field(
        init=False, repr=False
    )
    _candidate_mask: np.ndarray | None = field(init=False, repr=False)
    _hosts_by_service: Mapping[int, np.ndarray] = field(init=False, repr=False)
    _bs_id_array: np.ndarray = field(init=False, repr=False)
    _grid: SpatialGrid | None = field(init=False, repr=False)
    _cov_indptr: np.ndarray | None = field(init=False, repr=False)
    _cov_cols: np.ndarray | None = field(init=False, repr=False)
    _cov_dists: np.ndarray | None = field(init=False, repr=False)
    _cand_indptr: np.ndarray | None = field(init=False, repr=False)
    _cand_cols: np.ndarray | None = field(init=False, repr=False)
    _cand_dists: np.ndarray | None = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.coverage_radius_m <= 0:
            raise ConfigurationError(
                f"coverage_radius_m must be > 0, got {self.coverage_radius_m}"
            )
        object.__setattr__(self, "providers", tuple(self.providers))
        object.__setattr__(self, "base_stations", tuple(self.base_stations))
        object.__setattr__(self, "user_equipments", tuple(self.user_equipments))
        object.__setattr__(self, "services", tuple(self.services))

        sp_by_id = _index_unique("SP", [(sp.sp_id, sp) for sp in self.providers])
        bs_by_id = _index_unique("BS", [(bs.bs_id, bs) for bs in self.base_stations])
        ue_by_id = _index_unique(
            "UE", [(ue.ue_id, ue) for ue in self.user_equipments]
        )
        service_by_id = _index_unique(
            "service", [(s.service_id, s) for s in self.services]
        )
        object.__setattr__(self, "_sp_by_id", sp_by_id)
        object.__setattr__(self, "_bs_by_id", bs_by_id)
        object.__setattr__(self, "_ue_by_id", ue_by_id)
        object.__setattr__(self, "_service_by_id", service_by_id)

        for bs in self.base_stations:
            if bs.sp_id not in sp_by_id:
                raise ConfigurationError(
                    f"BS {bs.bs_id} references unknown SP {bs.sp_id}"
                )
            for service_id in bs.cru_capacity:
                if service_id not in service_by_id:
                    raise ConfigurationError(
                        f"BS {bs.bs_id} hosts unknown service {service_id}"
                    )
        for ue in self.user_equipments:
            if ue.sp_id not in sp_by_id:
                raise ConfigurationError(
                    f"UE {ue.ue_id} references unknown SP {ue.sp_id}"
                )
            if ue.service_id not in service_by_id:
                raise ConfigurationError(
                    f"UE {ue.ue_id} requests unknown service {ue.service_id}"
                )

        if self.geometry not in ("auto", "dense", "grid"):
            raise ConfigurationError(
                f"geometry must be 'auto', 'dense', or 'grid', "
                f"got {self.geometry!r}"
            )
        mode = self.geometry
        if mode == "auto":
            cells = len(self.user_equipments) * len(self.base_stations)
            mode = "dense" if cells <= _DENSE_CELL_LIMIT else "grid"
        object.__setattr__(self, "_geometry_mode", mode)

        ue_row = {ue.ue_id: row for row, ue in enumerate(self.user_equipments)}
        bs_col = {bs.bs_id: col for col, bs in enumerate(self.base_stations)}
        object.__setattr__(self, "_ue_row", ue_row)
        object.__setattr__(self, "_bs_col", bs_col)

        hosts_by_service = {
            service.service_id: np.array(
                [bs.hosts_service(service.service_id) for bs in self.base_stations],
                dtype=bool,
            )
            for service in self.services
        }
        bs_id_array = np.array(
            [bs.bs_id for bs in self.base_stations], dtype=np.int64
        )
        object.__setattr__(self, "_hosts_by_service", hosts_by_service)
        object.__setattr__(self, "_bs_id_array", bs_id_array)

        if mode == "dense":
            self._init_dense_geometry(ue_row, hosts_by_service, bs_id_array)
        else:
            self._init_grid_geometry(hosts_by_service)

    def _init_dense_geometry(
        self,
        ue_row: Mapping[int, int],
        hosts_by_service: Mapping[int, np.ndarray],
        bs_id_array: np.ndarray,
    ) -> None:
        """Precompute the full distance matrix and candidate mask."""
        distances = pairwise_distances_m(
            [ue.position for ue in self.user_equipments],
            [bs.position for bs in self.base_stations],
        )
        object.__setattr__(self, "_distances", distances)

        # Candidate sets B_u, computed as one (n_ue, n_bs) boolean mask:
        # coverage (distance <= radius) AND hosting (z_{i,j} = 1 for the
        # UE's service).  Hosting columns are shared per service, so the
        # whole mask costs one fancy-index plus one logical AND.
        coverage = distances <= self.coverage_radius_m
        if self.user_equipments:
            hosting = np.stack(
                [hosts_by_service[ue.service_id] for ue in self.user_equipments]
            )
            mask = coverage & hosting
        else:
            mask = np.zeros_like(coverage, dtype=bool)
        candidates: dict[int, tuple[int, ...]] = {
            ue.ue_id: tuple(bs_id_array[mask[ue_row[ue.ue_id]]].tolist())
            for ue in self.user_equipments
        }
        mask.setflags(write=False)
        object.__setattr__(self, "_candidates", candidates)
        object.__setattr__(self, "_candidate_mask", mask)
        for name in (
            "_grid", "_cov_indptr", "_cov_cols", "_cov_dists",
            "_cand_indptr", "_cand_cols", "_cand_dists",
        ):
            object.__setattr__(self, name, None)

    def _init_grid_geometry(
        self, hosts_by_service: Mapping[int, np.ndarray]
    ) -> None:
        """Index BSs in a spatial grid; store only in-coverage pairs.

        Coverage and candidate pairs are kept as CSR-style flat arrays
        (``indptr`` per UE row, columns ascending within a row), which
        is exactly the ``np.nonzero`` row-major order of the dense mask
        — so :meth:`candidate_pairs` is bit-identical across modes.
        """
        n_ue = len(self.user_equipments)
        bs_xy = np.asarray(
            [bs.position.as_tuple() for bs in self.base_stations],
            dtype=float,
        ).reshape(-1, 2)
        ue_xy = np.asarray(
            [ue.position.as_tuple() for ue in self.user_equipments],
            dtype=float,
        ).reshape(-1, 2)
        grid = SpatialGrid(bs_xy, cell_size_m=self.coverage_radius_m)
        rows, cols, dists = grid.query_radius(ue_xy, self.coverage_radius_m)
        cov_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(rows, minlength=n_ue)))
        ).astype(np.int64)

        if len(rows) and self.services:
            service_index = {
                service.service_id: i
                for i, service in enumerate(self.services)
            }
            hosting_matrix = np.stack(
                [hosts_by_service[s.service_id] for s in self.services]
            )
            ue_service_idx = np.array(
                [service_index[ue.service_id] for ue in self.user_equipments],
                dtype=np.intp,
            )
            keep = hosting_matrix[ue_service_idx[rows], cols]
        else:
            keep = np.zeros(len(rows), dtype=bool)
        cand_rows = rows[keep]
        cand_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(cand_rows, minlength=n_ue)))
        ).astype(np.int64)

        for name, value in (
            ("_grid", grid),
            ("_cov_indptr", cov_indptr),
            ("_cov_cols", _frozen(cols)),
            ("_cov_dists", _frozen(dists)),
            ("_cand_indptr", cand_indptr),
            ("_cand_cols", _frozen(cols[keep])),
            ("_cand_dists", _frozen(dists[keep])),
            ("_distances", None),
            ("_candidate_mask", None),
            ("_candidates", None),
        ):
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def provider(self, sp_id: int) -> ServiceProvider:
        """Return the SP with id ``sp_id``."""
        return _get(self._sp_by_id, sp_id, "SP")

    def base_station(self, bs_id: int) -> BaseStation:
        """Return the BS with id ``bs_id``."""
        return _get(self._bs_by_id, bs_id, "BS")

    def user_equipment(self, ue_id: int) -> UserEquipment:
        """Return the UE with id ``ue_id``."""
        return _get(self._ue_by_id, ue_id, "UE")

    def service(self, service_id: int) -> Service:
        """Return the service with id ``service_id``."""
        return _get(self._service_by_id, service_id, "service")

    def provider_of_ue(self, ue_id: int) -> ServiceProvider:
        """The SP the UE subscribes to."""
        return self.provider(self.user_equipment(ue_id).sp_id)

    def base_stations_of_sp(self, sp_id: int) -> tuple[BaseStation, ...]:
        """All BSs deployed by SP ``sp_id``."""
        self.provider(sp_id)  # validate the id
        return tuple(bs for bs in self.base_stations if bs.sp_id == sp_id)

    def user_equipments_of_sp(self, sp_id: int) -> tuple[UserEquipment, ...]:
        """All UEs subscribing to SP ``sp_id``."""
        self.provider(sp_id)  # validate the id
        return tuple(ue for ue in self.user_equipments if ue.sp_id == sp_id)

    # ------------------------------------------------------------------
    # Geometry and coverage
    # ------------------------------------------------------------------

    def distance_m(self, ue_id: int, bs_id: int) -> float:
        """UE--BS distance ``d_{i,u}`` in meters."""
        try:
            row = self._ue_row[ue_id]
            col = self._bs_col[bs_id]
        except KeyError as exc:
            raise UnknownEntityError(f"unknown entity id {exc.args[0]}") from None
        if self._geometry_mode == "dense":
            return float(self._distances[row, col])
        # Grid mode: in-coverage pairs return the stored query distance
        # (bit-identical to the dense matrix entry); out-of-coverage
        # pairs are recomputed with the same float64 hypot.
        lo, hi = self._cov_indptr[row], self._cov_indptr[row + 1]
        pos = lo + int(np.searchsorted(self._cov_cols[lo:hi], col))
        if pos < hi and self._cov_cols[pos] == col:
            return float(self._cov_dists[pos])
        ue_pos = self.user_equipments[row].position
        bs_pos = self.base_stations[col].position
        return float(np.hypot(ue_pos.x - bs_pos.x, ue_pos.y - bs_pos.y))

    def distance_matrix_m(self) -> np.ndarray:
        """Copy of the full ``(n_ue, n_bs)`` distance matrix in meters.

        In grid geometry mode the dense matrix is not stored; this
        materializes it on demand (O(UE x BS) time and memory) purely as
        a compatibility shim — batched consumers should prefer
        :meth:`candidate_pairs`.
        """
        if self._geometry_mode == "dense":
            return self._distances.copy()
        return pairwise_distances_m(
            [ue.position for ue in self.user_equipments],
            [bs.position for bs in self.base_stations],
        )

    def covers(self, bs_id: int, ue_id: int) -> bool:
        """Whether the BS is within coverage radius of the UE."""
        return self.distance_m(ue_id, bs_id) <= self.coverage_radius_m

    def covering_base_stations(self, ue_id: int) -> tuple[int, ...]:
        """Ids of all BSs within coverage radius of the UE (any service).

        Grid mode answers from the spatial index's coverage pairs; dense
        mode scans the precomputed distance row.  Both return BS ids in
        deployment (column) order.
        """
        row = self._row_of(ue_id)
        if self._geometry_mode == "grid":
            lo, hi = self._cov_indptr[row], self._cov_indptr[row + 1]
            return tuple(self._bs_id_array[self._cov_cols[lo:hi]].tolist())
        within = self._distances[row] <= self.coverage_radius_m
        return tuple(self._bs_id_array[within].tolist())

    def candidate_base_stations(self, ue_id: int) -> tuple[int, ...]:
        """The paper's ``B_u``: BSs covering the UE that host its service."""
        if self._geometry_mode == "grid":
            row = self._row_of(ue_id)
            lo, hi = self._cand_indptr[row], self._cand_indptr[row + 1]
            return tuple(self._bs_id_array[self._cand_cols[lo:hi]].tolist())
        try:
            return self._candidates[ue_id]
        except KeyError:
            raise UnknownEntityError(f"unknown UE id {ue_id}") from None

    def candidate_mask(self) -> np.ndarray:
        """Read-only ``(n_ue, n_bs)`` boolean candidate mask.

        Row/column order follows ``user_equipments`` / ``base_stations``;
        ``mask[row, col]`` is True exactly when the BS is in the UE's
        ``B_u``.  This is the batched counterpart of
        :meth:`candidate_base_stations`, consumed by the vectorized
        radio-map builder.  Grid mode materializes the mask on demand
        (O(UE x BS) memory) — batched consumers should prefer
        :meth:`candidate_pairs`.
        """
        if self._geometry_mode == "dense":
            return self._candidate_mask
        mask = np.zeros((self.ue_count, self.bs_count), dtype=bool)
        rows, cols, _ = self.candidate_pairs()
        mask[rows, cols] = True
        mask.setflags(write=False)
        return mask

    def candidate_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All candidate links as flat ``(rows, cols, dists)`` arrays.

        Pairs are sorted lexicographically by ``(row, col)`` — the
        row-major order of ``np.nonzero(candidate_mask())`` — with
        ``dists`` the float64 UE--BS distances.  Identical values in
        both geometry modes; this is the sparse-friendly input of the
        vectorized radio-map builder.
        """
        if self._geometry_mode == "grid":
            counts = np.diff(self._cand_indptr)
            rows = np.repeat(
                np.arange(self.ue_count, dtype=np.intp), counts
            )
            return rows, self._cand_cols, self._cand_dists
        rows, cols = np.nonzero(self._candidate_mask)
        return rows, cols, self._distances[rows, cols]

    def row_of_ue(self, ue_id: int) -> int:
        """Row index of a UE in the distance matrix / candidate mask."""
        return self._row_of(ue_id)

    def col_of_bs(self, bs_id: int) -> int:
        """Column index of a BS in the distance matrix / candidate mask."""
        try:
            return self._bs_col[bs_id]
        except KeyError:
            raise UnknownEntityError(f"unknown BS id {bs_id}") from None

    def with_moved_ues(
        self,
        new_positions: Mapping[int, Point],
        rebuild_fraction: float = 0.5,
    ) -> "MECNetwork":
        """A copy of this network with the given UEs repositioned.

        The incremental mobility path: only the moved UEs' distance rows
        and candidate sets are recomputed (batched); every id index, the
        BS population, and unmoved rows are shared with ``self``.  The
        recomputed rows use the same float64 operations as full
        construction, so the result is value-identical to rebuilding
        :class:`MECNetwork` from scratch with the new positions.

        When at least ``rebuild_fraction`` of the population moved,
        per-row patching cannot beat the fully batched constructor
        (copying + fancy-indexing the large arrays costs more than
        recomputing them), so the call falls back to it — same values,
        different route.
        """
        if not new_positions:
            return self
        rows = []
        for ue_id in new_positions:
            rows.append(self._row_of(ue_id))  # validates the id
        moved_ues = tuple(
            replace(ue, position=new_positions[ue.ue_id])
            if ue.ue_id in new_positions
            else ue
            for ue in self.user_equipments
        )
        if (
            self._geometry_mode == "grid"
            or len(new_positions) > rebuild_fraction * self.ue_count
        ):
            # Most of the population moved (e.g. a random walk) or the
            # network has no dense rows to patch: the fully batched
            # constructor beats (or replaces) per-row patching.
            return MECNetwork(
                providers=self.providers,
                base_stations=self.base_stations,
                user_equipments=moved_ues,
                services=self.services,
                region=self.region,
                coverage_radius_m=self.coverage_radius_m,
                geometry=self.geometry,
            )

        clone = object.__new__(MECNetwork)
        for name in (
            "providers",
            "base_stations",
            "services",
            "region",
            "coverage_radius_m",
            "geometry",
            "_geometry_mode",
            "_sp_by_id",
            "_bs_by_id",
            "_service_by_id",
            "_ue_row",
            "_bs_col",
            "_hosts_by_service",
            "_bs_id_array",
            "_grid",
            "_cov_indptr",
            "_cov_cols",
            "_cov_dists",
            "_cand_indptr",
            "_cand_cols",
            "_cand_dists",
        ):
            object.__setattr__(clone, name, getattr(self, name))
        object.__setattr__(clone, "user_equipments", moved_ues)
        object.__setattr__(
            clone, "_ue_by_id", {ue.ue_id: ue for ue in moved_ues}
        )

        row_index = np.array(sorted(rows), dtype=np.intp)
        distances = self._distances.copy()
        distances[row_index] = pairwise_distances_m(
            [moved_ues[row].position for row in row_index],
            [bs.position for bs in self.base_stations],
        )
        distances.setflags(write=False)
        object.__setattr__(clone, "_distances", distances)

        mask = self._candidate_mask.copy()
        coverage = distances[row_index] <= self.coverage_radius_m
        hosting = np.stack(
            [
                self._hosts_by_service[moved_ues[row].service_id]
                for row in row_index
            ]
        )
        mask[row_index] = coverage & hosting
        mask.setflags(write=False)
        candidates = dict(self._candidates)
        for row in row_index:
            ue = moved_ues[row]
            candidates[ue.ue_id] = tuple(
                self._bs_id_array[mask[row]].tolist()
            )
        object.__setattr__(clone, "_candidate_mask", mask)
        object.__setattr__(clone, "_candidates", candidates)
        return clone

    def same_sp(self, ue_id: int, bs_id: int) -> bool:
        """Whether the UE and the BS belong to the same SP."""
        return self.user_equipment(ue_id).sp_id == self.base_station(bs_id).sp_id

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    @property
    def ue_count(self) -> int:
        return len(self.user_equipments)

    @property
    def bs_count(self) -> int:
        return len(self.base_stations)

    @property
    def sp_count(self) -> int:
        return len(self.providers)

    @property
    def service_count(self) -> int:
        return len(self.services)

    def mean_coverage_degree(self) -> float:
        """Average number of candidate BSs per UE (the paper's ``f_u``)."""
        if not self.user_equipments:
            return 0.0
        if self._geometry_mode == "grid":
            return float(np.mean(np.diff(self._cand_indptr)))
        return float(
            np.mean([len(self._candidates[ue.ue_id]) for ue in self.user_equipments])
        )

    def estimated_geometry_bytes(self) -> int:
        """Approximate bytes held by the precomputed geometry arrays.

        The scenario cache uses this (plus the radio map's column sizes)
        to bound its memory footprint; see
        :func:`repro.sim.scenario.build_scenario_cached`.
        """
        if self._geometry_mode == "dense":
            return int(
                self._distances.nbytes + self._candidate_mask.nbytes
            )
        return int(
            sum(
                arr.nbytes
                for arr in (
                    self._cov_indptr, self._cov_cols, self._cov_dists,
                    self._cand_indptr, self._cand_cols, self._cand_dists,
                )
            )
        )

    def describe(self) -> str:
        """Human-readable one-paragraph summary of the deployment."""
        return (
            f"MECNetwork: {self.sp_count} SPs, {self.bs_count} BSs, "
            f"{self.ue_count} UEs, {self.service_count} services, "
            f"region {self.region.width:.0f} m x {self.region.height:.0f} m, "
            f"coverage radius {self.coverage_radius_m:.0f} m, "
            f"mean coverage degree {self.mean_coverage_degree():.2f}"
        )

    def _row_of(self, ue_id: int) -> int:
        try:
            return self._ue_row[ue_id]
        except KeyError:
            raise UnknownEntityError(f"unknown UE id {ue_id}") from None


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only (the network is semantically immutable)."""
    if array.base is None and array.flags.owndata:
        array.setflags(write=False)
    return array


def _index_unique(kind: str, pairs: Iterable[tuple[int, object]]) -> dict:
    index: dict = {}
    for key, value in pairs:
        if key in index:
            raise ConfigurationError(f"duplicate {kind} id {key}")
        index[key] = value
    return index


def _get(mapping: Mapping, key: int, kind: str):
    try:
        return mapping[key]
    except KeyError:
        raise UnknownEntityError(f"unknown {kind} id {key}") from None
