"""Cheap per-batch networks over a fixed BS-side deployment.

The streaming allocator matches small UE batches (arrivals plus the
dirty re-admission set) against a deployment whose BS side never
changes.  Building a fresh :class:`~repro.model.network.MECNetwork`
per batch would redo the BS-side work every time: entity validation,
the per-service hosting columns, and the
:class:`~repro.model.geometry.SpatialGrid` over BS positions.

:class:`BatchNetworkBuilder` does that work once and then stamps out
per-batch networks that *share* every BS-side structure with the
template, computing only the UE-side grid geometry (the same
``query_radius`` + hosting filter as
``MECNetwork._init_grid_geometry``, so coverage pairs, candidate sets,
and distances are bit-identical to constructing the network directly —
pinned by the batch-parity tests).  Cost per batch is
O(batch UEs x coverage degree), independent of how many UEs ever
existed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.model.entities import (
    BaseStation,
    Service,
    ServiceProvider,
    UserEquipment,
)
from repro.model.geometry import Rectangle
from repro.model.network import MECNetwork

__all__ = ["BatchNetworkBuilder"]


class BatchNetworkBuilder:
    """Stamp out grid-geometry networks for UE batches on one deployment."""

    def __init__(
        self,
        providers: Sequence[ServiceProvider],
        base_stations: Sequence[BaseStation],
        services: Sequence[Service],
        region: Rectangle,
        coverage_radius_m: float,
    ) -> None:
        # The zero-UE template runs full construction once: entity
        # validation, id indexes, hosting columns, and the BS spatial
        # grid.  Every batch network shares these objects.
        self._template = MECNetwork(
            providers=providers,
            base_stations=base_stations,
            user_equipments=(),
            services=services,
            region=region,
            coverage_radius_m=coverage_radius_m,
            geometry="grid",
        )
        template = self._template
        self._service_index = {
            service.service_id: i
            for i, service in enumerate(template.services)
        }
        self._hosting_matrix = (
            np.stack([
                template._hosts_by_service[s.service_id]
                for s in template.services
            ])
            if template.services and template.base_stations
            else np.zeros((len(template.services), 0), dtype=bool)
        )

    @property
    def template(self) -> MECNetwork:
        """The shared zero-UE network (BS-side source of truth)."""
        return self._template

    @property
    def bs_count(self) -> int:
        return self._template.bs_count

    def network_for(self, ues: Sequence[UserEquipment]) -> MECNetwork:
        """A grid-geometry network of exactly ``ues`` on the template's BSs.

        Value-identical to ``MECNetwork(..., user_equipments=ues,
        geometry="grid")``: the UE-side CSR arrays are computed with the
        same ``query_radius`` call and hosting filter as full
        construction, and every BS-side structure is shared with the
        template.
        """
        template = self._template
        ues = tuple(ues)
        n_ue = len(ues)

        clone = object.__new__(MECNetwork)
        for name in (
            "providers",
            "base_stations",
            "services",
            "region",
            "coverage_radius_m",
            "geometry",
            "_geometry_mode",
            "_sp_by_id",
            "_bs_by_id",
            "_service_by_id",
            "_bs_col",
            "_hosts_by_service",
            "_bs_id_array",
            "_grid",
        ):
            object.__setattr__(clone, name, getattr(template, name))
        object.__setattr__(clone, "user_equipments", ues)
        object.__setattr__(
            clone, "_ue_by_id", {ue.ue_id: ue for ue in ues}
        )
        object.__setattr__(
            clone, "_ue_row", {ue.ue_id: row for row, ue in enumerate(ues)}
        )

        ue_xy = np.asarray(
            [ue.position.as_tuple() for ue in ues], dtype=float
        ).reshape(-1, 2)
        rows, cols, dists = template._grid.query_radius(
            ue_xy, template.coverage_radius_m
        )
        cov_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(rows, minlength=n_ue)))
        ).astype(np.int64)

        if len(rows) and template.services:
            ue_service_idx = np.array(
                [self._service_index[ue.service_id] for ue in ues],
                dtype=np.intp,
            )
            keep = self._hosting_matrix[ue_service_idx[rows], cols]
        else:
            keep = np.zeros(len(rows), dtype=bool)
        cand_rows = rows[keep]
        cand_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(cand_rows, minlength=n_ue)))
        ).astype(np.int64)

        for name, value in (
            ("_cov_indptr", cov_indptr),
            ("_cov_cols", cols),
            ("_cov_dists", dists),
            ("_cand_indptr", cand_indptr),
            ("_cand_cols", cols[keep]),
            ("_cand_dists", dists[keep]),
            ("_distances", None),
            ("_candidate_mask", None),
            ("_candidates", None),
        ):
            object.__setattr__(clone, name, value)
        return clone
