"""Workload generation: UE demands per the paper's simulation setup.

§VI.A fixes, per UE: a uniformly chosen requested service, a CRU demand
``c_j^u ~ U{3..5}``, a rate demand ``w_u ~ U[2, 6] Mbps``, and 10 dBm
transmit power.  :class:`WorkloadModel` captures those distributions with
configurable bounds so ablations can stress other regimes (e.g. heavy
tasks or skewed service popularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.model.entities import UserEquipment
from repro.model.geometry import Point

__all__ = ["WorkloadModel", "generate_user_equipments"]


@dataclass(frozen=True, slots=True)
class WorkloadModel:
    """Distributions for per-UE demands.

    ``service_popularity`` optionally skews which service a UE requests;
    when ``None`` all services are equally likely (the paper's setting).
    """

    cru_demand_min: int = 3
    cru_demand_max: int = 5
    rate_demand_min_bps: float = 2e6
    rate_demand_max_bps: float = 6e6
    tx_power_dbm: float = 10.0
    service_popularity: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.cru_demand_min <= 0 or self.cru_demand_max < self.cru_demand_min:
            raise ConfigurationError(
                f"invalid CRU demand range "
                f"[{self.cru_demand_min}, {self.cru_demand_max}]"
            )
        if (
            self.rate_demand_min_bps <= 0
            or self.rate_demand_max_bps < self.rate_demand_min_bps
        ):
            raise ConfigurationError(
                f"invalid rate demand range "
                f"[{self.rate_demand_min_bps}, {self.rate_demand_max_bps}]"
            )
        if self.service_popularity is not None:
            weights = np.asarray(self.service_popularity, dtype=float)
            if weights.size == 0 or np.any(weights < 0) or weights.sum() <= 0:
                raise ConfigurationError(
                    f"invalid service_popularity {self.service_popularity!r}"
                )

    def draw_service(self, service_count: int, rng: np.random.Generator) -> int:
        """Pick the requested service id for one UE."""
        if service_count <= 0:
            raise ConfigurationError("service_count must be > 0")
        if self.service_popularity is None:
            return int(rng.integers(service_count))
        weights = np.asarray(self.service_popularity, dtype=float)
        if weights.size != service_count:
            raise ConfigurationError(
                f"service_popularity has {weights.size} entries "
                f"but there are {service_count} services"
            )
        probabilities = weights / weights.sum()
        return int(rng.choice(service_count, p=probabilities))

    def draw_cru_demand(self, rng: np.random.Generator) -> int:
        """Draw ``c_j^u`` (integer, inclusive bounds)."""
        return int(rng.integers(self.cru_demand_min, self.cru_demand_max + 1))

    def draw_rate_demand_bps(self, rng: np.random.Generator) -> float:
        """Draw ``w_u`` in bits/s."""
        return float(
            rng.uniform(self.rate_demand_min_bps, self.rate_demand_max_bps)
        )


def generate_user_equipments(
    positions: Sequence[Point],
    sp_count: int,
    service_count: int,
    workload: WorkloadModel,
    rng: np.random.Generator,
    start_ue_id: int = 0,
) -> list[UserEquipment]:
    """Materialize UEs at the given positions with sampled demands.

    Each UE subscribes to a uniformly random SP (the paper gives no
    subscription skew) and requests one service per ``workload``.
    """
    if sp_count <= 0:
        raise ConfigurationError(f"sp_count must be > 0, got {sp_count}")
    ues: list[UserEquipment] = []
    for offset, position in enumerate(positions):
        ues.append(
            UserEquipment(
                ue_id=start_ue_id + offset,
                sp_id=int(rng.integers(sp_count)),
                position=position,
                service_id=workload.draw_service(service_count, rng),
                cru_demand=workload.draw_cru_demand(rng),
                rate_demand_bps=workload.draw_rate_demand_bps(rng),
                tx_power_dbm=workload.tx_power_dbm,
            )
        )
    return ues
