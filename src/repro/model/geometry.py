"""Planar geometry primitives used by the network model.

The paper places base stations and user equipments on a flat 2-D region
(regular grid or a 1200 m x 1200 m rectangle).  Everything here works in
**meters**; radio-level code converts to kilometers where the path-loss
formula requires it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Point",
    "Rectangle",
    "SpatialGrid",
    "distance_m",
    "pairwise_distances_m",
]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane, coordinates in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)`` meters."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Rectangle:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ConfigurationError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @classmethod
    def square(cls, side_m: float) -> "Rectangle":
        """A ``side_m x side_m`` square anchored at the origin."""
        if side_m <= 0:
            raise ConfigurationError(f"square side must be positive, got {side_m}")
        return cls(0.0, 0.0, side_m, side_m)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the rectangle (borders included)."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def sample_uniform(self, rng: np.random.Generator, count: int) -> list[Point]:
        """Draw ``count`` points uniformly at random inside the rectangle."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        xs = rng.uniform(self.x_min, self.x_max, size=count)
        ys = rng.uniform(self.y_min, self.y_max, size=count)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


class SpatialGrid:
    """Uniform-cell spatial index over a fixed point set for radius queries.

    Buckets the indexed points (typically BS positions) into square cells
    of ``cell_size_m``; a radius query then only examines the buckets a
    disc of that radius can touch, so batch-querying ``m`` points against
    ``n`` indexed points costs O(m + n + pairs) instead of the dense
    O(m * n) of :func:`pairwise_distances_m`.

    Distances are computed with the same float64 ``np.hypot`` applied to
    the same coordinate differences as the dense path, so query results
    are bit-identical to filtering a dense distance matrix — the grid and
    dense geometry modes of ``MECNetwork`` rely on that.
    """

    __slots__ = ("_xy", "_cell_size", "_buckets")

    def __init__(
        self, points: Sequence[Point] | np.ndarray, cell_size_m: float
    ) -> None:
        if cell_size_m <= 0:
            raise ConfigurationError(
                f"cell_size_m must be > 0, got {cell_size_m}"
            )
        xy = _as_xy(points)
        self._xy = xy
        self._cell_size = float(cell_size_m)
        buckets: dict[tuple[int, int], np.ndarray] = {}
        if len(xy):
            cells = np.floor(xy / self._cell_size).astype(np.int64)
            # Group point indices by cell via one lexsort; each bucket
            # keeps its indices ascending so query output column order
            # matches the dense row-major nonzero() order after sorting.
            order = np.lexsort((cells[:, 1], cells[:, 0]))
            sorted_cells = cells[order]
            boundaries = np.nonzero(
                np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
            )[0] + 1
            starts = np.concatenate(([0], boundaries, [len(order)]))
            for i in range(len(starts) - 1):
                lo, hi = starts[i], starts[i + 1]
                key = (int(sorted_cells[lo, 0]), int(sorted_cells[lo, 1]))
                buckets[key] = np.sort(order[lo:hi])
        self._buckets = buckets

    def __len__(self) -> int:
        return len(self._xy)

    def query_radius(
        self,
        queries: Sequence[Point] | np.ndarray,
        radius_m: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (query, point) pairs within ``radius_m`` of each other.

        Returns ``(rows, cols, dists)`` — parallel arrays with ``rows``
        indexing into ``queries`` and ``cols`` into the indexed points —
        sorted lexicographically by ``(row, col)``, i.e. exactly the
        order ``np.nonzero(dense_distances <= radius)`` would produce.
        """
        if radius_m <= 0:
            raise ConfigurationError(
                f"radius_m must be > 0, got {radius_m}"
            )
        q_xy = _as_xy(queries)
        if len(q_xy) == 0 or len(self._xy) == 0:
            empty_i = np.empty(0, dtype=np.intp)
            return empty_i, empty_i.copy(), np.empty(0, dtype=float)
        reach = int(math.ceil(radius_m / self._cell_size))
        q_cells = np.floor(q_xy / self._cell_size).astype(np.int64)
        # Process queries grouped by their cell: one candidate gather and
        # one small dense distance block per occupied query cell.
        order = np.lexsort((q_cells[:, 1], q_cells[:, 0]))
        sorted_cells = q_cells[order]
        boundaries = np.nonzero(
            np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
        )[0] + 1
        starts = np.concatenate(([0], boundaries, [len(order)]))
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        buckets = self._buckets
        for i in range(len(starts) - 1):
            lo, hi = starts[i], starts[i + 1]
            cx, cy = int(sorted_cells[lo, 0]), int(sorted_cells[lo, 1])
            neighbor_parts = [
                bucket
                for dx in range(-reach, reach + 1)
                for dy in range(-reach, reach + 1)
                if (bucket := buckets.get((cx + dx, cy + dy))) is not None
            ]
            if not neighbor_parts:
                continue
            cand = np.sort(np.concatenate(neighbor_parts))
            group_rows = order[lo:hi]
            q_block = q_xy[group_rows]
            t_block = self._xy[cand]
            dists = np.hypot(
                q_block[:, 0][:, None] - t_block[:, 0][None, :],
                q_block[:, 1][:, None] - t_block[:, 1][None, :],
            )
            keep = dists <= radius_m
            block_rows, block_cols = np.nonzero(keep)
            if len(block_rows):
                rows_parts.append(group_rows[block_rows])
                cols_parts.append(cand[block_cols])
                dist_parts.append(dists[block_rows, block_cols])
        if not rows_parts:
            empty_i = np.empty(0, dtype=np.intp)
            return empty_i, empty_i.copy(), np.empty(0, dtype=float)
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        dists = np.concatenate(dist_parts)
        final = np.lexsort((cols, rows))
        return rows[final], cols[final], dists[final]


def _as_xy(points: Sequence[Point] | np.ndarray) -> np.ndarray:
    """Coerce a point collection to a float64 ``(n, 2)`` array."""
    if isinstance(points, np.ndarray):
        xy = np.asarray(points, dtype=float)
        if xy.ndim != 2 or (len(xy) and xy.shape[1] != 2):
            raise ConfigurationError(
                f"expected an (n, 2) coordinate array, got shape {xy.shape}"
            )
        return xy.reshape(-1, 2)
    return np.asarray(
        [p.as_tuple() for p in points], dtype=float
    ).reshape(-1, 2)


def distance_m(a: Point, b: Point) -> float:
    """Euclidean distance between two points, in meters."""
    return a.distance_to(b)


def pairwise_distances_m(
    sources: Sequence[Point] | Iterable[Point],
    targets: Sequence[Point] | Iterable[Point],
) -> np.ndarray:
    """Distance matrix (meters) between two point collections.

    Returns an array of shape ``(len(sources), len(targets))``.  This is the
    vectorized building block used when precomputing UE--BS link metrics for
    a whole scenario at once.
    """
    src = np.asarray([p.as_tuple() for p in sources], dtype=float)
    tgt = np.asarray([p.as_tuple() for p in targets], dtype=float)
    if src.size == 0 or tgt.size == 0:
        return np.zeros((len(src), len(tgt)))
    diff = src[:, None, :] - tgt[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])
