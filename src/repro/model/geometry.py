"""Planar geometry primitives used by the network model.

The paper places base stations and user equipments on a flat 2-D region
(regular grid or a 1200 m x 1200 m rectangle).  Everything here works in
**meters**; radio-level code converts to kilometers where the path-loss
formula requires it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Point", "Rectangle", "distance_m", "pairwise_distances_m"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane, coordinates in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)`` meters."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Rectangle:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ConfigurationError(
                f"degenerate rectangle: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @classmethod
    def square(cls, side_m: float) -> "Rectangle":
        """A ``side_m x side_m`` square anchored at the origin."""
        if side_m <= 0:
            raise ConfigurationError(f"square side must be positive, got {side_m}")
        return cls(0.0, 0.0, side_m, side_m)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the rectangle (borders included)."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def sample_uniform(self, rng: np.random.Generator, count: int) -> list[Point]:
        """Draw ``count`` points uniformly at random inside the rectangle."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        xs = rng.uniform(self.x_min, self.x_max, size=count)
        ys = rng.uniform(self.y_min, self.y_max, size=count)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def distance_m(a: Point, b: Point) -> float:
    """Euclidean distance between two points, in meters."""
    return a.distance_to(b)


def pairwise_distances_m(
    sources: Sequence[Point] | Iterable[Point],
    targets: Sequence[Point] | Iterable[Point],
) -> np.ndarray:
    """Distance matrix (meters) between two point collections.

    Returns an array of shape ``(len(sources), len(targets))``.  This is the
    vectorized building block used when precomputing UE--BS link metrics for
    a whole scenario at once.
    """
    src = np.asarray([p.as_tuple() for p in sources], dtype=float)
    tgt = np.asarray([p.as_tuple() for p in targets], dtype=float)
    if src.size == 0 or tgt.size == 0:
        return np.zeros((len(src), len(tgt)))
    diff = src[:, None, :] - tgt[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])
