"""Base-station and UE placement strategies.

The paper evaluates two BS layouts (§VI.A):

* **regular** — BSs on a square grid with 300 m inter-site distance;
* **random**  — BSs uniform at random in a 1200 m x 1200 m rectangle.

Both are provided, plus a clustered (hot-spot) placement useful for
stress-testing allocators beyond the paper's scenarios.  All placements
are driven by a :class:`numpy.random.Generator` so scenarios are exactly
reproducible from a seed.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.model.geometry import Point, Rectangle

__all__ = [
    "PlacementStrategy",
    "RegularGridPlacement",
    "UniformRandomPlacement",
    "ClusteredPlacement",
    "scatter_ues",
]


class PlacementStrategy(Protocol):
    """Anything that can produce ``count`` BS positions inside ``region``."""

    def place(
        self, region: Rectangle, count: int, rng: np.random.Generator
    ) -> list[Point]:
        """Return ``count`` positions inside ``region``."""
        ...


class RegularGridPlacement:
    """BSs on a square grid with a fixed inter-site distance.

    The grid is centered in the region.  If ``count`` does not fill the
    last grid row, positions are assigned row-major, so the layout stays
    deterministic regardless of the RNG (which is accepted but unused).
    """

    def __init__(self, inter_site_distance_m: float = 300.0) -> None:
        if inter_site_distance_m <= 0:
            raise ConfigurationError(
                f"inter-site distance must be > 0, got {inter_site_distance_m}"
            )
        self.inter_site_distance_m = inter_site_distance_m

    def place(
        self, region: Rectangle, count: int, rng: np.random.Generator
    ) -> list[Point]:
        """Grid positions, row-major, centered in the region."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        cols = max(1, math.ceil(math.sqrt(count)))
        rows = math.ceil(count / cols)
        d = self.inter_site_distance_m
        grid_width = (cols - 1) * d
        grid_height = (rows - 1) * d
        if grid_width > region.width or grid_height > region.height:
            raise ConfigurationError(
                f"a {rows}x{cols} grid at {d} m spacing does not fit in a "
                f"{region.width:.0f} m x {region.height:.0f} m region"
            )
        origin_x = region.center.x - grid_width / 2
        origin_y = region.center.y - grid_height / 2
        points: list[Point] = []
        for index in range(count):
            row, col = divmod(index, cols)
            points.append(Point(origin_x + col * d, origin_y + row * d))
        return points


class UniformRandomPlacement:
    """BSs uniform at random in the region (the paper's second layout)."""

    def __init__(self, min_separation_m: float = 0.0) -> None:
        if min_separation_m < 0:
            raise ConfigurationError(
                f"min_separation_m must be >= 0, got {min_separation_m}"
            )
        self.min_separation_m = min_separation_m

    def place(
        self, region: Rectangle, count: int, rng: np.random.Generator
    ) -> list[Point]:
        """Uniform draws, rejection-sampled when a separation is set."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if self.min_separation_m == 0.0:
            return region.sample_uniform(rng, count)
        # Rejection-sample to keep BSs apart; bail out rather than loop
        # forever if the separation is infeasible for the region size.
        points: list[Point] = []
        attempts = 0
        max_attempts = 1000 * max(count, 1)
        while len(points) < count:
            attempts += 1
            if attempts > max_attempts:
                raise ConfigurationError(
                    f"could not place {count} BSs with "
                    f"{self.min_separation_m} m separation in region"
                )
            (candidate,) = region.sample_uniform(rng, 1)
            if all(
                candidate.distance_to(p) >= self.min_separation_m for p in points
            ):
                points.append(candidate)
        return points


class ClusteredPlacement:
    """BSs drawn around Gaussian hot-spots (not in the paper; for ablations).

    ``cluster_count`` centers are placed uniformly, then each BS is attached
    to a uniformly chosen center with a Gaussian offset of standard deviation
    ``spread_m``, clipped to the region.
    """

    def __init__(self, cluster_count: int = 3, spread_m: float = 150.0) -> None:
        if cluster_count <= 0:
            raise ConfigurationError(
                f"cluster_count must be > 0, got {cluster_count}"
            )
        if spread_m <= 0:
            raise ConfigurationError(f"spread_m must be > 0, got {spread_m}")
        self.cluster_count = cluster_count
        self.spread_m = spread_m

    def place(
        self, region: Rectangle, count: int, rng: np.random.Generator
    ) -> list[Point]:
        """Gaussian draws around uniformly placed hot-spot centers."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        centers = region.sample_uniform(rng, self.cluster_count)
        points: list[Point] = []
        for _ in range(count):
            center = centers[int(rng.integers(self.cluster_count))]
            x = float(np.clip(
                rng.normal(center.x, self.spread_m), region.x_min, region.x_max
            ))
            y = float(np.clip(
                rng.normal(center.y, self.spread_m), region.y_min, region.y_max
            ))
            points.append(Point(x, y))
        return points


def scatter_ues(
    region: Rectangle, count: int, rng: np.random.Generator
) -> list[Point]:
    """UE positions: uniform at random in the region (paper §VI.A)."""
    return region.sample_uniform(rng, count)


def make_placement(name: str, **kwargs: float) -> PlacementStrategy:
    """Factory mapping config strings to placement strategies.

    ``name`` is one of ``"regular"``, ``"random"``, ``"clustered"``.
    """
    factories: dict[str, type] = {
        "regular": RegularGridPlacement,
        "random": UniformRandomPlacement,
        "clustered": ClusteredPlacement,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown placement {name!r}; expected one of {sorted(factories)}"
        ) from None
    return factory(**kwargs)


__all__.append("make_placement")


def coverage_overlap_count(
    bs_positions: Sequence[Point], ue_position: Point, radius_m: float
) -> int:
    """How many BSs cover ``ue_position`` at coverage radius ``radius_m``.

    Handy for validating that a placement produces the dense multi-coverage
    regime the paper assumes.
    """
    return sum(1 for p in bs_positions if p.distance_to(ue_position) <= radius_m)


__all__.append("coverage_overlap_count")
