"""Network model: geometry, entities, placement, and workload generation."""

from repro.model.entities import BaseStation, Service, ServiceProvider, UserEquipment
from repro.model.geometry import Point, Rectangle, distance_m, pairwise_distances_m
from repro.model.network import MECNetwork
from repro.model.placement import (
    ClusteredPlacement,
    PlacementStrategy,
    RegularGridPlacement,
    UniformRandomPlacement,
    coverage_overlap_count,
    make_placement,
    scatter_ues,
)
from repro.model.workload import WorkloadModel, generate_user_equipments

__all__ = [
    "BaseStation",
    "ClusteredPlacement",
    "MECNetwork",
    "PlacementStrategy",
    "Point",
    "Rectangle",
    "RegularGridPlacement",
    "Service",
    "ServiceProvider",
    "UniformRandomPlacement",
    "UserEquipment",
    "WorkloadModel",
    "coverage_overlap_count",
    "distance_m",
    "generate_user_equipments",
    "make_placement",
    "pairwise_distances_m",
    "scatter_ues",
]
