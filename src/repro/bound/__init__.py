"""Optimality-gap certification for the TPM problem (Def. 1).

The exact ILP (:class:`repro.baselines.optimal.OptimalILPAllocator`)
refuses instances beyond a few tens of thousands of candidate links.
This package certifies how far a *feasible* allocation (DMRA, a
baseline, a sharded run) sits from optimal at any scale, via two upper
bounds on the TPM objective:

``lp``
    The LP relaxation over the exact Eq. 12--15 constraint matrix
    (single source of truth shared with the ILP via
    :func:`repro.baselines.optimal.compile_tpm_constraints`).
``lagrangian``
    A Lagrangian decomposition that dualizes the per-BS coupling
    constraints (Eqs. 12 and 14).  What remains is one independent
    closed-form subproblem per UE, evaluated with segmented array
    reductions over the same CSR candidate layout as
    :mod:`repro.core.soa` -- so the bound runs at 100k-UE scale in
    memory-bounded UE chunks.

Any nonnegative multiplier vector yields a valid bound, so a truncated
subgradient run still certifies.  See ``docs/bounds.md`` for the
duality argument and tightness caveats.
"""

from repro.bound.certificate import GapCertificate, certify_gap
from repro.bound.lagrangian import LagrangianOutcome, lagrangian_bound
from repro.bound.lp import lp_bound
from repro.bound.problem import BoundProblem, compile_bound_problem

__all__ = [
    "BoundProblem",
    "GapCertificate",
    "LagrangianOutcome",
    "certify_gap",
    "compile_bound_problem",
    "lagrangian_bound",
    "lp_bound",
]
