"""Lagrangian dual upper bound on the TPM objective.

Dualize the per-BS coupling constraints -- the (BS, service) CRU rows
(Eq. 12) with multipliers ``lam >= 0`` and the per-BS RRB rows (Eq. 14)
with multipliers ``nu >= 0``.  Only the per-UE "at most one BS" rows
(Eq. 15) remain, so the relaxed problem splits into one independent
subproblem per UE with a closed-form solution: take the candidate with
the largest *reduced* profit

    r(u, i) = profit(u, i) - lam[i, j_u] * c^u - nu[i] * n_{u,i}

if that maximum is positive, else take nothing.  The dual function

    L(lam, nu) = sum_u max(0, max_i r(u, i)) + lam . cap_cru + nu . cap_rrb

upper-bounds the ILP optimum for *every* ``lam, nu >= 0`` (weak
duality), so any truncation of the subgradient descent below still
certifies.  The inner solve is a segmented ``np.maximum.reduceat``
over the CSR pair arrays, processed in bounded UE chunks -- the same
per-UE decomposition the shard planner exploits, which is what lets
the bound run at 100k-UE scale where the MILP refuses.

Because each inner subproblem is integral (choose at most one
candidate), the best achievable dual value equals the LP relaxation
optimum -- the bound cannot beat the LP, only approach it from above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bound.problem import BoundProblem

__all__ = ["LagrangianOutcome", "lagrangian_bound"]


@dataclass(frozen=True)
class LagrangianOutcome:
    """Result of a (possibly truncated) subgradient run.

    ``upper_bound`` is the lowest dual value seen -- a certified upper
    bound on the TPM optimum.  ``initial_bound`` is the iteration-0
    value at ``lam = nu = 0``: the capacity-blind bound
    ``sum_u max(0, best profit)``, useful as a tightness yardstick.
    """

    upper_bound: float
    initial_bound: float
    iterations: int
    converged: bool


def _inner_solve(
    problem: BoundProblem,
    lam: np.ndarray,
    nu: np.ndarray,
    chunk_ues: int,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Closed-form per-UE subproblems under multipliers ``lam, nu``.

    Returns the summed positive segment maxima plus the CRU / RRB usage
    of the chosen pairs (the subgradient ingredients).  Temporaries are
    bounded by the widest UE chunk, not the full pair count.
    """
    indptr = problem.indptr
    n_ue = problem.n_ue
    total = 0.0
    used_cru = np.zeros(problem.cap_cru.size, dtype=np.float64)
    used_rrb = np.zeros(problem.cap_rrb.size, dtype=np.float64)

    for lo in range(0, n_ue, chunk_ues):
        hi = min(lo + chunk_ues, n_ue)
        a, b = int(indptr[lo]), int(indptr[hi])
        if a == b:
            continue
        rows = problem.row_of_pair[a:b] - lo
        reduced = (
            problem.pair_profit[a:b]
            - lam[problem.pair_flat[a:b]] * problem.pair_cru[a:b]
            - nu[problem.pair_bs[a:b]] * problem.pair_rrb[a:b]
        )

        counts = indptr[lo + 1 : hi + 1] - indptr[lo:hi]
        nonempty = counts > 0
        starts = (indptr[lo:hi] - a)[nonempty]
        seg_max = np.maximum.reduceat(reduced, starts)
        total += float(seg_max[seg_max > 0.0].sum())

        # First pair attaining each row's max; keep only positive rows.
        seg_full = np.full(hi - lo, -np.inf)
        seg_full[nonempty] = seg_max
        hit = np.flatnonzero(reduced == seg_full[rows])
        if hit.size:
            rows_hit = rows[hit]
            first = np.ones(hit.size, dtype=bool)
            first[1:] = rows_hit[1:] != rows_hit[:-1]
            chosen = hit[first]
            chosen = chosen[seg_full[rows[chosen]] > 0.0] + a
            if chosen.size:
                used_cru += np.bincount(
                    problem.pair_flat[chosen],
                    weights=problem.pair_cru[chosen],
                    minlength=used_cru.size,
                )
                used_rrb += np.bincount(
                    problem.pair_bs[chosen],
                    weights=problem.pair_rrb[chosen],
                    minlength=used_rrb.size,
                )
    return total, used_cru, used_rrb


def lagrangian_bound(
    problem: BoundProblem,
    *,
    max_iterations: int = 150,
    target: float | None = None,
    step_scale: float = 1.0,
    stall_limit: int = 8,
    min_scale: float = 1e-4,
    chunk_ues: int = 65536,
) -> LagrangianOutcome:
    """Projected subgradient descent on the Lagrangian dual.

    Polyak steps against ``target`` (the incumbent feasible profit when
    known, else 0); ``step_scale`` halves after ``stall_limit``
    non-improving iterations and the run stops once it drops below
    ``min_scale``.  The *best* (lowest) dual value is returned, so the
    bound is monotone in iteration count and valid at any truncation.
    """
    lam = np.zeros(problem.cap_cru.size, dtype=np.float64)
    nu = np.zeros(problem.cap_rrb.size, dtype=np.float64)
    goal = 0.0 if target is None else float(target)

    if max_iterations <= 0:
        # Zero budget still certifies: at zero multipliers the dual is
        # the capacity-blind sum of each UE's best positive profit.
        inner, _, _ = _inner_solve(problem, lam, nu, chunk_ues)
        return LagrangianOutcome(
            upper_bound=float(inner),
            initial_bound=float(inner),
            iterations=0,
            converged=False,
        )

    best = np.inf
    initial = 0.0
    iterations = 0
    converged = False
    scale = float(step_scale)
    stall = 0

    for k in range(max_iterations):
        iterations = k + 1
        inner, used_cru, used_rrb = _inner_solve(problem, lam, nu, chunk_ues)
        dual = (
            inner
            + float(lam @ problem.cap_cru)
            + float(nu @ problem.cap_rrb)
        )
        if k == 0:
            initial = dual
        if not np.isfinite(best) or dual < best - 1e-9 * max(1.0, abs(best)):
            best = dual
            stall = 0
        else:
            stall += 1
            if stall >= stall_limit:
                scale *= 0.5
                stall = 0
        if scale < min_scale:
            break

        g_cru = problem.cap_cru - used_cru
        g_rrb = problem.cap_rrb - used_rrb
        # Projected subgradient: a slack capacity whose multiplier is
        # already pinned at zero cannot move, so drop it from the step
        # direction -- otherwise the norm is dominated by the many
        # uncontended (BS, service) slots and the Polyak step collapses.
        g_cru[(lam == 0.0) & (g_cru > 0.0)] = 0.0
        g_rrb[(nu == 0.0) & (g_rrb > 0.0)] = 0.0
        norm_sq = float(g_cru @ g_cru) + float(g_rrb @ g_rrb)
        if norm_sq == 0.0:
            # No overloaded capacity and no positive multiplier with
            # slack: the relaxed solution is feasible and complementary,
            # hence optimal.
            converged = True
            break
        gap_to_goal = dual - goal
        if gap_to_goal <= 0.0:
            # The bound already meets the incumbent -- zero certified gap.
            converged = True
            break
        step = scale * gap_to_goal / norm_sq
        np.maximum(lam - step * g_cru, 0.0, out=lam)
        np.maximum(nu - step * g_rrb, 0.0, out=nu)

    upper = min(best, initial) if np.isfinite(best) else initial
    return LagrangianOutcome(
        upper_bound=float(upper),
        initial_bound=float(initial),
        iterations=iterations,
        converged=converged,
    )
