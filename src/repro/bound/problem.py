"""Array-form compile of the TPM bound problem.

Lifts the feasible candidate links of a :class:`~repro.radio.channel.RadioMap`
into the CSR layout used by :mod:`repro.core.soa` -- one contiguous row
of pairs per UE -- plus the per-(BS, service) CRU capacities (Eq. 12)
and per-BS RRB capacities (Eq. 14) the Lagrangian dualizes.  Profits
use the same batched Eq. 9--10 price terms as the matching kernel, so
the bound and the allocator price every link identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.soa import _price_term_array
from repro.econ.pricing import PaperPricing, PricingPolicy
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["BoundProblem", "compile_bound_problem"]


@dataclass(frozen=True)
class BoundProblem:
    """The TPM instance as flat arrays, grouped by UE (CSR rows).

    ``indptr`` has length ``n_ue + 1``; pairs of row ``u`` live at
    ``[indptr[u], indptr[u + 1])``.  ``pair_flat`` indexes the
    (BS, service) CRU capacity vector ``cap_cru`` (Eq. 12 rows) as
    ``bs_pool_index * n_services + service_index``; ``pair_bs``
    indexes the per-BS RRB capacity vector ``cap_rrb`` (Eq. 14 rows).
    """

    ue_ids: np.ndarray  # (n_ue,) sorted UE ids
    indptr: np.ndarray  # (n_ue + 1,) CSR row pointers
    row_of_pair: np.ndarray  # (n_pairs,) row index of each pair
    pair_bs: np.ndarray  # (n_pairs,) BS pool index
    pair_flat: np.ndarray  # (n_pairs,) (BS, service) capacity index
    pair_profit: np.ndarray  # (n_pairs,) marginal profit, Eq. 5--8
    pair_cru: np.ndarray  # (n_pairs,) c^u, CRU demand
    pair_rrb: np.ndarray  # (n_pairs,) n_{u,i}, RRB demand
    cap_cru: np.ndarray  # (n_bs * n_svc,) c_{i,j}, Eq. 12 RHS
    cap_rrb: np.ndarray  # (n_bs,) N_i, Eq. 14 RHS
    bs_ids: np.ndarray  # (n_bs,) BS ids in pool order
    service_ids: tuple[int, ...]  # service ids in capacity-index order

    @property
    def n_ue(self) -> int:
        return len(self.ue_ids)

    @property
    def n_bs(self) -> int:
        return len(self.bs_ids)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_profit)

    def estimated_bytes(self) -> int:
        """Rough footprint of the pair arrays (capacity vectors are tiny)."""
        per_pair = (
            self.row_of_pair.itemsize
            + self.pair_bs.itemsize
            + self.pair_flat.itemsize
            + self.pair_profit.itemsize
            + self.pair_cru.itemsize
            + self.pair_rrb.itemsize
        )
        return int(self.n_pairs * per_pair)


def compile_bound_problem(
    network: MECNetwork,
    radio_map: RadioMap,
    pricing: PricingPolicy | None = None,
) -> BoundProblem:
    """Compile the feasible candidate links into a :class:`BoundProblem`.

    Feasibility matches ``LinkMetrics.feasible`` in array form
    (``rrb_demands >= 1`` and ``per_rrb_rates_bps > 0``); profits match
    :func:`repro.econ.accounting.marginal_profit` bit for bit.
    """
    pricing = pricing if pricing is not None else PaperPricing()

    base_stations = tuple(network.base_stations)
    n_bs = len(base_stations)
    bs_id_arr = np.array([bs.bs_id for bs in base_stations], dtype=np.int64)
    bs_sp = np.array([bs.sp_id for bs in base_stations], dtype=np.int64)

    target_ids = sorted(ue.ue_id for ue in network.user_equipments)
    n_ue = len(target_ids)
    ues = [network.user_equipment(ue_id) for ue_id in target_ids]
    service_ids = sorted(
        {s for bs in base_stations for s in bs.cru_capacity}
        | {ue.service_id for ue in ues}
    )
    svc_index = {sid: k for k, sid in enumerate(service_ids)}
    n_svc = len(service_ids)

    cap_cru = np.zeros(n_bs * n_svc, dtype=np.float64)
    for b, bs in enumerate(base_stations):
        for sid, crus in bs.cru_capacity.items():
            cap_cru[b * n_svc + svc_index[sid]] = float(crus)
    cap_rrb = np.array(
        [float(bs.rrb_capacity) for bs in base_stations], dtype=np.float64
    )

    ue_svc = np.array([svc_index[ue.service_id] for ue in ues], dtype=np.int64)
    ue_cru = np.array([ue.cru_demand for ue in ues], dtype=np.int64)
    ue_sp = np.array([ue.sp_id for ue in ues], dtype=np.int64)
    margin_of_sp = {
        sp.sp_id: sp.cru_price - sp.other_cost for sp in network.providers
    }
    ue_margin = np.array(
        [margin_of_sp[ue.sp_id] for ue in ues], dtype=np.float64
    )

    # Gather each target UE's radio-map columns (soa.py CSR idiom),
    # then drop infeasible pairs and rebuild the row pointers.
    slices = [radio_map.ue_slice(ue_id) for ue_id in target_ids]
    counts = np.array([stop - start for start, stop in slices], dtype=np.int64)
    row_starts = np.array([start for start, _ in slices], dtype=np.int64)
    n_raw = int(counts.sum())
    row_of_pair = np.repeat(np.arange(n_ue, dtype=np.int64), counts)
    raw_indptr = np.concatenate(([0], np.cumsum(counts)))
    sel = (
        np.repeat(row_starts, counts)
        + np.arange(n_raw, dtype=np.int64)
        - np.repeat(raw_indptr[:-1], counts)
    )

    pair_rrb = radio_map.rrb_demands[sel]
    feasible = (pair_rrb >= 1) & (radio_map.per_rrb_rates_bps[sel] > 0)
    sel = sel[feasible]
    row_of_pair = row_of_pair[feasible]
    pair_rrb = pair_rrb[feasible].astype(np.float64)
    counts = np.bincount(row_of_pair, minlength=n_ue)
    indptr = np.concatenate(([0], np.cumsum(counts)))

    link_bs_ids = radio_map.bs_ids[sel]
    pair_dist = radio_map.distances_m[sel]
    id_order = np.argsort(bs_id_arr)
    pair_bs = id_order[np.searchsorted(bs_id_arr[id_order], link_bs_ids)]

    pair_same_sp = ue_sp[row_of_pair] == bs_sp[pair_bs]
    price = _price_term_array(pricing, pair_dist, pair_same_sp)
    pair_cru = ue_cru[row_of_pair].astype(np.float64)
    pair_profit = pair_cru * (ue_margin[row_of_pair] - price)
    pair_flat = pair_bs * n_svc + ue_svc[row_of_pair]

    return BoundProblem(
        ue_ids=np.array(target_ids, dtype=np.int64),
        indptr=indptr,
        row_of_pair=row_of_pair,
        pair_bs=pair_bs,
        pair_flat=pair_flat,
        pair_profit=pair_profit,
        pair_cru=pair_cru,
        pair_rrb=pair_rrb,
        cap_cru=cap_cru,
        cap_rrb=cap_rrb,
        bs_ids=bs_id_arr,
        service_ids=tuple(service_ids),
    )
