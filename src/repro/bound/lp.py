"""LP relaxation upper bound on the TPM objective.

Delegates to :class:`repro.baselines.optimal.OptimalILPAllocator` with
``relaxed=True``: the *same* Eq. 12--15 constraint matrix the exact ILP
solves, with integrality dropped, so LP bound and ILP optimum are
always compared over identical rows.  HiGHS solves the relaxation in
polynomial time, but the matrix still materializes one column per
candidate link -- for instances past ``max_variables`` use
:func:`repro.bound.lagrangian.lagrangian_bound`, which converges to the
same value (per-UE integrality) without ever forming the matrix.
"""

from __future__ import annotations

from repro.baselines.optimal import OptimalILPAllocator
from repro.econ.pricing import PricingPolicy
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["lp_bound"]


def lp_bound(
    network: MECNetwork,
    radio_map: RadioMap,
    pricing: PricingPolicy | None = None,
    *,
    max_variables: int = 500_000,
    time_limit_s: float | None = 300.0,
) -> float:
    """The LP relaxation value: a certified upper bound on any assignment."""
    relaxation = OptimalILPAllocator(
        pricing=pricing,
        max_variables=max_variables,
        time_limit_s=time_limit_s,
        relaxed=True,
    )
    return relaxation.objective_bound(network, radio_map)
