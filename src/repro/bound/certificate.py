"""Gap certificates: one record tying an upper bound to an incumbent.

``gap_fraction`` is the headline quantity gated in CI: the certified
relative distance between a feasible allocation's profit and the TPM
optimum, ``(upper - profit) / upper``.  Because the upper bound is
valid regardless of how it was produced (weak duality / LP relaxation),
the true optimality gap is *at most* ``gap_fraction``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bound.lagrangian import lagrangian_bound
from repro.bound.lp import lp_bound
from repro.bound.problem import compile_bound_problem
from repro.econ.pricing import PricingPolicy
from repro.errors import ConfigurationError
from repro.model.network import MECNetwork
from repro.radio.channel import RadioMap

__all__ = ["GapCertificate", "certify_gap"]

_METHODS = ("lp", "lagrangian")


@dataclass(frozen=True)
class GapCertificate:
    """A certified optimality gap for one (scenario, incumbent) pair."""

    method: str  # "lp" | "lagrangian"
    upper_bound: float
    incumbent_profit: float
    iterations: int  # 1 for the LP (a single solve)
    wall_time_s: float
    converged: bool

    @property
    def gap_fraction(self) -> float:
        """Certified ceiling on the relative optimality gap.

        Clamped to ``[0, inf)``; a nonpositive upper bound (nothing
        profitable to assign) certifies a zero gap by convention.
        """
        if self.upper_bound <= 0.0:
            return 0.0
        return max(
            0.0,
            (self.upper_bound - self.incumbent_profit) / self.upper_bound,
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping of every field plus ``gap_fraction``."""
        return {
            "method": self.method,
            "upper_bound": self.upper_bound,
            "incumbent_profit": self.incumbent_profit,
            "gap_fraction": self.gap_fraction,
            "iterations": self.iterations,
            "wall_time_s": self.wall_time_s,
            "converged": self.converged,
        }


def certify_gap(
    network: MECNetwork,
    radio_map: RadioMap,
    pricing: PricingPolicy | None = None,
    *,
    incumbent_profit: float = 0.0,
    method: str = "lagrangian",
    max_iterations: int = 150,
    chunk_ues: int = 65536,
    lp_max_variables: int = 500_000,
    time_limit_s: float | None = 300.0,
) -> GapCertificate:
    """Produce a :class:`GapCertificate` for one scenario.

    ``incumbent_profit`` is the feasible profit being certified (e.g.
    the DMRA outcome's total profit); the Lagrangian also uses it as
    the Polyak target, so a good incumbent speeds convergence without
    affecting validity.
    """
    if method not in _METHODS:
        raise ConfigurationError(
            f"unknown bound method {method!r}; choose one of {_METHODS}"
        )
    started = time.perf_counter()
    if method == "lp":
        upper = lp_bound(
            network,
            radio_map,
            pricing,
            max_variables=lp_max_variables,
            time_limit_s=time_limit_s,
        )
        iterations = 1
        converged = True
    else:
        problem = compile_bound_problem(network, radio_map, pricing)
        outcome = lagrangian_bound(
            problem,
            max_iterations=max_iterations,
            target=incumbent_profit,
            chunk_ues=chunk_ues,
        )
        upper = outcome.upper_bound
        iterations = outcome.iterations
        converged = outcome.converged
    return GapCertificate(
        method=method,
        upper_bound=float(upper),
        incumbent_profit=float(incumbent_profit),
        iterations=iterations,
        wall_time_s=time.perf_counter() - started,
        converged=converged,
    )
