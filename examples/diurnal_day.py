"""A day at the edge: diurnal load through the online simulator.

Real MEC traffic is not stationary — it climbs through the morning,
peaks midday, and falls off at night.  This example compresses a "day"
into a 1200-second simulation with a sinusoidal arrival rate
(:class:`repro.dynamics.DiurnalArrivals`), runs DMRA online, and prints
the hour-by-hour picture: offered rate, edge occupancy, RRB
utilization, and when (if ever) the edge starts spilling to the cloud.

It also writes the arrival trace to CSV and replays it, demonstrating
the trace workflow (the replay reproduces the exact same outcome).

Run with::

    python examples/diurnal_day.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.dynamics import (
    ArrivalTrace,
    DiurnalArrivals,
    ExponentialHolding,
    OnlineConfig,
    read_trace_csv,
    run_online,
    write_trace_csv,
)
from repro.sim.config import ScenarioConfig

DAY_S = 1200.0  # compressed 24 h
SLOT_S = 100.0  # one "2-hour" reporting slot
BASE_RATE = 0.5
PEAK_RATE = 9.0
HOLDING_S = 120.0


def main() -> None:
    config = ScenarioConfig.paper()
    diurnal = DiurnalArrivals(
        base_rate_per_s=BASE_RATE,
        peak_rate_per_s=PEAK_RATE,
        period_s=DAY_S,
    )
    online = OnlineConfig(
        horizon_s=DAY_S,
        arrivals=diurnal,
        holding=ExponentialHolding(mean_s=HOLDING_S),
    )
    outcome = run_online(config, online, seed=7)

    print(f"compressed day: base {BASE_RATE}/s, peak {PEAK_RATE}/s, "
          f"mean holding {HOLDING_S:.0f} s")
    print(f"arrivals {outcome.arrivals}, blocked "
          f"{outcome.admitted_cloud} "
          f"({outcome.blocking_probability:.1%})\n")

    print(f"{'slot':>5} {'rate/s':>7} {'mean active':>12} {'rrb util':>9}")
    samples = outcome.edge_active.samples
    util_samples = outcome.rrb_utilization.samples
    for slot_start in np.arange(0.0, DAY_S, SLOT_S):
        slot_end = slot_start + SLOT_S
        rate = diurnal.rate_at(slot_start + SLOT_S / 2)
        in_slot = [v for t, v in samples if slot_start <= t < slot_end]
        util = [v for t, v in util_samples if slot_start <= t < slot_end]
        mean_active = sum(in_slot) / len(in_slot) if in_slot else 0.0
        mean_util = sum(util) / len(util) if util else 0.0
        print(f"{int(slot_start // SLOT_S):>5} {rate:>7.1f} "
              f"{mean_active:>12.0f} {mean_util:>9.1%}")

    # Trace round trip: export the day's arrivals and replay them.
    times = diurnal.arrival_times(DAY_S, np.random.default_rng(7 + 1_000))
    with tempfile.TemporaryDirectory() as tmp:
        path = write_trace_csv(Path(tmp) / "day.csv", times)
        trace: ArrivalTrace = read_trace_csv(path)
        replayed = run_online(
            config,
            OnlineConfig(
                horizon_s=DAY_S,
                arrivals=trace,
                holding=ExponentialHolding(mean_s=HOLDING_S),
            ),
            seed=7,
        )
    print(f"\ntrace replay: {trace.count} arrivals from CSV, "
          f"{replayed.admitted_edge} served at the edge "
          f"(blocking {replayed.blocking_probability:.1%})")
    print("The edge tracks the demand curve with a lag of one holding")
    print("time; utilization peaks right after the rate does.")


if __name__ == "__main__":
    main()
