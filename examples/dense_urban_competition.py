"""Dense-urban multi-SP competition study.

The paper's motivating scenario: several operators deploy overlapping
small cells in the same popular area, and each prefers to route its
subscribers onto its own infrastructure.  This example places BSs
*randomly* (hot urban deployment), ramps the offered load from light to
past saturation, and shows how each allocation scheme's profit and
cloud-forwarding behave — including the per-SP fairness angle the
aggregate curves hide.

Run with::

    python examples/dense_urban_competition.py
"""

import numpy as np

from repro import (
    DCSPAllocator,
    DMRAAllocator,
    NonCoAllocator,
    ScenarioConfig,
    build_scenario,
    run_allocation,
)
from repro.experiments import render_chart
from repro.sim.results import Series

UE_COUNTS = (200, 400, 600, 800, 1000, 1200)
SEEDS = (1, 2, 3)


def allocators_for(scenario):
    return (
        DMRAAllocator(pricing=scenario.pricing),
        DCSPAllocator(),
        NonCoAllocator(),
    )


def main() -> None:
    config = ScenarioConfig.paper(placement="random", cross_sp_markup=2.0)

    profit_samples = {name: [] for name in ("dmra", "dcsp", "nonco")}
    forwarded_samples = {name: [] for name in ("dmra", "dcsp", "nonco")}
    for ue_count in UE_COUNTS:
        per_alloc_profit = {name: [] for name in profit_samples}
        per_alloc_forwarded = {name: [] for name in profit_samples}
        for seed in SEEDS:
            scenario = build_scenario(config, ue_count, seed)
            for allocator in allocators_for(scenario):
                outcome = run_allocation(scenario, allocator)
                per_alloc_profit[allocator.name].append(
                    outcome.metrics.total_profit
                )
                per_alloc_forwarded[allocator.name].append(
                    outcome.metrics.forwarded_traffic_bps / 1e6
                )
        for name in profit_samples:
            profit_samples[name].append((ue_count, per_alloc_profit[name]))
            forwarded_samples[name].append(
                (ue_count, per_alloc_forwarded[name])
            )

    profit_series = [
        Series.from_samples(name, samples)
        for name, samples in profit_samples.items()
    ]
    print(render_chart(
        profit_series,
        title="Total SP profit vs offered load (random urban placement)",
        x_label="#UEs",
        y_label="profit",
    ))
    print()
    forwarded_series = [
        Series.from_samples(name, samples)
        for name, samples in forwarded_samples.items()
    ]
    print(render_chart(
        forwarded_series,
        title="Cloud-forwarded traffic vs offered load",
        x_label="#UEs",
        y_label="Mbps",
    ))

    # Fairness: does DMRA's aggregate win come at one SP's expense?
    print("\nPer-SP profit at 1000 UEs (seed 1):")
    scenario = build_scenario(config, 1000, 1)
    header = f"{'scheme':>6} " + " ".join(f"{f'SP-{k}':>9}" for k in range(5))
    print(header)
    for allocator in allocators_for(scenario):
        outcome = run_allocation(scenario, allocator)
        profits = outcome.metrics.profit_by_sp
        row = " ".join(f"{profits.get(k, 0.0):9.1f}" for k in range(5))
        spread = np.std([profits.get(k, 0.0) for k in range(5)])
        print(f"{allocator.name:>6} {row}   (std {spread:7.1f})")


if __name__ == "__main__":
    main()
