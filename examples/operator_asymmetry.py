"""Operator asymmetry: does owning more of the edge pay per subscriber?

The paper's five SPs deploy identical fleets.  Real markets do not look
like that.  This example fixes the total infrastructure at 25 BSs and
sweeps how much of it one dominant operator owns, asking two questions:

1. does the dominant SP's *per-subscriber* margin grow with its
   infrastructure share (its users find cheap same-SP capacity more
   often)?
2. do the small operators' subscribers get worse off, or does DMRA's
   cross-SP renting smooth it out?

Run with::

    python examples/operator_asymmetry.py
"""

from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

UE_COUNT = 700
SEEDS = (1, 2, 3, 4)

# (label, per-SP fleet sizes summing to 25)
MARKETS = (
    ("symmetric", (5, 5, 5, 5, 5)),
    ("mild", (9, 4, 4, 4, 4)),
    ("dominant", (13, 3, 3, 3, 3)),
    ("near-monopoly", (17, 2, 2, 2, 2)),
)


def main() -> None:
    print(f"{UE_COUNT} UEs, 25 BSs total, iota=2, mean of {len(SEEDS)} seeds\n")
    print(f"{'market':>14} {'SP-0 share':>11} {'SP-0 /sub':>10} "
          f"{'others /sub':>12} {'advantage':>10} {'total':>9}")

    for label, fleet in MARKETS:
        big_margin = 0.0
        small_margin = 0.0
        total_profit = 0.0
        for seed in SEEDS:
            config = ScenarioConfig.paper(sp_bs_counts=fleet)
            scenario = build_scenario(config, UE_COUNT, seed)
            metrics = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics
            total_profit += metrics.total_profit / len(SEEDS)
            per_sub = {}
            for sp_id, profit in metrics.profit_by_sp.items():
                subscribers = len(
                    scenario.network.user_equipments_of_sp(sp_id)
                )
                per_sub[sp_id] = profit / subscribers if subscribers else 0.0
            big_margin += per_sub[0] / len(SEEDS)
            small_margin += (
                sum(per_sub[k] for k in range(1, 5)) / 4 / len(SEEDS)
            )
        advantage = (big_margin / small_margin - 1.0) if small_margin else 0.0
        print(
            f"{label:>14} {fleet[0] / 25:>11.0%} {big_margin:>10.2f} "
            f"{small_margin:>12.2f} {advantage:>10.1%} {total_profit:>9.0f}"
        )

    print("\nReading: the dominant operator's per-subscriber margin grows")
    print("with its footprint, but DMRA's cross-SP renting keeps the small")
    print("operators' subscribers served — their margin erodes (they pay")
    print("the iota markup more often) without collapsing.")


if __name__ == "__main__":
    main()
