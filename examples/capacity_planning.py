"""Capacity planning with the DMRA simulator.

An operator-side question the library answers beyond the paper's
figures: *how much load can this deployment absorb before the edge
starts spilling tasks to the cloud, and which resource runs out first?*

The script ramps the UE population under DMRA, reports edge-served
fraction, RRB and CRU utilization, and locates the knee where the
cloud-forwarding SLA (here: <= 2% of tasks forwarded) breaks.  It then
re-runs the sweep with doubled radio capacity to show which upgrade
actually moves the knee.

Run with::

    python examples/capacity_planning.py
"""

from repro import DMRAAllocator, ScenarioConfig, build_scenario, run_allocation

SLA_FORWARDED_FRACTION = 0.02
SEEDS = (1, 2, 3)


def sweep(config, label):
    print(f"--- {label} ---")
    print(
        f"{'#UEs':>6} {'edge%':>7} {'fwd%':>6} {'RRB util':>9} "
        f"{'CRU util':>9} {'profit':>10}"
    )
    knee = None
    for ue_count in range(200, 2001, 200):
        edge, forwarded, rrb, cru, profit = 0.0, 0.0, 0.0, 0.0, 0.0
        for seed in SEEDS:
            scenario = build_scenario(config, ue_count, seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
            m = outcome.metrics
            edge += m.edge_served_fraction / len(SEEDS)
            forwarded += (m.cloud_forwarded / m.ue_count) / len(SEEDS)
            rrb += m.mean_rrb_utilization / len(SEEDS)
            cru += m.mean_cru_utilization / len(SEEDS)
            profit += m.total_profit / len(SEEDS)
        marker = ""
        if knee is None and forwarded > SLA_FORWARDED_FRACTION:
            knee = ue_count
            marker = "  <- SLA breaks"
        print(
            f"{ue_count:>6} {edge:>7.1%} {forwarded:>6.1%} {rrb:>9.1%} "
            f"{cru:>9.1%} {profit:>10.1f}{marker}"
        )
    if knee is None:
        print("SLA held across the whole sweep")
    else:
        print(f"SLA (<= {SLA_FORWARDED_FRACTION:.0%} forwarded) breaks at "
              f"~{knee} UEs")
    print()
    return knee


def main() -> None:
    base = ScenarioConfig.paper()
    base_knee = sweep(base, "paper deployment (55 RRBs, 100-150 CRUs/service)")

    # Upgrade option A: double the uplink bandwidth (110 RRBs per BS).
    radio_upgrade = base.with_(uplink_bandwidth_hz=20e6)
    radio_knee = sweep(radio_upgrade, "radio upgrade: 20 MHz uplink")

    # Upgrade option B: double the computing capacity per service.
    compute_upgrade = base.with_(cru_capacity_min=200, cru_capacity_max=300)
    compute_knee = sweep(compute_upgrade, "compute upgrade: 200-300 CRUs")

    print("=== planning verdict ===")
    print(f"baseline knee:        ~{base_knee} UEs")
    print(f"radio upgrade knee:   ~{radio_knee} UEs")
    print(f"compute upgrade knee: ~{compute_knee} UEs")
    if radio_knee and base_knee and radio_knee > base_knee:
        print("radio is the binding resource: spend on spectrum, not servers")


if __name__ == "__main__":
    main()
