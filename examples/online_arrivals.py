"""Online DMRA: tasks arrive, hold resources, and depart over time.

The paper's figures are batch snapshots; this example runs the
event-driven simulation the paper's §V motivation implies ("adjust its
resource allocation strategy in real time") and produces an
Erlang-style blocking curve: offered load (arrival rate x holding time)
against the probability that a task cannot be absorbed at the edge.

Run with::

    python examples/online_arrivals.py
"""

from repro.dynamics import (
    ExponentialHolding,
    OnlineConfig,
    PoissonArrivals,
    run_online,
)
from repro.sim.config import ScenarioConfig

HORIZON_S = 400.0
HOLDING_S = 150.0
SEEDS = (1, 2, 3)


def main() -> None:
    config = ScenarioConfig.paper()

    print("Erlang-style blocking curve for the paper's deployment")
    print(f"(horizon {HORIZON_S:.0f} s, exponential holding "
          f"{HOLDING_S:.0f} s, mean of {len(SEEDS)} seeds)\n")
    print(f"{'rate/s':>7} {'offered':>8} {'blocking':>9} {'rrb util':>9} "
          f"{'profit/s':>9} {'peak act':>9}")

    for rate in (2.0, 4.0, 6.0, 8.0, 10.0, 12.0):
        blocking, util, rate_profit, peak = 0.0, 0.0, 0.0, 0.0
        for seed in SEEDS:
            online = OnlineConfig(
                horizon_s=HORIZON_S,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=HOLDING_S),
            )
            outcome = run_online(config, online, seed=seed)
            blocking += outcome.blocking_probability / len(SEEDS)
            util += outcome.mean_rrb_utilization / len(SEEDS)
            rate_profit += outcome.profit_rate_per_s / len(SEEDS)
            peak += outcome.edge_active.peak / len(SEEDS)
        offered = rate * HOLDING_S
        print(f"{rate:>7.1f} {offered:>8.0f} {blocking:>9.1%} "
              f"{util:>9.1%} {rate_profit:>9.1f} {peak:>9.0f}")

    print("\nReading the curve: below ~900 offered tasks the edge absorbs")
    print("everything (the static figures' saturation point, rediscovered")
    print("dynamically); past it, blocking rises while profit/s flattens —")
    print("the extra demand is simply forwarded to the cloud.")


if __name__ == "__main__":
    main()
