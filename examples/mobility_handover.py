"""Mobility study: association stickiness vs continuous re-optimization.

The paper notes that, unlike the stable-marriage problem, "the
preference list of UEs and BSs vary over time".  This example moves the
UE population (random-waypoint) and compares two repair strategies per
epoch:

* **sticky** — keep every association that still fits; re-match only
  broken ones (few handovers, decaying profit);
* **re-optimize** — run DMRA from scratch every epoch (maximal profit,
  maximal handovers).

The gap between them is the price of association stability — the number
operators actually trade off when tuning handover hysteresis.

Run with::

    python examples/mobility_handover.py
"""

from repro.dynamics import RandomWaypoint, run_mobility
from repro.sim.config import ScenarioConfig

UE_COUNT = 500
EPOCHS = 12
EPOCH_S = 30.0


def main() -> None:
    config = ScenarioConfig.paper()

    print(f"{UE_COUNT} UEs, {EPOCHS} epochs x {EPOCH_S:.0f} s, "
          f"random-waypoint pedestrians\n")

    for label, sticky in (("sticky", True), ("re-optimize", False)):
        outcome = run_mobility(
            config,
            ue_count=UE_COUNT,
            epochs=EPOCHS,
            epoch_duration_s=EPOCH_S,
            seed=7,
            mobility=RandomWaypoint(speed_min_mps=0.5, speed_max_mps=3.0),
            sticky=sticky,
        )
        print(f"--- {label} ---")
        print(f"{'epoch':>6} {'profit':>9} {'handovers':>10} "
              f"{'drops':>6} {'cloud':>6}")
        for record in outcome.records:
            print(f"{record.epoch:>6} {record.total_profit:>9.0f} "
                  f"{record.handovers:>10} {record.drops_to_cloud:>6} "
                  f"{record.cloud:>6}")
        print(f"mean profit {outcome.mean_profit:.0f}, "
              f"total handovers {outcome.total_handovers}, "
              f"handover rate {outcome.handover_rate:.3f}/UE/epoch\n")

    print("The sticky strategy trades profit for stability: handovers are")
    print("an order of magnitude rarer, at the cost of serving drifting")
    print("UEs over increasingly mispriced links.")


if __name__ == "__main__":
    main()
