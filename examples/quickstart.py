"""Quickstart: build one paper-style scenario, run DMRA, read the outcome.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DCSPAllocator,
    DMRAAllocator,
    NonCoAllocator,
    ScenarioConfig,
    build_scenario,
    run_allocation,
)


def main() -> None:
    # The paper's setup: 5 SPs x 5 BSs on a 300 m grid, 6 services,
    # 55 RRBs and 100-150 CRUs per service per BS.  600 UEs, seed 42.
    config = ScenarioConfig.paper()
    scenario = build_scenario(config, ue_count=600, seed=42)
    print(scenario.network.describe())
    print()

    # Run DMRA and the paper's two baselines on the *same* scenario.
    for allocator in (
        DMRAAllocator(pricing=scenario.pricing, rho=config.rho),
        DCSPAllocator(),
        NonCoAllocator(),
    ):
        outcome = run_allocation(scenario, allocator)
        m = outcome.metrics
        print(
            f"{allocator.name:>6}: total profit {m.total_profit:9.1f}   "
            f"edge-served {m.edge_served:3d}/{m.ue_count}   "
            f"same-SP {m.same_sp_fraction:.0%}   "
            f"forwarded {m.forwarded_traffic_bps / 1e6:6.1f} Mbps"
        )

    # Per-SP breakdown for DMRA (Eq. 5: W_k = W_k^r - W_k^B - W_k^S).
    outcome = run_allocation(
        scenario, DMRAAllocator(pricing=scenario.pricing, rho=config.rho)
    )
    print("\nDMRA per-SP profit:")
    for sp_id, profit in sorted(outcome.metrics.profit_by_sp.items()):
        sp = scenario.network.provider(sp_id)
        subscribers = len(scenario.network.user_equipments_of_sp(sp_id))
        print(f"  {sp.name}: {profit:8.1f}  ({subscribers} subscribers)")


if __name__ == "__main__":
    main()
