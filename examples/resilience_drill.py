"""Resilience drill: how much infrastructure can fail before users feel it?

Injects growing BS outages into a loaded paper-scale deployment and
reports what DMRA's re-matching recovers.  Also answers an operations
question: does it matter *which* BSs die — a whole SP's fleet versus
the same number spread across operators?

Run with::

    python examples/resilience_drill.py
"""

from repro.dynamics.failures import inject_bs_failures
from repro.sim.config import ScenarioConfig

UE_COUNT = 800
SEED = 11


def drill(config, label, failure_sets):
    print(f"--- {label} ---")
    print(f"{'failed':>18} {'orphaned':>9} {'recovered':>10} "
          f"{'dropped':>8} {'profit loss':>12}")
    for name, bs_ids in failure_sets:
        outcome = inject_bs_failures(
            config, ue_count=UE_COUNT, failed_bs_ids=bs_ids, seed=SEED
        )
        print(
            f"{name:>18} {outcome.orphaned_ues:>9} "
            f"{outcome.recovered_ues:>10} {outcome.dropped_to_cloud:>8} "
            f"{outcome.profit_loss_fraction:>11.1%}"
        )
    print()


def main() -> None:
    config = ScenarioConfig.paper()

    drill(config, "growing outages", [
        ("1 BS", [0]),
        ("2 BSs", [0, 1]),
        ("4 BSs", [0, 1, 2, 3]),
        ("8 BSs", list(range(8))),
        ("12 BSs", list(range(12))),
    ])

    # BS ids are interleaved across SPs (bs.sp_id = bs_id % 5), so one
    # SP's whole fleet is {k, k+5, k+10, k+15, k+20}.
    sp0_fleet = [0, 5, 10, 15, 20]
    spread = [0, 1, 2, 3, 4]
    drill(config, "concentrated vs spread (5 BSs either way)", [
        ("SP-0's fleet", sp0_fleet),
        ("one per SP", spread),
    ])

    print("Takeaway: losses stay graceful while neighbouring capacity")
    print("exists; concentrated operator outages hurt more because the")
    print("orphans lose their cheap same-SP alternatives at once.")


if __name__ == "__main__":
    main()
