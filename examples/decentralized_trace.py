"""Watch decentralized DMRA converge, message by message.

Runs the agent-based implementation on a small scenario and prints each
round's traffic — who proposed where, who was accepted, who fell back to
the cloud — followed by the per-SP relay statistics.  Finally verifies
that the message-passing result is identical to the direct matching
engine's.

Run with::

    python examples/decentralized_trace.py
"""

from repro import DMRAAllocator, ScenarioConfig, build_scenario
from repro.core.agents import DecentralizedDMRAAllocator, SPAgent, UEAgent
from repro.core.messages import CloudFallbackNotice


class TracingAllocator(DecentralizedDMRAAllocator):
    """The agent allocator with a per-round narration hook."""

    def allocate(self, network, radio_map):
        # Wrap UEAgent.propose so every message is narrated as it is
        # produced, without touching the decision logic.
        original_propose = UEAgent.propose

        def traced_propose(agent):
            message = original_propose(agent)
            if message is None:
                return None
            if isinstance(message, CloudFallbackNotice):
                print(f"    UE {message.ue_id} (SP {message.sp_id}): "
                      f"no feasible BS left -> remote cloud")
            else:
                print(
                    f"    UE {message.ue_id} (SP {message.sp_id}) -> "
                    f"BS {message.target_bs_id} "
                    f"[service {message.service_id}, "
                    f"{message.cru_demand} CRUs, "
                    f"{message.rrbs_required} RRBs, f_u={message.coverage_count}]"
                )
            return message

        original_relay = SPAgent.relay_grant

        def traced_relay(sp_agent, grant):
            print(
                f"    BS {grant.bs_id} accepts UE {grant.ue_id} "
                f"(relayed by SP {sp_agent.sp_id})"
            )
            return original_relay(sp_agent, grant)

        UEAgent.propose = traced_propose
        SPAgent.relay_grant = traced_relay
        try:
            return super().allocate(network, radio_map)
        finally:
            UEAgent.propose = original_propose
            SPAgent.relay_grant = original_relay


def main() -> None:
    # Small and contended: 2 SPs x 2 BSs, 10 UEs, tight radio budgets.
    config = ScenarioConfig.paper(
        sp_count=2,
        bs_per_sp=2,
        service_count=2,
        uplink_bandwidth_hz=1.5e6,  # only 8 RRBs per BS
        cru_capacity_min=15,
        cru_capacity_max=20,
    )
    scenario = build_scenario(config, ue_count=10, seed=4)
    print(scenario.network.describe())
    print("\nmessage trace:")

    allocator = TracingAllocator(pricing=scenario.pricing)
    assignment = allocator.allocate(scenario.network, scenario.radio_map)

    print(f"\nconverged in {assignment.rounds} rounds: "
          f"{assignment.edge_served_count} edge-served, "
          f"{assignment.cloud_count} forwarded to cloud")

    print("\nSP relay statistics:")
    for sp_id, sp_agent in sorted(allocator.last_sp_agents.items()):
        print(
            f"  SP {sp_id}: {sp_agent.requests_relayed} requests, "
            f"{sp_agent.grants_relayed} grants, "
            f"{sp_agent.cloud_forwards} cloud forwards"
        )

    direct = DMRAAllocator(pricing=scenario.pricing).allocate(
        scenario.network, scenario.radio_map
    )
    identical = sorted(direct.association_pairs()) == sorted(
        assignment.association_pairs()
    )
    print(f"\nidentical to the direct matching engine: {identical}")


if __name__ == "__main__":
    main()
