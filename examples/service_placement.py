"""Service placement under skewed demand: where should services live?

The paper's evaluation hosts all six services on every BS, so placement
never matters there.  Real MEC servers host a few service images each.
This example creates that scarcity (3 hosting slots per BS) under a
heavily skewed request mix and compares three placement strategies:

* **random**    — each BS hosts a random half of the catalog (the
  library's default partial-hosting sampler);
* **top-k**     — every BS hosts the three most popular services
  (naive popularity chasing; the tail gets zero coverage);
* **planned**   — :func:`repro.compute.plan_hosting`'s proportional
  apportionment with full-catalog coverage.

Run with::

    python examples/service_placement.py
"""

from repro.compute.placement_opt import (
    empirical_popularity,
    plan_hosting,
    rehost_scenario,
)
from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

POPULARITY = (16, 8, 4, 2, 1, 1)
SLOTS_PER_BS = 3
SEEDS = (1, 2, 3, 4)
UE_COUNT = 700


def evaluate(scenario):
    outcome = run_allocation(
        scenario, DMRAAllocator(pricing=scenario.pricing)
    )
    return outcome.metrics


def main() -> None:
    config = ScenarioConfig.paper(
        service_popularity=POPULARITY, hosted_fraction=0.5
    )
    print(f"request mix {POPULARITY}, {SLOTS_PER_BS}/6 services per BS, "
          f"{UE_COUNT} UEs, mean of {len(SEEDS)} seeds\n")
    print(f"{'strategy':>10} {'profit':>9} {'served':>7} {'cloud':>6}")

    totals = {"random": [0.0, 0.0, 0.0],
              "top-k": [0.0, 0.0, 0.0],
              "planned": [0.0, 0.0, 0.0]}
    for seed in SEEDS:
        scenario = build_scenario(config, UE_COUNT, seed)
        weights = empirical_popularity(scenario.network)
        bs_count = scenario.network.bs_count

        variants = {
            "random": scenario,
            "top-k": rehost_scenario(
                scenario,
                [frozenset({0, 1, 2})] * bs_count,
                seed=seed,
            ),
            "planned": rehost_scenario(
                scenario,
                plan_hosting(bs_count, SLOTS_PER_BS, weights),
                seed=seed,
            ),
        }
        for name, variant in variants.items():
            metrics = evaluate(variant)
            totals[name][0] += metrics.total_profit / len(SEEDS)
            totals[name][1] += metrics.edge_served / len(SEEDS)
            totals[name][2] += metrics.cloud_forwarded / len(SEEDS)

    for name, (profit, served, cloud) in totals.items():
        print(f"{name:>10} {profit:>9.0f} {served:>7.1f} {cloud:>6.1f}")

    print("\nTop-k starves the tail services (their UEs can only go to the")
    print("cloud); random wastes replicas on cold services; proportional")
    print("planning covers everything and replicates where demand is.")


if __name__ == "__main__":
    main()
