"""Ablation benches for the design choices DESIGN.md calls out.

Each bench isolates one ingredient of DMRA and measures what it buys:

* same-SP priority on the BS side (the multi-SP awareness);
* the Eq. 17 slack term (rho > 0 vs pure price);
* the optimality gap against the centralized ILP on small instances;
* the paper's -170 dBm noise figure vs a conventional thermal floor.
"""

import pytest

from repro.baselines.optimal import OptimalILPAllocator
from repro.core.dmra import DMRAAllocator
from repro.radio.sinr import thermal_noise_dbm
from repro.sim.config import ScenarioConfig
from repro.sim.runner import run_allocation
from repro.sim.scenario import build_scenario

SEEDS = (0, 1, 2)


def mean_profit(config, ue_count, allocator_factory):
    total = 0.0
    for seed in SEEDS:
        scenario = build_scenario(config, ue_count, seed)
        outcome = run_allocation(scenario, allocator_factory(scenario))
        total += outcome.metrics.total_profit
    return total / len(SEEDS)


def test_ablation_same_sp_priority(benchmark):
    """Dropping the BS-side own-subscriber preference must not raise
    total profit at iota=2 (it exists to capture the ownership margin)."""
    config = ScenarioConfig.paper(cross_sp_markup=2.0)

    def run():
        with_priority = mean_profit(
            config, 700,
            lambda s: DMRAAllocator(pricing=s.pricing, same_sp_priority=True),
        )
        without_priority = mean_profit(
            config, 700,
            lambda s: DMRAAllocator(pricing=s.pricing, same_sp_priority=False),
        )
        return with_priority, without_priority

    with_priority, without_priority = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert with_priority >= without_priority * 0.98


def test_ablation_rho_slack_term(benchmark):
    """rho > 0 (resource-aware proposals) vs rho = 0 (pure price) under
    overload: the slack term must not increase forwarded traffic."""
    config = ScenarioConfig.paper(cross_sp_markup=1.1)

    def forwarded(rho):
        total = 0.0
        for seed in SEEDS:
            scenario = build_scenario(config, 1000, seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing, rho=rho)
            )
            total += outcome.metrics.forwarded_traffic_bps
        return total / len(SEEDS)

    result = benchmark.pedantic(
        lambda: (forwarded(0.0), forwarded(500.0)), rounds=1, iterations=1
    )
    price_only, resource_aware = result
    assert resource_aware <= price_only


def test_ablation_optimality_gap(benchmark):
    """DMRA vs the centralized ILP optimum on small instances: the
    decentralized scheme must stay within 5% of optimal profit."""

    def gaps():
        ratios = []
        for seed in SEEDS:
            scenario = build_scenario(ScenarioConfig.paper(), 150, seed)
            dmra = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics.total_profit
            optimal = run_allocation(
                scenario, OptimalILPAllocator(pricing=scenario.pricing)
            ).metrics.total_profit
            ratios.append(dmra / optimal)
        return ratios

    ratios = benchmark.pedantic(gaps, rounds=1, iterations=1)
    assert min(ratios) >= 0.95


def test_ablation_service_placement(benchmark):
    """Demand-aware hosting vs random hosting under skewed demand and
    scarce hosting slots: the planner must win on profit."""
    from repro.compute.placement_opt import (
        empirical_popularity,
        plan_hosting,
        rehost_scenario,
    )

    config = ScenarioConfig.paper(
        service_popularity=(16, 8, 4, 2, 1, 1), hosted_fraction=0.5
    )

    def run():
        random_profit = 0.0
        planned_profit = 0.0
        for seed in SEEDS:
            scenario = build_scenario(config, 700, seed)
            random_profit += run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics.total_profit
            plan = plan_hosting(
                scenario.network.bs_count,
                3,
                empirical_popularity(scenario.network),
            )
            planned = rehost_scenario(scenario, plan, seed=seed)
            planned_profit += run_allocation(
                planned, DMRAAllocator(pricing=planned.pricing)
            ).metrics.total_profit
        return random_profit, planned_profit

    random_profit, planned_profit = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert planned_profit > random_profit


def test_ablation_congestion_steering(benchmark):
    """Utilization-scaled signaling prices vs the paper's rho term:
    steering must cut forwarded traffic without losing profit."""
    from repro.core.steering import CongestionSteeredAllocator

    config = ScenarioConfig.paper()

    def run():
        totals = {0.0: [0.0, 0.0], 2.0: [0.0, 0.0]}
        for beta in totals:
            for seed in SEEDS:
                scenario = build_scenario(config, 1000, seed)
                outcome = run_allocation(
                    scenario,
                    CongestionSteeredAllocator(
                        pricing=scenario.pricing, beta=beta
                    ),
                )
                totals[beta][0] += outcome.metrics.total_profit
                totals[beta][1] += outcome.metrics.forwarded_traffic_bps
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals[2.0][0] >= totals[0.0][0] * 0.995  # profit holds
    assert totals[2.0][1] <= totals[0.0][1]  # forwarding drops


def test_ablation_stale_broadcasts(benchmark):
    """Gossip delay: stale resource broadcasts cost rounds, not profit."""
    from repro.core.agents import DecentralizedDMRAAllocator

    scenario = build_scenario(ScenarioConfig.paper(), 900, 1)

    def run():
        results = {}
        for delay in (0, 3):
            assignment = DecentralizedDMRAAllocator(
                pricing=scenario.pricing, broadcast_delay_rounds=delay
            ).allocate(scenario.network, scenario.radio_map)
            results[delay] = assignment
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[3].rounds >= results[0].rounds
    assert results[3].edge_served_count >= 0.97 * results[0].edge_served_count


def test_ablation_rate_quantization(benchmark):
    """Shannon (Eq. 2) vs the 15-level MCS table: quantization shrinks
    edge capacity but must not flip the DMRA > DCSP ordering."""
    from repro.baselines.dcsp import DCSPAllocator

    def run():
        results = {}
        for model in ("shannon", "mcs"):
            scenario = build_scenario(
                ScenarioConfig.paper(rate_model=model), 600, 1
            )
            dmra = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            ).metrics
            dcsp = run_allocation(scenario, DCSPAllocator()).metrics
            results[model] = (dmra, dcsp)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    shannon_dmra, _ = results["shannon"]
    mcs_dmra, mcs_dcsp = results["mcs"]
    assert mcs_dmra.edge_served < shannon_dmra.edge_served
    assert mcs_dmra.total_profit > mcs_dcsp.total_profit


def test_ablation_noise_model(benchmark):
    """The paper's -170 dBm noise vs a conventional thermal floor.

    Under thermal noise the per-RRB rates collapse and far links become
    expensive, so the same deployment serves far fewer UEs — quantifying
    how load-bearing the paper's noise figure is (DESIGN.md §3).
    """
    paper_cfg = ScenarioConfig.paper()
    thermal_cfg = paper_cfg.with_(noise_dbm=thermal_noise_dbm(180e3))

    def served(config):
        total = 0
        for seed in SEEDS:
            scenario = build_scenario(config, 700, seed)
            outcome = run_allocation(
                scenario, DMRAAllocator(pricing=scenario.pricing)
            )
            total += outcome.metrics.edge_served
        return total / len(SEEDS)

    result = benchmark.pedantic(
        lambda: (served(paper_cfg), served(thermal_cfg)), rounds=1, iterations=1
    )
    paper_served, thermal_served = result
    assert thermal_served < paper_served
