"""Bench for Fig. 4: total SP profit vs #UEs (iota=1.1, regular placement).

At iota=1.1 the BS price is almost entirely distance-driven, so the
ownership advantage shrinks; DMRA must still dominate both baselines.
"""

from conftest import run_figure_bench


def test_fig4_profit_vs_ue_count_low_iota(benchmark, bench_scale, results_dir):
    result = run_figure_bench(benchmark, "fig4", bench_scale, results_dir)

    dmra, dcsp, nonco = result["dmra"], result["dcsp"], result["nonco"]
    for x in dmra.xs:
        assert dmra.value_at(x).mean >= dcsp.value_at(x).mean
        assert dmra.value_at(x).mean >= nonco.value_at(x).mean
    for series in (dmra, dcsp, nonco):
        assert list(series.means) == sorted(series.means)
