"""Streaming benchmark for the event-driven engine (``make bench-stream``).

Three measurements, all seeded:

* **equivalence gate (bit-exact)** — on a small saturated scenario with
  mobility, the incremental engine's outcome digest must equal the
  from-scratch re-solve of the same event tape, with the quiescence
  debug probe enabled.  This is the correctness pin: if the dirty-
  neighborhood rule ever under-proposes, this digest splits.
* **equivalence gate (tolerance)** — at a larger scale, both modes'
  outcome-only ``dmra.metrics/1`` documents (deterministic manifests)
  must pass ``diff_documents`` within the default trace-diff
  tolerances.
* **headline** — sustained events/sec over steady churn on the paper
  deployment, with a rolling population at least 10x the active set so
  the run proves memory is bounded by the *active* set: the arrival
  stream is far larger than anything resident.

Emits ``BENCH_pr7.json`` at the repo root and exits non-zero when:

* either equivalence gate fails;
* the headline sustains fewer than ``BENCH_STREAM_MIN_EVENTS_PER_S``
  events per wall second (default 400);
* peak RSS exceeds ``BENCH_STREAM_MAX_RSS_MB`` (default 768);
* the rolling population is less than 10x the peak active set (the
  scenario would not be probing memory boundedness).

Knobs: ``BENCH_STREAM_RATE`` (arrivals/s, default 40),
``BENCH_STREAM_HORIZON_S`` (default 600), ``BENCH_STREAM_HOLDING_S``
(default 12), ``BENCH_STREAM_SHARDS`` (default 1),
``BENCH_STREAM_KERNEL`` (default ``auto``), ``BENCH_STREAM_MOVES``
(move fraction, default 0.05).
"""

from __future__ import annotations

import json
import os
import resource
import sys
from pathlib import Path

# Runnable straight from a checkout without an editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.dynamics.arrivals import ExponentialHolding, PoissonArrivals
from repro.obs import build_manifest, metrics_from_stream
from repro.obs.diff import diff_documents
from repro.sim.config import ScenarioConfig
from repro.stream import StreamConfig, run_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pr7.json"

SEED = 1

#: Small saturated deployment: one tightly-capacitated BS, so the tape
#: constantly blocks, frees, and readmits — the hard case for the
#: dirty-neighborhood rule.
GATE_CONFIG = ScenarioConfig(
    sp_count=1,
    bs_per_sp=1,
    region_side_m=300.0,
    cru_capacity_min=20,
    cru_capacity_max=20,
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _peak_rss_mb() -> float:
    """Peak RSS of this process in MB (Linux reports KB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _outcome_record(outcome) -> dict:
    return {
        "mode": outcome.mode,
        "shards": outcome.shards,
        "kernel": outcome.kernel,
        "events": outcome.events_processed,
        "arrivals": outcome.arrivals,
        "moves": outcome.moves,
        "admitted_edge": outcome.admitted_edge,
        "admitted_cloud": outcome.admitted_cloud,
        "readmitted": outcome.readmitted,
        "blocking": round(outcome.blocking_probability, 4),
        "total_profit": round(outcome.total_profit, 2),
        "peak_active": outcome.peak_active,
        "mean_edge_active": round(outcome.mean_edge_active, 1),
        "wall_s": round(outcome.wall_s, 3),
        "events_per_s": round(outcome.events_per_s, 1),
        "digest": outcome.digest,
    }


def main() -> int:
    rate = _env_float("BENCH_STREAM_RATE", 40.0)
    horizon_s = _env_float("BENCH_STREAM_HORIZON_S", 600.0)
    holding_s = _env_float("BENCH_STREAM_HOLDING_S", 12.0)
    shards = _env_int("BENCH_STREAM_SHARDS", 1)
    kernel = os.environ.get("BENCH_STREAM_KERNEL", "auto")
    move_fraction = _env_float("BENCH_STREAM_MOVES", 0.05)
    min_events_per_s = _env_float("BENCH_STREAM_MIN_EVENTS_PER_S", 400.0)
    max_rss_mb = _env_float("BENCH_STREAM_MAX_RSS_MB", 768.0)

    failures: list[str] = []

    # --- equivalence gate: bit-exact on the saturated scenario -------
    os.environ["DMRA_DEBUG_STREAM"] = "1"
    try:
        gate_stream = StreamConfig(
            horizon_s=300.0,
            arrivals=PoissonArrivals(rate_per_s=0.5),
            holding=ExponentialHolding(mean_s=120.0),
            move_fraction=0.1,
        )
        gate_inc = run_stream(
            GATE_CONFIG, gate_stream, seed=SEED, mode="incremental"
        )
        gate_res = run_stream(
            GATE_CONFIG, gate_stream, seed=SEED, mode="rescratch"
        )
    finally:
        del os.environ["DMRA_DEBUG_STREAM"]
    bit_exact = gate_inc.digest == gate_res.digest
    if not bit_exact:
        failures.append(
            f"bit-exact gate: incremental digest {gate_inc.digest[:12]} "
            f"!= rescratch {gate_res.digest[:12]}"
        )
    if gate_inc.admitted_cloud == 0 or gate_inc.readmitted == 0:
        failures.append(
            "bit-exact gate: scenario exercised no blocking/readmission "
            "— the gate is vacuous"
        )
    print(
        f"gate:bit-exact  equal={bit_exact}  "
        f"cloud={gate_inc.admitted_cloud}  "
        f"readmitted={gate_inc.readmitted}"
    )

    # --- equivalence gate: tolerance-diffed metrics at scale ---------
    config = ScenarioConfig.paper()
    mid_stream = StreamConfig(
        horizon_s=min(horizon_s, 240.0),
        arrivals=PoissonArrivals(rate_per_s=max(rate / 4.0, 1.0)),
        holding=ExponentialHolding(mean_s=max(holding_s, 20.0)),
        move_fraction=move_fraction,
    )
    manifest = build_manifest(
        config=config, seeds=[SEED], command="bench-stream",
        clock=lambda: 0.0,
    )
    mid_inc = run_stream(
        config, mid_stream, seed=SEED, mode="incremental",
        kernel=kernel, series_stride=4,
    )
    mid_res = run_stream(
        config, mid_stream, seed=SEED, mode="rescratch", series_stride=4,
    )
    report = diff_documents(
        metrics_from_stream(mid_inc, manifest=manifest),
        metrics_from_stream(mid_res, manifest=manifest),
    )
    if not report.ok:
        for delta in report.regressions:
            failures.append(f"tolerance gate: {delta}")
    print(
        f"gate:tolerance  ok={report.ok}  "
        f"families={report.families_compared}  "
        f"events={mid_inc.events_processed}"
    )

    # --- headline: sustained events/sec over steady churn ------------
    headline_stream = StreamConfig(
        horizon_s=horizon_s,
        arrivals=PoissonArrivals(rate_per_s=rate),
        holding=ExponentialHolding(mean_s=holding_s),
        move_fraction=move_fraction,
    )
    # Warm-up on a short prefix (JIT-free Python, but cold caches and
    # allocator pools are real), then the measured run.
    warmup_stream = StreamConfig(
        horizon_s=min(60.0, horizon_s),
        arrivals=PoissonArrivals(rate_per_s=rate),
        holding=ExponentialHolding(mean_s=holding_s),
        move_fraction=move_fraction,
    )
    run_stream(
        config, warmup_stream, seed=SEED + 1, kernel=kernel,
        shards=shards, series_stride=16,
    )
    outcome = run_stream(
        config, headline_stream, seed=SEED, kernel=kernel,
        shards=shards, series_stride=16,
    )
    peak_rss = _peak_rss_mb()
    headline = _outcome_record(outcome)
    headline["peak_rss_mb"] = round(peak_rss, 1)
    rolling_ratio = (
        outcome.arrivals / outcome.peak_active
        if outcome.peak_active
        else 0.0
    )
    headline["rolling_over_active"] = round(rolling_ratio, 1)
    print(
        f"headline  events={outcome.events_processed}  "
        f"events/s={outcome.events_per_s:.0f}  "
        f"peak_rss={peak_rss:.0f}MB  "
        f"rolling/active={rolling_ratio:.0f}x"
    )

    if outcome.events_per_s < min_events_per_s:
        failures.append(
            f"headline: {outcome.events_per_s:.0f} events/s < "
            f"{min_events_per_s:.0f} floor"
        )
    if peak_rss > max_rss_mb:
        failures.append(
            f"headline: peak RSS {peak_rss:.0f}MB > {max_rss_mb:.0f}MB cap"
        )
    if rolling_ratio < 10.0:
        failures.append(
            f"headline: rolling population only {rolling_ratio:.1f}x the "
            f"peak active set (< 10x) — not probing memory boundedness"
        )

    report_doc = {
        "bench": "stream",
        "seed": SEED,
        "kernel": kernel,
        "shards": shards,
        "stream": {
            "rate_per_s": rate,
            "horizon_s": horizon_s,
            "holding_s": holding_s,
            "move_fraction": move_fraction,
        },
        "caps": {
            "min_events_per_s": min_events_per_s,
            "max_rss_mb": max_rss_mb,
            "min_rolling_over_active": 10.0,
        },
        "gates": {
            "bit_exact": {
                "passed": bit_exact,
                "digest": gate_inc.digest,
                "admitted_cloud": gate_inc.admitted_cloud,
                "readmitted": gate_inc.readmitted,
            },
            "tolerance": {
                "passed": report.ok,
                "families_compared": report.families_compared,
                "events": mid_inc.events_processed,
            },
        },
        "headline": headline,
        "failures": failures,
    }
    OUTPUT.write_text(json.dumps(report_doc, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("stream bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
