"""Bench for Fig. 5: total SP profit vs #UEs (iota=1.1, random placement).

The fourth (iota, placement) quadrant of the paper's profit figures.
"""

from conftest import run_figure_bench


def test_fig5_profit_vs_ue_count_low_iota_random(
    benchmark, bench_scale, results_dir
):
    result = run_figure_bench(benchmark, "fig5", bench_scale, results_dir)

    dmra, dcsp, nonco = result["dmra"], result["dcsp"], result["nonco"]
    for x in dmra.xs:
        assert dmra.value_at(x).mean >= dcsp.value_at(x).mean
        assert dmra.value_at(x).mean >= nonco.value_at(x).mean
    for series in (dmra, dcsp, nonco):
        assert list(series.means) == sorted(series.means)
