"""Bench for Fig. 2: total SP profit vs #UEs (iota=2, regular placement).

Regenerates the figure's three curves and asserts the published shape:
profit grows with load for every scheme, and DMRA's curve dominates DCSP
and NonCo at every grid point.
"""

from conftest import run_figure_bench


def test_fig2_profit_vs_ue_count(benchmark, bench_scale, results_dir):
    result = run_figure_bench(benchmark, "fig2", bench_scale, results_dir)

    dmra, dcsp, nonco = result["dmra"], result["dcsp"], result["nonco"]
    for x in dmra.xs:
        assert dmra.value_at(x).mean >= dcsp.value_at(x).mean
        assert dmra.value_at(x).mean >= nonco.value_at(x).mean

    # Profit grows with the number of UEs for every scheme.
    for series in (dmra, dcsp, nonco):
        assert list(series.means) == sorted(series.means)
