"""Scaling benches: DMRA runtime as the population grows.

§V gives DMRA's complexity as O(|U|^2 |B| + |B|^2 |U| |S|); these
benches record wall-clock against |U| and |B| so the practical scaling
behaviour is visible alongside the paper figures.
"""

import pytest

from repro.core.dmra import DMRAAllocator
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario


@pytest.mark.parametrize("ue_count", [200, 600, 1200])
def test_dmra_scaling_in_ue_count(benchmark, ue_count):
    scenario = build_scenario(ScenarioConfig.paper(), ue_count, seed=1)
    allocator = DMRAAllocator(pricing=scenario.pricing)
    benchmark(lambda: allocator.allocate(scenario.network, scenario.radio_map))


@pytest.mark.parametrize("bs_per_sp", [3, 5, 10])
def test_dmra_scaling_in_bs_count(benchmark, bs_per_sp):
    # Random placement: 50 BSs do not fit a 300 m grid in the region.
    config = ScenarioConfig.paper(bs_per_sp=bs_per_sp, placement="random")
    scenario = build_scenario(config, 600, seed=1)
    allocator = DMRAAllocator(pricing=scenario.pricing)
    benchmark(lambda: allocator.allocate(scenario.network, scenario.radio_map))


def test_radio_map_scaling(benchmark):
    """Radio-map precomputation for the largest sweep population."""
    from repro.radio.channel import build_radio_map
    from repro.radio.sinr import LinkBudget

    scenario = build_scenario(ScenarioConfig.paper(), 1200, seed=1)
    budget = LinkBudget()
    benchmark(lambda: build_radio_map(scenario.network, budget))
