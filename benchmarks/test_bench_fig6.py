"""Bench for Fig. 6: total SP profit vs rho (iota=2, 1000 UEs, regular).

The paper's claim is that larger rho steers UEs toward resource-rich BSs
and profit goes up.  Our reproduction shows the trend with the correct
sign but modest magnitude (see DESIGN.md §5.5), so the assertion is
directional over the grid's endpoints rather than point-wise monotone.
"""

from conftest import run_figure_bench


def test_fig6_profit_vs_rho(benchmark, bench_scale, results_dir):
    result = run_figure_bench(benchmark, "fig6", bench_scale, results_dir)

    series = result["dmra"]
    assert all(point.value.mean > 0 for point in series.points)
    low_rho = series.value_at(min(series.xs)).mean
    high_rho = series.value_at(max(series.xs)).mean
    # Directional claim: the resource-aware end does not lose profit.
    assert high_rho >= low_rho * 0.995
