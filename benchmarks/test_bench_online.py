"""Benches for the online (event-driven) extension.

Not paper figures — these measure the dynamic layer built on top of the
paper's batch algorithm: event throughput of the incremental matcher
and the Erlang-style blocking behaviour under rising offered load.
"""

from repro.dynamics import (
    ExponentialHolding,
    OnlineConfig,
    PoissonArrivals,
    run_online,
)
from repro.sim.config import ScenarioConfig


def test_online_simulation_throughput(benchmark):
    """Wall-clock for ~1800 arrival+departure events at moderate load."""
    config = ScenarioConfig.paper()
    online = OnlineConfig(
        horizon_s=300.0,
        arrivals=PoissonArrivals(rate_per_s=3.0),
        holding=ExponentialHolding(mean_s=120.0),
    )
    outcome = benchmark(lambda: run_online(config, online, seed=1))
    assert outcome.blocking_probability < 0.05


def test_online_blocking_curve(benchmark):
    """Blocking must grow monotonically with offered load (Erlang shape)."""
    config = ScenarioConfig.paper()

    def curve():
        points = []
        for rate in (3.0, 8.0, 14.0):
            online = OnlineConfig(
                horizon_s=250.0,
                arrivals=PoissonArrivals(rate_per_s=rate),
                holding=ExponentialHolding(mean_s=180.0),
            )
            outcome = run_online(config, online, seed=2)
            points.append(outcome.blocking_probability)
        return points

    points = benchmark.pedantic(curve, rounds=1, iterations=1)
    assert points == sorted(points)
    assert points[-1] > points[0]
