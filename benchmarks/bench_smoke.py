"""Smoke benchmark for the optimized matching engine (``make bench-smoke``).

Times a seeded 2000-UE single-shot DMRA allocation on both the optimized
engine and the reference engine (best-of-N wall time, since a shared box
is noisy), plus a small sweep at ``workers=1`` vs ``workers=4``.  Emits
``BENCH_pr1.json`` at the repo root with wall times, rounds, and
speedups, and asserts two things so regressions fail fast:

* **behaviour** — the optimized assignment's digest must equal the
  recorded parity fixture (``benchmarks/results/parity_pr1.json``;
  regenerate deliberately with ``BENCH_WRITE_FIXTURE=1``);
* **performance** — the single-shot speedup must stay >= the floor
  (default 3.0; override with ``BENCH_MIN_SPEEDUP`` for noisy boxes).

Exit status is non-zero on either failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path

# Runnable straight from a checkout (``make bench-smoke``) without an
# editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.core.matching_reference import ReferenceMatchingEngine
from repro.econ.pricing import PaperPricing
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.sim.sweep import SweepSpec, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_PATH = Path(__file__).parent / "results" / "parity_pr1.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_pr1.json"

UE_COUNT = 2000
SEED = 1


def _digest(assignment) -> str:
    payload = repr((
        tuple(
            (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
            for g in assignment.grants
        ),
        tuple(sorted(assignment.cloud_ue_ids)),
    )).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _best_of_interleaved(
    fn_a, fn_b, repeats: int
) -> tuple[float, object, float, object]:
    """Best-of wall times for two functions, alternating runs so a load
    spike on a shared box cannot penalize only one side."""
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def _time_single_shot() -> dict:
    scenario = build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)

    def optimized():
        return IterativeMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    def reference():
        return ReferenceMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    opt_s, opt_assignment, ref_s, ref_assignment = _best_of_interleaved(
        optimized, reference, repeats=5
    )
    assert opt_assignment.grants == ref_assignment.grants
    assert opt_assignment.cloud_ue_ids == ref_assignment.cloud_ue_ids
    return {
        "ue_count": UE_COUNT,
        "seed": SEED,
        "optimized_wall_s": round(opt_s, 4),
        "reference_wall_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
        "rounds": opt_assignment.rounds,
        "edge_served": len(opt_assignment.grants),
        "cloud_bound": len(opt_assignment.cloud_ue_ids),
        "digest": _digest(opt_assignment),
    }


def _sweep_spec() -> SweepSpec:
    config = ScenarioConfig.paper()
    return SweepSpec(
        xs=(300.0, 500.0),
        seeds=(0, 1, 2, 3),
        scenario_factory=lambda x, seed: build_scenario(
            config, int(x), seed
        ),
        allocator_factories={
            "dmra": lambda _x: DMRAAllocator(pricing=PaperPricing())
        },
        metric=lambda m: m.total_profit,
    )


def _time_sweep() -> dict:
    serial_s, serial = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=1), repeats=2
    )
    parallel_s, parallel = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=4), repeats=2
    )
    assert serial["dmra"].means == parallel["dmra"].means
    return {
        "grid_cells": 8,
        "workers1_wall_s": round(serial_s, 4),
        "workers4_wall_s": round(parallel_s, 4),
        "workers4_speedup": round(serial_s / parallel_s, 2),
        "cpu_count": os.cpu_count(),
        "note": (
            "workers=4 results verified identical to workers=1; "
            "scaling is bounded by the physical core count above"
        ),
    }


def main() -> int:
    single = _time_single_shot()
    sweep = _time_sweep()
    report = {
        "bench": "pr1-smoke",
        "single_shot_dmra": single,
        "sweep_scaling": sweep,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if os.environ.get("BENCH_WRITE_FIXTURE"):
        FIXTURE_PATH.write_text(json.dumps(
            {"ue_count": UE_COUNT, "seed": SEED, "digest": single["digest"]},
            indent=2,
        ) + "\n")
        print(f"wrote parity fixture {FIXTURE_PATH}")
        return 0

    fixture = json.loads(FIXTURE_PATH.read_text())
    if single["digest"] != fixture["digest"]:
        print(
            f"PARITY FAILURE: digest {single['digest']} != "
            f"fixture {fixture['digest']}",
            file=sys.stderr,
        )
        return 1

    floor = float(os.environ.get("BENCH_MIN_SPEEDUP", "3.0"))
    if single["speedup"] < floor:
        print(
            f"PERF REGRESSION: speedup {single['speedup']}x < {floor}x",
            file=sys.stderr,
        )
        return 1
    print(f"ok: parity digest matches, speedup {single['speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
