"""Smoke benchmark for the engine and radio hot paths (``make bench-smoke``).

Times, at a seeded 2000-UE scale (best-of-N wall time, since a shared
box is noisy):

* the single-shot DMRA allocation, optimized vs reference engine (PR 1);
* a small sweep at ``workers=1`` vs ``workers=4`` (PR 1);
* radio-map construction, vectorized :func:`build_radio_map` vs the
  scalar :func:`build_radio_map_reference` loop, with link-for-link
  parity asserted in-process (PR 2);
* a short mobility trace, incremental epoch updates vs full rebuilds
  on both sides of the displaced-fraction crossover (all UEs moving vs
  10% moving), with identical per-epoch records asserted (PR 2, split
  in PR 4);
* telemetry overhead: the per-call cost of a disabled (null) span and
  of a recorded span, plus the 2000-UE engine run with a live recorder
  vs disabled telemetry — **interleaved**, since the PR 3 version timed
  the two sides minutes apart and booked a load spike as a 27%
  "overhead" that does not reproduce (PR 3, re-measured PR 4).

Emits ``BENCH_pr4.json`` at the repo root and fails fast on:

* **behaviour** — the optimized assignment's digest must equal the
  recorded parity fixture (``benchmarks/results/parity_pr1.json``;
  regenerate deliberately with ``BENCH_WRITE_FIXTURE=1``), the radio
  maps must agree link for link (exact integer fields, <=1e-9 relative
  on floats), and the mobility modes must agree epoch for epoch;
* **performance** — the matching speedup must stay >= its floor
  (default 2.0, ``BENCH_MIN_SPEEDUP``), the radio-map speedup >= its
  floor (default 5.0, ``BENCH_MIN_MAP_SPEEDUP``), the mobility
  incremental path must not lose to the full rebuild by more than the
  crossover's dispatch cost on all-moving walks (default floor 0.85,
  ``BENCH_MIN_MOBILITY_SPEEDUP``) and must genuinely win on sparse
  movers (default floor 1.1, ``BENCH_MIN_SPARSE_MOBILITY_SPEEDUP``),
  a disabled span must cost <=
  ``BENCH_MAX_NULL_SPAN_US`` microseconds (default 2.0), a recorded
  span <= ``BENCH_MAX_RECORDED_SPAN_US`` (default 10.0), live
  recording must add <= ``BENCH_MAX_RECORD_OVERHEAD_PCT`` percent to
  the engine run (default 15; the interleaved measurement reads ~2% on
  a quiet box), and — when the committed ``BENCH_pr3.json`` baseline
  is present — the engine and radio *speedup ratios* (which cancel
  box-speed differences; see :func:`_check_baseline`) must not fall
  more than ``BENCH_MAX_BASELINE_REGRESSION`` below it (default 0.3;
  tighten to 0.03 on a quiet box).

Exit status is non-zero on any failure.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

# Runnable straight from a checkout (``make bench-smoke``) without an
# editable install.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.dmra import DMRAAllocator, DMRAPolicy
from repro.core.matching import IterativeMatchingEngine
from repro.core.matching_reference import ReferenceMatchingEngine
from repro.dynamics.mobility import run_mobility
from repro.econ.pricing import PaperPricing
from repro.model.geometry import Point
from repro.obs.telemetry import Recorder, get_telemetry, telemetry_session
from repro.radio.channel import build_radio_map, build_radio_map_reference
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.sim.sweep import SweepSpec, run_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_PATH = Path(__file__).parent / "results" / "parity_pr1.json"
OUTPUT_PATH = REPO_ROOT / "BENCH_pr4.json"
BASELINE_PATH = REPO_ROOT / "BENCH_pr3.json"

UE_COUNT = 2000
SEED = 1
FLOAT_PARITY_REL_TOL = 1e-9


def _digest(assignment) -> str:
    payload = repr((
        tuple(
            (g.bs_id, g.ue_id, g.service_id, g.crus, g.rrbs)
            for g in assignment.grants
        ),
        tuple(sorted(assignment.cloud_ue_ids)),
    )).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _best_of_interleaved(
    fn_a, fn_b, repeats: int
) -> tuple[float, object, float, object]:
    """Best-of wall times for two functions, alternating runs so a load
    spike on a shared box cannot penalize only one side.

    Both sides run once untimed first (cold caches otherwise tax
    whichever side goes first), and the within-iteration order flips
    each round — under monotonically ramping load a fixed order hands
    the quietest slot to the same side every time, which showed up as a
    reproducible ~25% phantom gap between *identical* code paths.
    """
    result_a, result_b = fn_a(), fn_b()
    best_a = best_b = float("inf")
    for i in range(repeats):
        pairs = [(fn_a, "a"), (fn_b, "b")]
        if i % 2:
            pairs.reverse()
        for fn, side in pairs:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            if side == "a":
                best_a, result_a = min(best_a, elapsed), result
            else:
                best_b, result_b = min(best_b, elapsed), result
    return best_a, result_a, best_b, result_b


def _time_single_shot() -> dict:
    scenario = build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)

    def optimized():
        return IterativeMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    def reference():
        return ReferenceMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    opt_s, opt_assignment, ref_s, ref_assignment = _best_of_interleaved(
        optimized, reference, repeats=8
    )
    assert opt_assignment.grants == ref_assignment.grants
    assert opt_assignment.cloud_ue_ids == ref_assignment.cloud_ue_ids
    return {
        "ue_count": UE_COUNT,
        "seed": SEED,
        "optimized_wall_s": round(opt_s, 4),
        "reference_wall_s": round(ref_s, 4),
        "speedup": round(ref_s / opt_s, 2),
        "rounds": opt_assignment.rounds,
        "edge_served": len(opt_assignment.grants),
        "cloud_bound": len(opt_assignment.cloud_ue_ids),
        "digest": _digest(opt_assignment),
    }


def _assert_map_parity(vectorized, reference) -> None:
    """Link-for-link parity: exact ints/candidate sets, tight floats."""
    assert len(vectorized) == len(reference), "link counts differ"
    ref_links = {(m.ue_id, m.bs_id): m for m in reference}
    vec_links = {(m.ue_id, m.bs_id): m for m in vectorized}
    assert vec_links.keys() == ref_links.keys(), "candidate sets differ"
    for key, ref in ref_links.items():
        vec = vec_links[key]
        assert vec.rrbs_required == ref.rrbs_required, f"rrbs differ at {key}"
        for field in ("distance_m", "sinr_linear", "per_rrb_rate_bps"):
            a, b = getattr(vec, field), getattr(ref, field)
            tolerance = FLOAT_PARITY_REL_TOL * max(abs(a), abs(b), 1e-30)
            assert abs(a - b) <= tolerance, f"{field} differs at {key}"


def _time_radio_map() -> dict:
    config = ScenarioConfig.paper()
    scenario = build_scenario(config, UE_COUNT, SEED)
    budget = config.link_budget()
    rate_model = config.rate_model_fn()

    def vectorized():
        return build_radio_map(
            scenario.network, budget, rate_model=rate_model
        )

    def reference():
        return build_radio_map_reference(
            scenario.network, budget, rate_model=rate_model
        )

    # The vectorized build is ~3 ms, so its best-of needs many repeats
    # before the baseline ratio check stops flapping on timer noise.
    vec_s, vec_map, ref_s, ref_map = _best_of_interleaved(
        vectorized, reference, repeats=15
    )
    _assert_map_parity(vec_map, ref_map)
    return {
        "ue_count": UE_COUNT,
        "seed": SEED,
        "links": len(vec_map),
        "vectorized_wall_s": round(vec_s, 4),
        "reference_wall_s": round(ref_s, 4),
        "speedup": round(ref_s / vec_s, 2),
        "note": (
            "parity verified link-for-link: exact rrbs_required and "
            "candidate sets, floats to <=1e-9 relative"
        ),
    }


@dataclass(frozen=True)
class _SparseWalk:
    """Random walk where only every ``movers_mod``-th UE moves.

    Exercises the incremental patch route: the displaced fraction stays
    under the crossover, so only the movers' rows/columns recompute.
    The RNG is drawn for every UE (the run loop's contract).
    """

    speed_mps: float = 5.0
    movers_mod: int = 10

    def step(self, ue_id, position, dt_s, region, rng):
        """One epoch step; non-movers return their position unchanged."""
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        if ue_id % self.movers_mod:
            return position
        distance = self.speed_mps * dt_s
        x = float(np.clip(
            position.x + distance * math.cos(angle),
            region.x_min, region.x_max,
        ))
        y = float(np.clip(
            position.y + distance * math.sin(angle),
            region.y_min, region.y_max,
        ))
        return Point(x, y)


def _time_mobility() -> dict:
    """Incremental vs full-rebuild epochs, on both sides of the
    displaced-fraction crossover.

    * ``all_moving`` (random walk): every UE is displaced each epoch,
      so the crossover routes the incremental mode to the full rebuild
      — the two modes run identical per-epoch code and the ratio is a
      parity check (the PR 3 incremental path paid 0.77x here);
    * ``sparse`` (10% movers): the patch route recomputes only the
      movers' distance rows and link columns and must actually win.
    """
    config = ScenarioConfig.paper()
    ue_count, epochs, duration_s, seed = 500, 5, 30.0, 2
    cases = {}
    for case, model in (
        ("all_moving", None),  # run_mobility default: RandomWalk
        ("sparse", _SparseWalk()),
    ):
        kwargs = dict(
            config=config, ue_count=ue_count, epochs=epochs,
            epoch_duration_s=duration_s, seed=seed,
        )
        if model is not None:
            kwargs["mobility"] = model

        def incremental(kwargs=kwargs):
            return run_mobility(**kwargs, incremental=True)

        def full_rebuild(kwargs=kwargs):
            return run_mobility(**kwargs, incremental=False)

        inc_s, inc_outcome, full_s, full_outcome = _best_of_interleaved(
            incremental, full_rebuild, repeats=4
        )
        assert inc_outcome.records == full_outcome.records, (
            f"incremental mobility diverged from full rebuild ({case})"
        )
        cases[case] = {
            "incremental_wall_s": round(inc_s, 4),
            "full_rebuild_wall_s": round(full_s, 4),
            "speedup": round(full_s / inc_s, 2),
        }
    return {
        "ue_count": ue_count,
        "epochs": epochs,
        "seed": seed,
        **cases,
        "note": (
            "per-epoch records verified identical across both modes in "
            "both cases; all_moving crosses over to the full rebuild "
            "(ratio ~1), sparse takes the patch route (ratio > 1)"
        ),
    }


def _sweep_spec() -> SweepSpec:
    config = ScenarioConfig.paper()
    return SweepSpec(
        xs=(300.0, 500.0),
        seeds=(0, 1, 2, 3),
        scenario_factory=lambda x, seed: build_scenario(
            config, int(x), seed
        ),
        allocator_factories={
            "dmra": lambda _x: DMRAAllocator(pricing=PaperPricing())
        },
        metric=lambda m: m.total_profit,
    )


def _time_sweep() -> dict:
    serial_s, serial = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=1), repeats=2
    )
    parallel_s, parallel = _best_of(
        lambda: run_sweep(_sweep_spec(), workers=4), repeats=2
    )
    assert serial["dmra"].means == parallel["dmra"].means
    return {
        "grid_cells": 8,
        "workers1_wall_s": round(serial_s, 4),
        "workers4_wall_s": round(parallel_s, 4),
        "workers4_speedup": round(serial_s / parallel_s, 2),
        "cpu_count": os.cpu_count(),
        "note": (
            "workers=4 results verified identical to workers=1; "
            "scaling is bounded by the physical core count above"
        ),
    }


def _time_telemetry() -> dict:
    """Cost of telemetry: per-span microbenches, and the engine run
    recorded vs disabled under interleaved timing.

    The PR 3 bench derived the overhead from two measurements taken
    minutes apart on a shared 1-vCPU box and reported 27.2%; timed
    interleaved the same code reads ~2%.  Keeping both sides inside one
    alternating loop is what makes the number a property of the code
    rather than of the box's load at two different instants.
    """
    tel = get_telemetry()
    assert not tel.enabled, "bench must start with the null backend"
    iterations = 200_000

    def spin_null():
        for _ in range(iterations):
            with tel.span("bench", x=1):
                pass

    null_s, _ = _best_of(spin_null, repeats=3)
    null_span_us = null_s / iterations * 1e6

    recorded_iterations = 50_000

    def spin_recorded():
        recorder = Recorder()
        for _ in range(recorded_iterations):
            with recorder.span("bench", x=1):
                pass
        return recorder

    recorded_span_s, _ = _best_of(spin_recorded, repeats=3)
    recorded_span_us = recorded_span_s / recorded_iterations * 1e6

    scenario = build_scenario(ScenarioConfig.paper(), UE_COUNT, SEED)

    def engine():
        return IterativeMatchingEngine(
            DMRAPolicy(pricing=scenario.pricing)
        ).run(scenario.network, scenario.radio_map)

    def recorded():
        with telemetry_session(Recorder()):
            return engine()

    recorded_s, _, disabled_s, _ = _best_of_interleaved(
        recorded, engine, repeats=6
    )
    return {
        "null_span_us": round(null_span_us, 4),
        "recorded_span_us": round(recorded_span_us, 4),
        "recorded_engine_wall_s": round(recorded_s, 4),
        "disabled_engine_wall_s": round(disabled_s, 4),
        "recording_overhead_pct": round(
            (recorded_s / disabled_s - 1.0) * 100.0, 1
        ),
        "note": (
            "per-call costs of an instrumented site with telemetry off "
            "(null) and with a live Recorder (buffered events); the "
            "engine rows alternate recorded/disabled runs in one loop "
            "so box-load drift cannot masquerade as overhead"
        ),
    }


def _check_baseline(report: dict) -> str | None:
    """Disabled-path timings must hold the line against BENCH_pr3.json.

    Absolute wall times do not transfer across boxes or even across
    load conditions on one box, so the comparison uses the speedup
    *ratios*: the optimized and reference implementations are timed
    interleaved under identical conditions, so box-speed drift cancels
    and any slowdown the (disabled) instrumentation added to the
    optimized path shows up directly as a ratio drop.
    """
    if not BASELINE_PATH.exists():
        return None
    # Even the ratios scatter +-30% between runs when the underlying
    # (1-vCPU, shared-host) box has noisy neighbours — identical code
    # measured anywhere from 2.1x to 3.5x on the engine — so the
    # default gate is a loose backstop; tighten to the real criterion
    # with ``BENCH_MAX_BASELINE_REGRESSION=0.03`` on a quiet box.
    max_regression = float(
        os.environ.get("BENCH_MAX_BASELINE_REGRESSION", "0.3")
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    checks = [
        (
            "matching-engine speedup",
            report["single_shot_dmra"]["speedup"],
            baseline["single_shot_dmra"]["speedup"],
        ),
        (
            "radio-map speedup",
            report["radio_map"]["speedup"],
            baseline["radio_map"]["speedup"],
        ),
    ]
    for name, now, then in checks:
        if now < then * (1.0 - max_regression):
            return (
                f"PERF REGRESSION vs {BASELINE_PATH.name}: {name} "
                f"{now}x fell more than {max_regression:.0%} below "
                f"baseline {then}x"
            )
    return None


def main() -> int:
    radio = _time_radio_map()
    single = _time_single_shot()
    sweep = _time_sweep()
    mobility = _time_mobility()
    telemetry = _time_telemetry()
    report = {
        "bench": "pr4-smoke",
        "radio_map": radio,
        "single_shot_dmra": single,
        "sweep_scaling": sweep,
        "mobility_epochs": mobility,
        "telemetry": telemetry,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if os.environ.get("BENCH_WRITE_FIXTURE"):
        FIXTURE_PATH.write_text(json.dumps(
            {"ue_count": UE_COUNT, "seed": SEED, "digest": single["digest"]},
            indent=2,
        ) + "\n")
        print(f"wrote parity fixture {FIXTURE_PATH}")
        return 0

    fixture = json.loads(FIXTURE_PATH.read_text())
    if single["digest"] != fixture["digest"]:
        print(
            f"PARITY FAILURE: digest {single['digest']} != "
            f"fixture {fixture['digest']}",
            file=sys.stderr,
        )
        return 1

    # 2.0 rather than the ~3x the engine achieves on a quiet box: the
    # original floor (3.0) sat directly on the recorded baseline
    # (3.03x), and best-of timings of *identical code* on this shared
    # 1-vCPU box scatter from 2.1x to 3.5x run to run.
    floor = float(os.environ.get("BENCH_MIN_SPEEDUP", "2.0"))
    if single["speedup"] < floor:
        print(
            f"PERF REGRESSION: matching speedup {single['speedup']}x "
            f"< {floor}x",
            file=sys.stderr,
        )
        return 1
    map_floor = float(os.environ.get("BENCH_MIN_MAP_SPEEDUP", "5.0"))
    if radio["speedup"] < map_floor:
        print(
            f"PERF REGRESSION: radio-map speedup {radio['speedup']}x "
            f"< {map_floor}x",
            file=sys.stderr,
        )
        return 1
    # The crossover heuristic makes the incremental mode fall back to a
    # full rebuild when most UEs moved, so at worst it pays one numpy
    # displacement scan per epoch — it must never lose badly again
    # (the PR 3 measurement had it at 0.77x on all-moving walks).  The
    # all-moving floor sits below 1.0 only because interleaved best-of
    # ratios of *identical code* scatter +-15% on this shared box.
    mobility_floor = float(
        os.environ.get("BENCH_MIN_MOBILITY_SPEEDUP", "0.85")
    )
    if mobility["all_moving"]["speedup"] < mobility_floor:
        print(
            f"PERF REGRESSION: incremental mobility epochs "
            f"{mobility['all_moving']['speedup']}x < {mobility_floor}x "
            f"vs full rebuild (all-moving walk)",
            file=sys.stderr,
        )
        return 1
    sparse_floor = float(
        os.environ.get("BENCH_MIN_SPARSE_MOBILITY_SPEEDUP", "1.1")
    )
    if mobility["sparse"]["speedup"] < sparse_floor:
        print(
            f"PERF REGRESSION: incremental mobility epochs "
            f"{mobility['sparse']['speedup']}x < {sparse_floor}x vs "
            f"full rebuild (sparse movers: the patch route must win)",
            file=sys.stderr,
        )
        return 1
    null_ceiling = float(os.environ.get("BENCH_MAX_NULL_SPAN_US", "2.0"))
    if telemetry["null_span_us"] > null_ceiling:
        print(
            f"PERF REGRESSION: disabled span costs "
            f"{telemetry['null_span_us']}us > {null_ceiling}us",
            file=sys.stderr,
        )
        return 1
    recorded_ceiling = float(
        os.environ.get("BENCH_MAX_RECORDED_SPAN_US", "10.0")
    )
    if telemetry["recorded_span_us"] > recorded_ceiling:
        print(
            f"PERF REGRESSION: recorded span costs "
            f"{telemetry['recorded_span_us']}us > {recorded_ceiling}us",
            file=sys.stderr,
        )
        return 1
    overhead_ceiling = float(
        os.environ.get("BENCH_MAX_RECORD_OVERHEAD_PCT", "15.0")
    )
    if telemetry["recording_overhead_pct"] > overhead_ceiling:
        print(
            f"PERF REGRESSION: live recording adds "
            f"{telemetry['recording_overhead_pct']}% to the engine run "
            f"(> {overhead_ceiling}%)",
            file=sys.stderr,
        )
        return 1
    baseline_failure = _check_baseline(report)
    if baseline_failure is not None:
        print(baseline_failure, file=sys.stderr)
        return 1
    print(
        f"ok: parity digest matches, matching {single['speedup']}x, "
        f"radio map {radio['speedup']}x, "
        f"mobility epochs {mobility['all_moving']['speedup']}x all-moving "
        f"/ {mobility['sparse']['speedup']}x sparse, "
        f"null span {telemetry['null_span_us']}us, "
        f"recording overhead {telemetry['recording_overhead_pct']}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
